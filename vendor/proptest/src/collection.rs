//! Collection strategies (`vec`).

use crate::strategy::{NewValueResult, Strategy};
use crate::test_runner::TestRunner;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: an exact size, a
/// half-open range, or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<Vec<S::Value>> {
        let len = runner
            .rng()
            .gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::ProptestConfig;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut r = TestRunner::new(ProptestConfig::default(), "collection::tests");
        let exact = vec(0u8..10, 4usize);
        assert_eq!(exact.new_value(&mut r).unwrap().len(), 4);
        let ranged = vec(0u8..10, 1..5);
        for _ in 0..50 {
            let v = ranged.new_value(&mut r).unwrap();
            assert!((1..5).contains(&v.len()));
        }
    }
}
