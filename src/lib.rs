//! # qmkp — Quantum Algorithms for the Maximum k-Plex Problem
//!
//! Facade crate re-exporting the full workspace, a Rust reproduction of
//! *"Gate-Based and Annealing-Based Quantum Algorithms for the Maximum
//! K-Plex Problem"* (ICDE 2024). See the individual crates for details:
//!
//! * [`graph`] — graphs, generators, k-plex predicates, reductions.
//! * [`qsim`] — gate-based quantum circuit simulator (dense + sparse).
//! * [`arith`] — reversible arithmetic circuits (adders, comparators, popcount).
//! * [`core`] — the paper's contribution: qTKP / qMKP Grover algorithms.
//! * [`qubo`] — QUBO formulation of MKP for annealing (qaMKP).
//! * [`annealer`] — simulated (quantum) annealing, minor embedding, hybrid solver.
//! * [`milp`] — 0/1 MILP solver (simplex + branch & bound) baseline.
//! * [`classical`] — classical exact baselines (naive, BnB, BS).
//! * [`obs`] — structured tracing, metrics, and run reports
//!   (`QMKP_OBS=1` for a summary, `QMKP_OBS_JSON=path` for a JSONL trace).
//! * [`rt`] — the execution runtime: budgets, cooperative cancellation,
//!   retries, checkpoint/resume, deterministic fault injection
//!   (`QMKP_RT_DEADLINE_MS` / `QMKP_RT_MAX_BYTES` / `QMKP_RT_MAX_OPS`).
//! * [`mod@solve`] — the budgeted degradation ladder:
//!   dense → sparse → classical, `degraded = true` when the quantum
//!   pipeline does not fit the budget.
//! * [`mod@portfolio`] — solver-portfolio racing: the staked rungs plus
//!   SQA and the classical floor run concurrently under one cancel
//!   token, first verified k-plex wins, losers' incumbents warm-start
//!   the survivors (`QMKP_PORTFOLIO=0` restores the sequential ladder).
//!
//! ## Quickstart
//!
//! ```
//! use qmkp::graph::Graph;
//! use qmkp::classical::naive::max_kplex_naive;
//!
//! // The 6-vertex example graph from Figure 1 of the paper.
//! let g = qmkp::graph::gen::paper_fig1_graph();
//! let best = max_kplex_naive(&g, 2);
//! assert!(qmkp::graph::is_kplex(&g, best, 2));
//! ```

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
pub mod portfolio;
pub mod solve;

pub use qmkp_annealer as annealer;
pub use qmkp_arith as arith;
pub use qmkp_classical as classical;
pub use qmkp_core as core;
pub use qmkp_graph as graph;
pub use qmkp_milp as milp;
pub use qmkp_obs as obs;
pub use qmkp_qsim as qsim;
pub use qmkp_qubo as qubo;
pub use qmkp_rt as rt;

pub use portfolio::RaceSummary;
pub use solve::{
    dense_cost, preflight_lane, solve, solve_with, sparse_cost, PreflightLane, SolveBackend,
    SolveConfig, SolveOutcome,
};
