//! First-verified-wins racing: run fault-contained racers concurrently
//! under one shared [`CancelToken`].
//!
//! The primitive the portfolio solver (`qmkp::portfolio`) is built on.
//! Each [`Racer`] runs on its own scoped thread with a private
//! [`RtContext`] over its own [`Budget`] slice; every context polls one
//! shared token, so the first racer to return `Ok` cancels the rest
//! cooperatively. Robustness contract:
//!
//! * a panicking racer is caught with `catch_unwind` and recorded as a
//!   structured [`RtError::Faulted`] — one bad kernel never kills the
//!   process or the race;
//! * a racer failing with `Faulted`/`OpBudget`/`MemoryBudget`/
//!   `DeadlineExceeded` is recorded and the race continues;
//! * if *every* racer fails the caller gets
//!   [`RtError::AllRacersFailed`] naming each racer's individual error —
//!   never a panic, never silence;
//! * the caller's own token is honoured: cancellation observed on it is
//!   propagated to the shared race token and surfaces as
//!   [`RtError::Cancelled`].

use crate::{Budget, CancelToken, RtContext, RtError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How often the supervisor thread re-polls the caller's token while
/// waiting for racer results. Cancellation latency for the whole race is
/// bounded by this plus the racers' own check granularity.
const SUPERVISOR_POLL: Duration = Duration::from_millis(5);

/// The boxed body of a racer: runs under the racer's private
/// [`RtContext`] and returns a verified result or a structured error.
type RacerFn<'f, T> = Box<dyn FnOnce(&RtContext) -> Result<T, RtError> + Send + 'f>;

/// One entrant in a race: a name (used in reports, metrics labels and
/// aggregate errors), a private [`Budget`] slice, and the closure to run.
pub struct Racer<'f, T> {
    name: String,
    budget: Budget,
    run: RacerFn<'f, T>,
}

impl<'f, T> Racer<'f, T> {
    /// Builds a racer. The closure receives the racer's private
    /// [`RtContext`] (its budget slice bound to the shared race token)
    /// and must return a *verified* result — the race declares the first
    /// `Ok` the winner without re-checking it.
    pub fn new<F>(name: impl Into<String>, budget: Budget, run: F) -> Self
    where
        F: FnOnce(&RtContext) -> Result<T, RtError> + Send + 'f,
    {
        Racer {
            name: name.into(),
            budget,
            run: Box::new(run),
        }
    }

    /// The racer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The budget slice this racer will run under.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }
}

impl<T> std::fmt::Debug for Racer<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Racer")
            .field("name", &self.name)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

/// How one racer ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RacerOutcome {
    /// First verified result — this racer's value was returned.
    Won,
    /// Stopped because the race was decided (or the caller cancelled);
    /// includes racers that finished correctly but after the winner.
    Cancelled,
    /// Failed on its own: fault, exhausted budget slice, or a panic
    /// mapped to [`RtError::Faulted`].
    Failed(RtError),
}

/// Per-racer account of a finished race, in staking order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RacerReport {
    /// The racer's name.
    pub name: String,
    /// How it ended.
    pub outcome: RacerOutcome,
    /// Wall-clock time from the racer's thread start to its return.
    pub elapsed: Duration,
}

/// A decided race: the winning value plus the full per-racer account.
#[derive(Debug)]
pub struct RaceWin<T> {
    /// The first verified result.
    pub value: T,
    /// Name of the racer that produced it.
    pub winner: String,
    /// How much longer the slowest losing racer kept running past the
    /// winner's finish (the concurrent work the cancel cut short). `None`
    /// for a single-racer field.
    pub win_margin: Option<Duration>,
    /// One report per racer, in staking order.
    pub reports: Vec<RacerReport>,
}

/// Runs every racer concurrently; the first `Ok` wins and cancels the
/// rest through the shared race token.
///
/// `caller` is the *outer* cancellation token (e.g. the solve context's):
/// it is only peeked, never burned, and a cancellation observed on it is
/// propagated to the racers and returned as [`RtError::Cancelled`]. When
/// no racer produces a verified result the error is
/// [`RtError::AllRacersFailed`] naming every racer's failure.
pub fn race<'f, T: Send>(
    racers: Vec<Racer<'f, T>>,
    caller: &CancelToken,
) -> Result<RaceWin<T>, RtError> {
    if racers.is_empty() {
        return Err(RtError::InvalidConfig(
            "race requires at least one racer".into(),
        ));
    }
    if caller.peek() {
        return Err(RtError::Cancelled);
    }
    let names: Vec<String> = racers.iter().map(|r| r.name.clone()).collect();
    let total = racers.len();
    let shared = CancelToken::new();
    let (tx, rx) = mpsc::channel::<(usize, Result<T, RtError>, Duration)>();
    let mut slots: Vec<Option<(Result<T, RtError>, Duration)>> = Vec::new();
    slots.resize_with(total, || None);
    let mut winner: Option<usize> = None;

    std::thread::scope(|scope| {
        for (idx, racer) in racers.into_iter().enumerate() {
            let tx = tx.clone();
            let token = shared.clone();
            scope.spawn(move || {
                let racer_start = Instant::now();
                let Racer { name, budget, run } = racer;
                let ctx = RtContext::new(budget, token);
                let result = match catch_unwind(AssertUnwindSafe(|| run(&ctx))) {
                    Ok(r) => r,
                    Err(_) => Err(RtError::Faulted {
                        site: format!("race.{name}.panic"),
                    }),
                };
                // A send can only fail if the supervisor already gave up
                // (disconnected receiver); the racer's work is moot then.
                let _ = tx.send((idx, result, racer_start.elapsed()));
            });
        }
        drop(tx);
        let mut received = 0;
        while received < total {
            match rx.recv_timeout(SUPERVISOR_POLL) {
                Ok((idx, result, elapsed)) => {
                    received += 1;
                    if winner.is_none() && result.is_ok() {
                        winner = Some(idx);
                        shared.cancel();
                    }
                    slots[idx] = Some((result, elapsed));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if caller.peek() {
                        shared.cancel();
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    });

    let mut value: Option<T> = None;
    let mut winner_elapsed = Duration::ZERO;
    if let Some(idx) = winner {
        if let Some((Ok(v), elapsed)) = slots[idx].take() {
            winner_elapsed = elapsed;
            value = Some(v);
        }
    }

    let mut reports: Vec<RacerReport> = Vec::with_capacity(total);
    let mut errors: Vec<(String, RtError)> = Vec::new();
    let mut slowest_loser: Option<Duration> = None;
    for (idx, slot) in slots.into_iter().enumerate() {
        let name = names[idx].clone();
        match slot {
            None if Some(idx) == winner => reports.push(RacerReport {
                name,
                outcome: RacerOutcome::Won,
                elapsed: winner_elapsed,
            }),
            None => {
                // Unreachable in practice (every spawned racer sends),
                // but account for it structurally rather than trusting
                // the channel.
                let err = RtError::Faulted {
                    site: format!("race.{name}.no-result"),
                };
                errors.push((name.clone(), err.clone()));
                reports.push(RacerReport {
                    name,
                    outcome: RacerOutcome::Failed(err),
                    elapsed: Duration::ZERO,
                });
            }
            Some((result, elapsed)) => {
                if winner.is_some() {
                    slowest_loser = Some(slowest_loser.map_or(elapsed, |s| s.max(elapsed)));
                }
                let outcome = match result {
                    // Finished correctly but after the winner: a loss,
                    // not a failure.
                    Ok(_) | Err(RtError::Cancelled) => RacerOutcome::Cancelled,
                    Err(e) => {
                        errors.push((name.clone(), e.clone()));
                        RacerOutcome::Failed(e)
                    }
                };
                reports.push(RacerReport {
                    name,
                    outcome,
                    elapsed,
                });
            }
        }
    }

    match (winner, value) {
        (Some(idx), Some(v)) => Ok(RaceWin {
            value: v,
            winner: names[idx].clone(),
            win_margin: slowest_loser.map(|s| s.saturating_sub(winner_elapsed)),
            reports,
        }),
        _ => {
            if caller.peek() {
                return Err(RtError::Cancelled);
            }
            Err(RtError::AllRacersFailed { failures: errors })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_until_cancelled(ctx: &RtContext) -> Result<usize, RtError> {
        loop {
            ctx.check()?;
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn first_ok_wins_and_cancels_the_rest() {
        let caller = CancelToken::new();
        let racers = vec![
            Racer::new("spinner", Budget::unlimited(), spin_until_cancelled),
            Racer::new("fast", Budget::unlimited(), |_ctx: &RtContext| Ok(7usize)),
        ];
        let win = race(racers, &caller).expect("fast racer wins");
        assert_eq!(win.value, 7);
        assert_eq!(win.winner, "fast");
        assert_eq!(win.reports.len(), 2);
        assert_eq!(win.reports[0].name, "spinner");
        assert_eq!(win.reports[0].outcome, RacerOutcome::Cancelled);
        assert_eq!(win.reports[1].outcome, RacerOutcome::Won);
        assert!(win.win_margin.is_some());
        assert!(!caller.peek(), "race must not cancel the caller's token");
    }

    #[test]
    fn panicking_racer_is_contained_and_named() {
        let caller = CancelToken::new();
        let racers = vec![
            Racer::new(
                "bomb",
                Budget::unlimited(),
                |_ctx: &RtContext| -> Result<usize, RtError> { panic!("boom") },
            ),
            Racer::new("steady", Budget::unlimited(), |ctx: &RtContext| {
                std::thread::sleep(Duration::from_millis(5));
                ctx.check()?;
                Ok(1usize)
            }),
        ];
        let win = race(racers, &caller).expect("steady racer survives the panic");
        assert_eq!(win.winner, "steady");
        match &win.reports[0].outcome {
            RacerOutcome::Failed(RtError::Faulted { site }) => {
                assert_eq!(site, "race.bomb.panic");
            }
            other => panic!("expected a contained panic, got {other:?}"),
        }
    }

    #[test]
    fn all_failures_aggregate_with_every_racer_named() {
        let caller = CancelToken::new();
        let racers: Vec<Racer<'_, usize>> = vec![
            Racer::new("a", Budget::unlimited(), |_ctx: &RtContext| {
                Err(RtError::Faulted { site: "x".into() })
            }),
            Racer::new("b", Budget::unlimited(), |_ctx: &RtContext| {
                Err(RtError::OpBudget { used: 2, limit: 1 })
            }),
        ];
        let err = race(racers, &caller).expect_err("no racer can win");
        match err {
            RtError::AllRacersFailed { failures } => {
                assert_eq!(failures.len(), 2);
                assert_eq!(failures[0].0, "a");
                assert_eq!(failures[0].1, RtError::Faulted { site: "x".into() });
                assert_eq!(failures[1].0, "b");
                assert_eq!(failures[1].1, RtError::OpBudget { used: 2, limit: 1 });
            }
            other => panic!("expected AllRacersFailed, got {other}"),
        }
    }

    #[test]
    fn budget_slices_are_private_per_racer() {
        let caller = CancelToken::new();
        let racers = vec![
            Racer::new(
                "starved",
                Budget::unlimited().with_max_ops(4),
                |ctx: &RtContext| {
                    ctx.charge_ops(100)?;
                    Ok(0usize)
                },
            ),
            Racer::new(
                "funded",
                Budget::unlimited().with_max_ops(1_000),
                |ctx: &RtContext| {
                    std::thread::sleep(Duration::from_millis(3));
                    ctx.charge_ops(100)?;
                    Ok(9usize)
                },
            ),
        ];
        let win = race(racers, &caller).expect("funded racer wins");
        assert_eq!(win.value, 9);
        assert!(matches!(
            win.reports[0].outcome,
            RacerOutcome::Failed(RtError::OpBudget { .. })
        ));
    }

    #[test]
    fn pre_cancelled_caller_short_circuits() {
        let caller = CancelToken::new();
        caller.cancel();
        let racers = vec![Racer::new(
            "never-runs",
            Budget::unlimited(),
            |_ctx: &RtContext| Ok(1usize),
        )];
        assert!(matches!(race(racers, &caller), Err(RtError::Cancelled)));
    }

    #[test]
    fn caller_cancellation_mid_race_propagates() {
        let caller = CancelToken::new();
        let trigger = caller.clone();
        let racers = vec![
            Racer::new("canceller", Budget::unlimited(), move |ctx: &RtContext| {
                std::thread::sleep(Duration::from_millis(5));
                trigger.cancel();
                spin_until_cancelled(ctx)
            }),
            Racer::new("spinner", Budget::unlimited(), spin_until_cancelled),
        ];
        assert!(matches!(race(racers, &caller), Err(RtError::Cancelled)));
    }

    #[test]
    fn empty_race_is_an_invalid_config() {
        let caller = CancelToken::new();
        let racers: Vec<Racer<'_, usize>> = Vec::new();
        assert!(matches!(
            race(racers, &caller),
            Err(RtError::InvalidConfig(_))
        ));
    }
}
