//! Algorithm 3 of the paper: **qMKP** — maximum k-plex via binary search
//! over qTKP, with the paper's progressive behaviour (the first feasible
//! solution arrives after the first successful qTKP call and is at least
//! half the optimum).

use crate::compiled::{CompileFresh, OracleProvider};
use crate::grover::SectionTimes;
use crate::qtkp::{qtkp_probe_ctx_with, ProbeInterrupt, QtkpConfig};
use qmkp_graph::reduce::auto_reduce;
use qmkp_graph::{Graph, VertexSet};
use qmkp_obs::json;
use qmkp_qsim::{BackendState, SparseState};
use qmkp_rt::checkpoint::{parse_object, require, require_u64};
use qmkp_rt::{Checkpoint, Interrupted, RtContext, RtError};
use std::time::{Duration, Instant};

/// Configuration for a qMKP run.
#[derive(Debug, Clone, Default)]
pub struct QmkpConfig {
    /// Configuration forwarded to each qTKP call.
    pub qtkp: QtkpConfig,
    /// Apply the core-truss co-pruning reduction before searching (the
    /// paper's "orthogonality" integration of Chang et al.), shrinking the
    /// oracle. The reduction is sound: a maximum k-plex survives it.
    pub use_reduction: bool,
}

/// One binary-search probe.
#[derive(Debug, Clone)]
pub struct QmkpCall {
    /// The threshold `T` probed.
    pub t: usize,
    /// The verified k-plex found at this threshold, if any.
    pub found: Option<VertexSet>,
    /// Grover iterations used by the probe.
    pub iterations: usize,
    /// Marked-state count at this threshold.
    pub m: u64,
    /// Wall time of the probe.
    pub elapsed: Duration,
}

/// The result of a qMKP run.
#[derive(Debug, Clone)]
pub struct QmkpOutcome {
    /// A maximum k-plex (singletons are k-plexes, so this always exists
    /// for non-empty graphs).
    pub best: VertexSet,
    /// Every binary-search probe, in execution order.
    pub calls: Vec<QmkpCall>,
    /// The first feasible solution and the elapsed time when it was
    /// produced (the paper's "first-result" metrics).
    pub first_result: Option<(VertexSet, Duration)>,
    /// Merged per-section simulation times across all probes.
    pub times: SectionTimes,
    /// Error probability of the probe that established the optimum (the
    /// figure the paper's Tables II-III report); intermediate probes are
    /// protected by classical verification regardless.
    pub error_probability: f64,
    /// Total Grover iterations across all probes (the quantum cost
    /// driver: `O(2^{n/2})` oracle calls).
    pub total_iterations: usize,
    /// Total wall time.
    pub total_elapsed: Duration,
    /// Maximum circuit width over all probes.
    pub qubits: usize,
}

/// Intra-probe progress: how far the interrupted probe's Grover phase
/// got. Carried by [`QmkpCheckpoint`] so a resume replays the completed
/// iterations (deterministic, poll-free) instead of restarting the probe
/// at iteration zero — under repeated interruptions the search never
/// loses ground inside a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QmkpProbe {
    /// The threshold of the probe in flight (a resume guard: it must
    /// match the `midpoint(lo, hi)` the search recomputes).
    pub t: usize,
    /// Grover iterations the probe had completed.
    pub iterations_done: usize,
}

/// A resumable position inside the qMKP binary search, taken at probe
/// boundaries. Because every qTKP probe reseeds its RNG from the
/// configuration, resuming from a checkpoint replays the remaining probes
/// bit-identically to an uninterrupted run (wall-clock fields aside).
/// When the interrupt landed inside a probe's Grover phase, [`Self::probe`]
/// additionally records the completed iterations for intra-probe resume.
#[derive(Debug, Clone)]
pub struct QmkpCheckpoint {
    /// The `k` the search was started with (resume guard).
    pub k: usize,
    /// Lower bound of the open `[lo, hi]` threshold interval.
    pub lo: usize,
    /// Upper bound of the interval.
    pub hi: usize,
    /// Best witness found so far (original vertex ids).
    pub best: VertexSet,
    /// Probes completed so far.
    pub calls: Vec<QmkpCall>,
    /// First feasible solution and when it arrived.
    pub first_result: Option<(VertexSet, Duration)>,
    /// Error probability of the probe establishing the current best.
    pub error_probability: f64,
    /// Grover iterations spent so far.
    pub total_iterations: usize,
    /// Maximum circuit width over completed probes.
    pub qubits: usize,
    /// Progress inside the probe that was interrupted, if its Grover
    /// phase had completed at least one iteration (absent in payloads
    /// from older versions, which resume probe-granularly).
    pub probe: Option<QmkpProbe>,
}

fn bits_hex(s: VertexSet) -> String {
    format!("{:x}", s.bits())
}

fn set_from_hex(j: &json::Json, field: &str) -> Result<VertexSet, RtError> {
    let raw = j.as_str().ok_or_else(|| {
        RtError::InvalidConfig(format!("checkpoint: field `{field}` is not a string"))
    })?;
    u128::from_str_radix(raw, 16)
        .map(VertexSet::from_bits)
        .map_err(|_| RtError::InvalidConfig(format!("checkpoint: field `{field}` is not hex")))
}

impl Checkpoint for QmkpCheckpoint {
    fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"k\": {}", self.k));
        out.push_str(&format!(", \"lo\": {}", self.lo));
        out.push_str(&format!(", \"hi\": {}", self.hi));
        out.push_str(&format!(
            ", \"best\": {}",
            json::quote(&bits_hex(self.best))
        ));
        // f64 round-trips exactly via its bit pattern, not via decimal.
        out.push_str(&format!(
            ", \"error_probability_bits\": \"{:x}\"",
            self.error_probability.to_bits()
        ));
        out.push_str(&format!(
            ", \"total_iterations\": {}",
            self.total_iterations
        ));
        out.push_str(&format!(", \"qubits\": {}", self.qubits));
        // Absent (not null) when there is no intra-probe progress, so
        // payloads from before the field existed parse identically.
        if let Some(p) = self.probe {
            out.push_str(&format!(
                ", \"probe\": {{\"t\": {}, \"iterations_done\": {}}}",
                p.t, p.iterations_done
            ));
        }
        match self.first_result {
            Some((s, d)) => out.push_str(&format!(
                ", \"first_result\": {{\"set\": {}, \"elapsed_ns\": {}}}",
                json::quote(&bits_hex(s)),
                d.as_nanos().min(u128::from(u64::MAX))
            )),
            None => out.push_str(", \"first_result\": null"),
        }
        out.push_str(", \"calls\": [");
        for (i, c) in self.calls.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let found = match c.found {
                Some(s) => json::quote(&bits_hex(s)),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"t\": {}, \"found\": {}, \"iterations\": {}, \"m\": {}, \"elapsed_ns\": {}}}",
                c.t,
                found,
                c.iterations,
                c.m,
                c.elapsed.as_nanos().min(u128::from(u64::MAX))
            ));
        }
        out.push_str("]}");
        out
    }

    fn from_json(s: &str) -> Result<Self, RtError> {
        let obj = parse_object(s)?;
        let err_bits = require(&obj, "error_probability_bits")?;
        let err_bits = err_bits.as_str().ok_or_else(|| {
            RtError::InvalidConfig("checkpoint: error_probability_bits is not a string".into())
        })?;
        let error_probability = u64::from_str_radix(err_bits, 16)
            .map(f64::from_bits)
            .map_err(|_| {
                RtError::InvalidConfig("checkpoint: error_probability_bits is not hex".into())
            })?;
        let first_result = match require(&obj, "first_result")? {
            json::Json::Null => None,
            fr => Some((
                set_from_hex(require(fr, "set")?, "first_result.set")?,
                Duration::from_nanos(require_u64(fr, "elapsed_ns")?),
            )),
        };
        let calls_json = require(&obj, "calls")?
            .as_array()
            .ok_or_else(|| RtError::InvalidConfig("checkpoint: calls is not an array".into()))?;
        let mut calls = Vec::with_capacity(calls_json.len());
        for c in calls_json {
            let found = match require(c, "found")? {
                json::Json::Null => None,
                f => Some(set_from_hex(f, "calls.found")?),
            };
            calls.push(QmkpCall {
                t: require_u64(c, "t")? as usize,
                found,
                iterations: require_u64(c, "iterations")? as usize,
                m: require_u64(c, "m")?,
                elapsed: Duration::from_nanos(require_u64(c, "elapsed_ns")?),
            });
        }
        let probe = match obj.get("probe") {
            None | Some(json::Json::Null) => None,
            Some(p) => Some(QmkpProbe {
                t: require_u64(p, "t")? as usize,
                iterations_done: require_u64(p, "iterations_done")? as usize,
            }),
        };
        Ok(QmkpCheckpoint {
            k: require_u64(&obj, "k")? as usize,
            lo: require_u64(&obj, "lo")? as usize,
            hi: require_u64(&obj, "hi")? as usize,
            best: set_from_hex(require(&obj, "best")?, "best")?,
            calls,
            first_result,
            error_probability,
            total_iterations: require_u64(&obj, "total_iterations")? as usize,
            qubits: require_u64(&obj, "qubits")? as usize,
            probe,
        })
    }
}

/// Runs qMKP: find a maximum k-plex of `g`.
///
/// Legacy infallible surface on the sparse backend; budget-aware callers
/// use [`qmkp_ctx`].
///
/// # Panics
/// Panics if the graph is empty, `k == 0`, or the configuration is
/// invalid (see [`QtkpConfig::validate`]).
pub fn qmkp(g: &Graph, k: usize, config: &QmkpConfig) -> QmkpOutcome {
    qmkp_ctx::<SparseState>(g, k, config, &RtContext::unlimited(), None)
        .map_err(|i| i.error)
        .expect("unlimited context: only invalid configuration can fail")
}

/// Runs qMKP under an execution-runtime context, on an explicit backend.
///
/// The binary search is interruptible at probe boundaries: when the
/// budget runs out, cancellation is requested, or the `core.qmkp.probe`
/// failpoint fires, the function returns [`Interrupted`] carrying both
/// the structured reason and a [`QmkpCheckpoint`] from which
/// `qmkp_ctx(..., Some(&checkpoint))` resumes bit-identically (every
/// probe reseeds from the configuration, so no RNG state needs saving).
///
/// # Errors
/// [`Interrupted`] pairing the [`RtError`] with the resume checkpoint;
/// for a rejected configuration the checkpoint is the initial position.
///
/// # Panics
/// Panics if the graph is empty or `k == 0`.
pub fn qmkp_ctx<S: BackendState>(
    g: &Graph,
    k: usize,
    config: &QmkpConfig,
    ctx: &RtContext,
    resume: Option<&QmkpCheckpoint>,
) -> Result<QmkpOutcome, Interrupted<QmkpCheckpoint>> {
    qmkp_ctx_with::<S>(g, k, config, ctx, resume, &CompileFresh)
}

/// As [`qmkp_ctx`], but obtaining every probe's compiled oracle from an
/// explicit [`OracleProvider`]. Binary-search probes of the same
/// `(graph, k)` instance hit the provider once per distinct threshold
/// `t`, so a cross-request cache amortizes both repeated requests and
/// the paper's table sweeps over thresholds.
///
/// # Errors
/// As [`qmkp_ctx`], plus whatever the provider reports (wrapped with the
/// probe-boundary checkpoint like any other probe failure).
///
/// # Panics
/// Panics if the graph is empty or `k == 0`.
pub fn qmkp_ctx_with<S: BackendState>(
    g: &Graph,
    k: usize,
    config: &QmkpConfig,
    ctx: &RtContext,
    resume: Option<&QmkpCheckpoint>,
    provider: &dyn OracleProvider,
) -> Result<QmkpOutcome, Interrupted<QmkpCheckpoint>> {
    assert!(g.n() > 0, "graph must be non-empty");
    assert!(k >= 1, "k must be ≥ 1");
    let span = qmkp_obs::span("core.qmkp.run");
    let result = qmkp_ctx_inner::<S>(g, k, config, ctx, resume, provider);
    span.finish();
    result
}

fn qmkp_ctx_inner<S: BackendState>(
    g: &Graph,
    k: usize,
    config: &QmkpConfig,
    ctx: &RtContext,
    resume: Option<&QmkpCheckpoint>,
    provider: &dyn OracleProvider,
) -> Result<QmkpOutcome, Interrupted<QmkpCheckpoint>> {
    let start = Instant::now();

    // Optional classical reduction (paper: "running qMKP on a reduced
    // graph does not affect its ability to find a solution"). Recomputed
    // deterministically on resume — only the search trajectory is saved.
    let (search, mut best, mut lo): (Option<(Graph, Vec<usize>)>, VertexSet, usize) =
        if config.use_reduction {
            let (red, witness) = auto_reduce(g, k);
            if red.kept.is_empty() {
                // Nothing can beat the witness.
                (None, witness, usize::MAX)
            } else {
                let (sub, map) = g.induced(red.kept);
                (Some((sub, map)), witness, witness.len().max(1))
            }
        } else {
            (
                Some((g.clone(), (0..g.n()).collect())),
                VertexSet::singleton(0),
                1,
            )
        };

    let mut calls = Vec::new();
    let mut times = SectionTimes::default();
    let mut first_result: Option<(VertexSet, Duration)> = None;
    let mut error_probability: f64 = 0.0;
    let mut total_iterations = 0usize;
    let mut qubits = 0;
    let mut hi = search.as_ref().map(|(sg, _)| sg.n()).unwrap_or(0);
    let mut pending_probe: Option<QmkpProbe> = None;

    if let Some(cp) = resume {
        if cp.k != k {
            return Err(Interrupted::new(
                RtError::InvalidConfig(format!(
                    "checkpoint was taken for k = {}, resumed with k = {k}",
                    cp.k
                )),
                cp.clone(),
            ));
        }
        lo = cp.lo;
        hi = cp.hi;
        best = cp.best;
        calls = cp.calls.clone();
        first_result = cp.first_result;
        error_probability = cp.error_probability;
        total_iterations = cp.total_iterations;
        qubits = cp.qubits;
        pending_probe = cp.probe;
    }

    #[allow(clippy::too_many_arguments)]
    let snapshot = |lo: usize,
                    hi: usize,
                    best: VertexSet,
                    calls: &[QmkpCall],
                    first_result: Option<(VertexSet, Duration)>,
                    error_probability: f64,
                    total_iterations: usize,
                    qubits: usize,
                    probe: Option<QmkpProbe>| QmkpCheckpoint {
        k,
        lo,
        hi,
        best,
        calls: calls.to_vec(),
        first_result,
        error_probability,
        total_iterations,
        qubits,
        probe,
    };

    if let Err(e) = config.qtkp.validate() {
        return Err(Interrupted::new(
            e,
            snapshot(
                lo,
                hi,
                best,
                &calls,
                first_result,
                error_probability,
                total_iterations,
                qubits,
                pending_probe,
            ),
        ));
    }

    if let Some((search_graph, vmap)) = &search {
        while lo <= hi {
            let interrupted = qmkp_rt::failpoint::check("core.qmkp.probe")
                .and_then(|()| ctx.check())
                .err();
            let t = usize::midpoint(lo, hi);
            // A checkpointed probe position only applies to the probe it
            // was taken in; the threshold guard rejects a stale carry.
            let replay = pending_probe
                .take()
                .filter(|p| p.t == t)
                .map(|p| p.iterations_done)
                .unwrap_or(0);
            let probe = match interrupted {
                Some(e) => Err(ProbeInterrupt {
                    error: e,
                    iterations_done: replay,
                }),
                None => {
                    let probe_span = qmkp_obs::span_dyn(|| format!("core.qmkp.probe[t={t}]"));
                    qmkp_obs::counter("core.qmkp.probes", 1);
                    let out = qtkp_probe_ctx_with::<S>(
                        search_graph,
                        k,
                        t,
                        &config.qtkp,
                        ctx,
                        provider,
                        replay,
                    );
                    probe_span.finish();
                    out
                }
            };
            let out = match probe {
                Ok(out) => out,
                Err(pi) => {
                    return Err(Interrupted::new(
                        pi.error,
                        snapshot(
                            lo,
                            hi,
                            best,
                            &calls,
                            first_result,
                            error_probability,
                            total_iterations,
                            qubits,
                            (pi.iterations_done > 0).then_some(QmkpProbe {
                                t,
                                iterations_done: pi.iterations_done,
                            }),
                        ),
                    ))
                }
            };
            times.merge(&out.times);
            qubits = qubits.max(out.qubits);
            total_iterations += out.iterations;
            let found_original = out.result.map(|s| remap(s, vmap));
            calls.push(QmkpCall {
                t,
                found: found_original,
                iterations: out.iterations,
                m: out.m,
                elapsed: out.elapsed,
            });
            match found_original {
                Some(p) => {
                    if first_result.is_none() {
                        first_result = Some((p, start.elapsed()));
                    }
                    if p.len() >= best.len() {
                        best = p;
                        // The probe that (so far) establishes the optimum.
                        error_probability = out.error_probability;
                    }
                    lo = p.len() + 1;
                }
                None => {
                    if t == 0 {
                        break;
                    }
                    hi = t - 1;
                }
            }
            qmkp_obs::gauge("core.qmkp.best_size", best.len() as f64);
        }
    }

    if qmkp_obs::enabled_for("core.qmkp") {
        qmkp_obs::gauge("core.qmkp.total_iterations", total_iterations as f64);
        qmkp_obs::gauge("core.qmkp.qubits", qubits as f64);
        qmkp_obs::gauge("core.qmkp.error_probability", error_probability);
    }
    Ok(QmkpOutcome {
        best,
        calls,
        first_result,
        times,
        error_probability,
        total_iterations,
        total_elapsed: start.elapsed(),
        qubits,
    })
}

/// Maps a vertex set of the reduced/induced graph back to original ids.
fn remap(s: VertexSet, vmap: &[usize]) -> VertexSet {
    s.iter().map(|i| vmap[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_graph::gen::{gnm, paper_fig1_graph, planted_kplex};
    use qmkp_graph::is_kplex;

    /// Brute-force maximum k-plex size.
    fn brute_max(g: &Graph, k: usize) -> usize {
        (0..(1u128 << g.n()))
            .map(VertexSet::from_bits)
            .filter(|&s| is_kplex(g, s, k))
            .map(|s| s.len())
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn fig1_maximum_2plex() {
        let g = paper_fig1_graph();
        let out = qmkp(&g, 2, &QmkpConfig::default());
        assert_eq!(out.best.len(), 4);
        assert!(is_kplex(&g, out.best, 2));
        assert!(!out.calls.is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..4 {
            let g = gnm(7, 11, seed).unwrap();
            for k in 1..=3 {
                let out = qmkp(&g, k, &QmkpConfig::default());
                assert_eq!(
                    out.best.len(),
                    brute_max(&g, k),
                    "seed={seed} k={k} best={:?}",
                    out.best
                );
                assert!(is_kplex(&g, out.best, k));
            }
        }
    }

    #[test]
    fn reduction_mode_agrees_with_plain_mode() {
        for seed in 0..3 {
            let g = gnm(8, 14, seed).unwrap();
            let plain = qmkp(&g, 2, &QmkpConfig::default());
            let reduced = qmkp(
                &g,
                2,
                &QmkpConfig {
                    use_reduction: true,
                    ..QmkpConfig::default()
                },
            );
            assert_eq!(plain.best.len(), reduced.best.len(), "seed={seed}");
            assert!(is_kplex(&g, reduced.best, 2));
        }
    }

    #[test]
    fn reduction_shrinks_the_oracle_on_planted_instances() {
        let (g, _) = planted_kplex(10, 5, 2, 0.5, 9).unwrap();
        let plain = qmkp(&g, 2, &QmkpConfig::default());
        let reduced = qmkp(
            &g,
            2,
            &QmkpConfig {
                use_reduction: true,
                ..QmkpConfig::default()
            },
        );
        assert_eq!(plain.best.len(), reduced.best.len());
        assert!(
            reduced.qubits <= plain.qubits,
            "reduction must not inflate the oracle: {} vs {}",
            reduced.qubits,
            plain.qubits
        );
    }

    #[test]
    fn first_result_is_at_least_half_of_optimal() {
        // The paper's progression property: the first feasible result of
        // the binary search has size ≥ opt/2.
        for seed in 0..4 {
            let g = gnm(8, 13, seed).unwrap();
            let out = qmkp(&g, 2, &QmkpConfig::default());
            let (first, _) = out.first_result.expect("some k-plex always exists");
            assert!(
                2 * first.len() >= out.best.len(),
                "first={} best={}",
                first.len(),
                out.best.len()
            );
        }
    }

    #[test]
    fn binary_search_uses_logarithmically_many_calls() {
        let g = gnm(8, 13, 0).unwrap();
        let out = qmkp(&g, 2, &QmkpConfig::default());
        assert!(
            out.calls.len() <= 5,
            "O(log n) probes, got {}",
            out.calls.len()
        );
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::new(1).unwrap();
        let out = qmkp(&g, 1, &QmkpConfig::default());
        assert_eq!(out.best.len(), 1);
    }

    #[test]
    fn every_probe_result_is_verified() {
        let g = gnm(9, 16, 2).unwrap();
        let out = qmkp(&g, 3, &QmkpConfig::default());
        for call in &out.calls {
            if let Some(p) = call.found {
                assert!(is_kplex(&g, p, 3));
                assert!(p.len() >= call.t);
            }
        }
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let cp = QmkpCheckpoint {
            k: 2,
            lo: 3,
            hi: 7,
            best: VertexSet::from_iter([0, 2, 5]),
            calls: vec![
                QmkpCall {
                    t: 4,
                    found: Some(VertexSet::from_iter([1, 3])),
                    iterations: 9,
                    m: 12,
                    elapsed: Duration::from_nanos(1234),
                },
                QmkpCall {
                    t: 6,
                    found: None,
                    iterations: 3,
                    m: 0,
                    elapsed: Duration::from_nanos(99),
                },
            ],
            first_result: Some((VertexSet::from_iter([1, 3]), Duration::from_nanos(777))),
            error_probability: 0.123_456_789_f64,
            total_iterations: 12,
            qubits: 31,
            probe: Some(QmkpProbe {
                t: 5,
                iterations_done: 4,
            }),
        };
        let back = QmkpCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back.probe, cp.probe);
        assert_eq!(back.k, cp.k);
        assert_eq!(back.lo, cp.lo);
        assert_eq!(back.hi, cp.hi);
        assert_eq!(back.best, cp.best);
        assert_eq!(back.first_result, cp.first_result);
        assert_eq!(
            back.error_probability.to_bits(),
            cp.error_probability.to_bits()
        );
        assert_eq!(back.total_iterations, cp.total_iterations);
        assert_eq!(back.qubits, cp.qubits);
        assert_eq!(back.calls.len(), cp.calls.len());
        for (a, b) in back.calls.iter().zip(&cp.calls) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.found, b.found);
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.m, b.m);
            assert_eq!(a.elapsed, b.elapsed);
        }
    }

    #[test]
    fn checkpoint_without_probe_field_parses_as_probe_granular() {
        // A payload serialized before intra-probe resume existed (no
        // `probe` key at all) must keep parsing, with no carried probe.
        let cp = QmkpCheckpoint {
            k: 2,
            lo: 1,
            hi: 6,
            best: VertexSet::singleton(0),
            calls: Vec::new(),
            first_result: None,
            error_probability: 0.0,
            total_iterations: 0,
            qubits: 0,
            probe: None,
        };
        let payload = cp.to_json();
        assert!(!payload.contains("probe"), "absent, not null: {payload}");
        let back = QmkpCheckpoint::from_json(&payload).unwrap();
        assert_eq!(back.probe, None);
        // An explicit null is tolerated too.
        let with_null = payload.replacen("{", "{\"probe\": null, ", 1);
        assert_eq!(QmkpCheckpoint::from_json(&with_null).unwrap().probe, None);
    }

    #[test]
    fn checkpoint_rejects_malformed_payloads() {
        assert!(matches!(
            QmkpCheckpoint::from_json("not json"),
            Err(RtError::InvalidConfig(_))
        ));
        assert!(matches!(
            QmkpCheckpoint::from_json("{\"k\": 1}"),
            Err(RtError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_config_is_rejected_with_checkpoint() {
        let g = paper_fig1_graph();
        let config = QmkpConfig {
            qtkp: QtkpConfig {
                max_attempts: 0,
                ..QtkpConfig::default()
            },
            ..QmkpConfig::default()
        };
        let err = qmkp_ctx::<SparseState>(&g, 2, &config, &RtContext::unlimited(), None)
            .expect_err("max_attempts = 0 must be rejected");
        assert!(matches!(err.error, RtError::InvalidConfig(ref m) if m.contains("max_attempts")));
    }

    #[test]
    fn cancellation_yields_resumable_checkpoint() {
        use qmkp_rt::{Budget, CancelToken};
        let g = paper_fig1_graph();
        let config = QmkpConfig::default();
        let ctx = RtContext::new(Budget::unlimited(), CancelToken::cancel_after_checks(0));
        let err = qmkp_ctx::<SparseState>(&g, 2, &config, &ctx, None)
            .expect_err("first poll is cancelled");
        assert_eq!(err.error, RtError::Cancelled);
        assert!(err.checkpoint.calls.is_empty());

        // Resuming the checkpoint under an unlimited context yields the
        // same outcome as an uninterrupted run.
        let resumed = qmkp_ctx::<SparseState>(
            &g,
            2,
            &config,
            &RtContext::unlimited(),
            Some(&err.checkpoint),
        )
        .unwrap();
        let straight = qmkp(&g, 2, &config);
        assert_eq!(resumed.best, straight.best);
        assert_eq!(resumed.total_iterations, straight.total_iterations);
    }

    #[test]
    fn mid_search_resume_is_bit_identical() {
        use qmkp_rt::{Budget, CancelToken};
        let g = gnm(8, 13, 1).unwrap();
        let config = QmkpConfig::default();
        let straight = qmkp(&g, 2, &config);
        assert!(straight.calls.len() >= 2, "need a multi-probe search");

        // The fuse counts every runtime poll (including the simulator's
        // per-chunk ones), so these land at assorted points inside and
        // between probes. Wherever the cut falls, the checkpoint holds the
        // last probe boundary and resuming from its JSON round-trip must
        // replay the rest of the search bit-identically.
        for fuse in [0u64, 1, 10, 1_000, 100_000, 10_000_000] {
            let ctx = RtContext::new(Budget::unlimited(), CancelToken::cancel_after_checks(fuse));
            let resumed = match qmkp_ctx::<SparseState>(&g, 2, &config, &ctx, None) {
                Ok(out) => out, // fuse outlived the whole search
                Err(err) => {
                    assert_eq!(err.error, RtError::Cancelled, "fuse={fuse}");
                    assert!(err.checkpoint.calls.len() < straight.calls.len());
                    let cp = QmkpCheckpoint::from_json(&err.checkpoint.to_json()).unwrap();
                    qmkp_ctx::<SparseState>(&g, 2, &config, &RtContext::unlimited(), Some(&cp))
                        .unwrap()
                }
            };
            assert_eq!(resumed.best, straight.best, "fuse={fuse}");
            assert_eq!(
                resumed.error_probability.to_bits(),
                straight.error_probability.to_bits()
            );
            assert_eq!(resumed.total_iterations, straight.total_iterations);
            assert_eq!(resumed.qubits, straight.qubits);
            assert_eq!(resumed.calls.len(), straight.calls.len());
            for (a, b) in resumed.calls.iter().zip(&straight.calls) {
                assert_eq!(a.t, b.t);
                assert_eq!(a.found, b.found);
                assert_eq!(a.iterations, b.iterations);
                assert_eq!(a.m, b.m);
            }
        }
    }

    #[test]
    fn op_budget_interrupt_mid_probe_resumes_bit_identically() {
        use qmkp_rt::{Budget, CancelToken};
        let g = gnm(8, 13, 1).unwrap();
        let config = QmkpConfig::default();
        let straight = qmkp(&g, 2, &config);
        // Sweep deterministic op ceilings until one lands inside a
        // probe's Grover phase: the checkpoint must then carry the
        // completed-iteration count, and resuming from its JSON
        // round-trip must replay the rest of the search bit-identically.
        let mut saw_intra_probe = false;
        let mut limit = 64u64;
        while limit < (1 << 26) {
            let ctx = RtContext::new(Budget::unlimited().with_max_ops(limit), CancelToken::new());
            let err = match qmkp_ctx::<SparseState>(&g, 2, &config, &ctx, None) {
                Ok(_) => break, // the ceiling outlived the whole search
                Err(err) => err,
            };
            assert!(
                matches!(err.error, RtError::OpBudget { .. }),
                "limit={limit}: {:?}",
                err.error
            );
            if let Some(p) = err.checkpoint.probe {
                saw_intra_probe = true;
                assert!(p.iterations_done > 0, "empty progress must be absent");
                let cp = QmkpCheckpoint::from_json(&err.checkpoint.to_json()).unwrap();
                assert_eq!(cp.probe, Some(p));
                let resumed =
                    qmkp_ctx::<SparseState>(&g, 2, &config, &RtContext::unlimited(), Some(&cp))
                        .unwrap();
                assert_eq!(resumed.best, straight.best, "limit={limit}");
                assert_eq!(resumed.total_iterations, straight.total_iterations);
                assert_eq!(resumed.calls.len(), straight.calls.len());
                for (a, b) in resumed.calls.iter().zip(&straight.calls) {
                    assert_eq!(a.t, b.t);
                    assert_eq!(a.found, b.found);
                    assert_eq!(a.iterations, b.iterations);
                    assert_eq!(a.m, b.m);
                }
            }
            limit = limit * 5 / 4 + 1;
        }
        assert!(saw_intra_probe, "no op ceiling landed mid-Grover-phase");
    }

    #[test]
    fn resume_with_mismatched_k_is_rejected() {
        let g = paper_fig1_graph();
        let cp = QmkpCheckpoint {
            k: 3,
            lo: 1,
            hi: 4,
            best: VertexSet::singleton(0),
            calls: Vec::new(),
            first_result: None,
            error_probability: 0.0,
            total_iterations: 0,
            qubits: 0,
            probe: None,
        };
        let err = qmkp_ctx::<SparseState>(
            &g,
            2,
            &QmkpConfig::default(),
            &RtContext::unlimited(),
            Some(&cp),
        )
        .expect_err("k mismatch must be rejected");
        assert!(matches!(err.error, RtError::InvalidConfig(_)));
    }
}
