//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRunner;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Why a strategy could not produce a value (filter miss); bubbles up to
/// the `proptest!` loop, which retries the whole case.
#[derive(Debug, Clone, Copy)]
pub struct Rejection(pub &'static str);

/// Result of drawing one value from a strategy.
pub type NewValueResult<T> = Result<T, Rejection>;

/// How many times a filtering combinator retries locally before rejecting
/// the whole test case.
const LOCAL_FILTER_RETRIES: usize = 32;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy draws a fresh value directly from the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, then a final value from the
    /// strategy `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, mapping them.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            whence,
            f,
        }
    }

    /// Keeps only values satisfying `f`.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<T> {
        (**self).new_value(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<S::Value> {
        (**self).new_value(runner)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> NewValueResult<T> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<O> {
        Ok((self.f)(self.source.new_value(runner)?))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<S2::Value> {
        (self.f)(self.source.new_value(runner)?).new_value(runner)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<O> {
        for _ in 0..LOCAL_FILTER_RETRIES {
            if let Some(v) = (self.f)(self.source.new_value(runner)?) {
                return Ok(v);
            }
        }
        Err(Rejection(self.whence))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<S::Value> {
        for _ in 0..LOCAL_FILTER_RETRIES {
            let v = self.source.new_value(runner)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection(self.whence))
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<T> {
        let i = runner.rng().gen_range(0..self.options.len());
        self.options[i].new_value(runner)
    }
}

// --- ranges as strategies --------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<$t> {
                Ok(runner.rng().gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<$t> {
                Ok(runner.rng().gen_range(self.clone()))
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f64, f32);

// --- tuples of strategies --------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<Self::Value> {
                let ($($name,)+) = self;
                Ok(($($name.new_value(runner)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::ProptestConfig;

    fn runner() -> TestRunner {
        TestRunner::new(ProptestConfig::default(), "strategy::tests")
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = runner();
        let s = (1usize..5)
            .prop_flat_map(|n| (Just(n), 0..n))
            .prop_map(|(n, k)| (n, k));
        for _ in 0..100 {
            let (n, k) = s.new_value(&mut r).unwrap();
            assert!(k < n && n < 5);
        }
    }

    #[test]
    fn filter_map_rejects_impossible() {
        let mut r = runner();
        let s = (0u32..10).prop_filter_map("never", |_| None::<u32>);
        assert!(s.new_value(&mut r).is_err());
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut r = runner();
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.new_value(&mut r).unwrap() as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
