//! Ablation: persistency presolve in the MILP branch & bound across the
//! annealing datasets — fixed variables and node-count reduction.

use qmkp_bench::print_table;
use qmkp_graph::gen::{paper_anneal_dataset, ANNEAL_DATASETS};
use qmkp_milp::{minimize_qubo, BnbConfig};
use qmkp_qubo::{presolve, MkpQubo, MkpQuboParams};
use std::time::Duration;

fn main() {
    let mut rows = Vec::new();
    for &(n, m) in &ANNEAL_DATASETS[..3] {
        let g = paper_anneal_dataset(n, m);
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
        let pre = presolve(&mq.model);
        let budget = Duration::from_millis(500);
        let plain = minimize_qubo(
            &mq.model,
            &BnbConfig {
                presolve: false,
                time_limit: budget,
                ..BnbConfig::default()
            },
        );
        let with = minimize_qubo(
            &mq.model,
            &BnbConfig {
                time_limit: budget,
                ..BnbConfig::default()
            },
        );
        rows.push(vec![
            format!("D_{{{n},{m}}}"),
            mq.num_vars().to_string(),
            pre.num_fixed().to_string(),
            plain.nodes.to_string(),
            with.nodes.to_string(),
            format!("{:.0}", plain.best_energy),
            format!("{:.0}", with.best_energy),
        ]);
    }
    print_table(
        "Ablation — MILP presolve (500 ms budget, k = 3, R = 2)",
        &[
            "dataset",
            "vars",
            "fixed",
            "nodes (plain)",
            "nodes (presolve)",
            "best (plain)",
            "best (presolve)",
        ],
        &rows,
    );
}
