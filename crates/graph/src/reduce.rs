//! Classical graph reductions for MKP.
//!
//! The paper's "orthogonality" discussion integrates the core-truss
//! co-pruning of Chang et al. to shrink inputs before handing them to the
//! quantum algorithms (qMKP "operates on slightly larger datasets within
//! the hardware constraints" after reduction). This module implements:
//!
//! * core decomposition (peeling) and degeneracy ordering,
//! * first-order (degree/core) pruning: a vertex in a k-plex of size ≥ `lb`
//!   has global degree ≥ `lb - k`,
//! * second-order (common-neighbour / truss-style) pruning: two vertices
//!   `u, v` in a k-plex `P` with `|P| ≥ lb` share at least `lb - 2k` common
//!   neighbours if adjacent, and at least `lb - 2k + 2` if non-adjacent,
//! * an iterated co-pruning loop combining both rules, and
//! * a cheap greedy lower bound to seed `lb`.
//!
//! All rules are *sound*: the returned vertex set contains every k-plex of
//! size ≥ `lb` of the input graph (verified exhaustively in tests).

use crate::graph::Graph;
use crate::plex::{greedy_extend, is_kplex};
use crate::vertex_set::VertexSet;

/// Core number of every vertex (the largest `c` such that the vertex
/// survives in the `c`-core), computed by peeling in `O(n²)` for our
/// bitset representation.
pub fn core_numbers(g: &Graph) -> Vec<usize> {
    let n = g.n();
    let mut alive = g.vertices();
    let mut core = vec![0usize; n];
    let mut current = 0usize;
    while !alive.is_empty() {
        // Find the minimum remaining degree.
        let (v, d) = alive
            .iter()
            .map(|v| (v, g.degree_in(v, alive)))
            .min_by_key(|&(_, d)| d)
            .expect("alive is non-empty");
        current = current.max(d);
        core[v] = current;
        alive.remove(v);
    }
    core
}

/// The maximal `c`-core: the (unique) maximal vertex set where every vertex
/// has at least `c` neighbours inside the set. May be empty.
pub fn kcore(g: &Graph, c: usize) -> VertexSet {
    let mut alive = g.vertices();
    loop {
        let mut removed = false;
        for v in alive.iter() {
            if g.degree_in(v, alive) < c {
                alive.remove(v);
                removed = true;
            }
        }
        if !removed {
            return alive;
        }
    }
}

/// Degeneracy ordering: repeatedly removes a minimum-degree vertex.
/// Returns `(order, degeneracy)`.
pub fn degeneracy_order(g: &Graph) -> (Vec<usize>, usize) {
    let mut alive = g.vertices();
    let mut order = Vec::with_capacity(g.n());
    let mut degeneracy = 0;
    while !alive.is_empty() {
        let (v, d) = alive
            .iter()
            .map(|v| (v, g.degree_in(v, alive)))
            .min_by_key(|&(_, d)| d)
            .expect("alive is non-empty");
        degeneracy = degeneracy.max(d);
        order.push(v);
        alive.remove(v);
    }
    (order, degeneracy)
}

/// A cheap greedy lower bound on the maximum k-plex size: greedily extends
/// from each vertex (in descending degree order over a small prefix) and
/// takes the best result.
pub fn greedy_lower_bound(g: &Graph, k: usize) -> VertexSet {
    let mut best = VertexSet::EMPTY;
    let mut starts: Vec<usize> = (0..g.n()).collect();
    starts.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    for &v in starts.iter().take(8.min(starts.len())) {
        let p = greedy_extend(g, VertexSet::singleton(v), k);
        if p.len() > best.len() {
            best = p;
        }
    }
    debug_assert!(is_kplex(g, best, k));
    best
}

/// Whether the pair `(u, v)` can coexist in a k-plex of size ≥ `lb`, by the
/// second-order common-neighbour bounds, restricted to the candidate set
/// `cand`.
fn pair_compatible(g: &Graph, u: usize, v: usize, k: usize, lb: usize, cand: VertexSet) -> bool {
    let cn = g.common_neighbors_in(u, v, cand).len();
    if g.has_edge(u, v) {
        // Adjacent pair: |N(u) ∩ N(v) ∩ P| ≥ |P| - 2k ≥ lb - 2k.
        cn + 2 * k >= lb
    } else {
        // Non-adjacent pair: both vertices miss each other, so the bound
        // tightens by 2: cn ≥ lb - 2k + 2.
        cn + 2 * k >= lb + 2
    }
}

/// Result of [`reduce_for_mkp`].
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Vertices that may participate in a k-plex of size ≥ `lb`.
    pub kept: VertexSet,
    /// The lower bound the reduction was computed against.
    pub lb: usize,
    /// Number of co-pruning rounds until fixpoint.
    pub rounds: usize,
}

/// Core-truss co-pruning: iterates first-order (degree) and second-order
/// (pair-compatibility support) rules to a fixpoint.
///
/// Soundness contract: every k-plex of `g` with at least `lb` vertices is
/// entirely contained in the returned `kept` set. (If you only need *some*
/// maximum k-plex preserved, call with `lb = best_known + 1` to prune
/// harder; with the convention used here, calling with `lb` equal to the
/// size of a known k-plex keeps all optimal solutions of that size.)
pub fn reduce_for_mkp(g: &Graph, k: usize, lb: usize) -> Reduction {
    let mut kept = g.vertices();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let before = kept;
        // First-order rule: global degree within the candidate set.
        loop {
            let mut removed = false;
            for v in kept.iter() {
                if g.degree_in(v, kept) + k < lb {
                    kept.remove(v);
                    removed = true;
                }
            }
            if !removed {
                break;
            }
        }
        // Second-order rule: v needs at least lb - 1 compatible partners.
        for v in kept.iter() {
            let support = kept
                .without(v)
                .iter()
                .filter(|&u| pair_compatible(g, v, u, k, lb, kept))
                .count();
            if support + 1 < lb {
                kept.remove(v);
            }
        }
        if kept == before || kept.is_empty() {
            return Reduction { kept, lb, rounds };
        }
    }
}

/// Convenience wrapper: computes a greedy lower bound, reduces with it, and
/// returns the reduced candidate set together with the witness k-plex.
pub fn auto_reduce(g: &Graph, k: usize) -> (Reduction, VertexSet) {
    let witness = greedy_lower_bound(g, k);
    let red = reduce_for_mkp(g, k, witness.len().max(1));
    (red, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gnm, paper_fig1_graph};

    #[test]
    fn core_numbers_of_a_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn core_numbers_of_clique_plus_pendant() {
        let g =
            Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3), (0, 4)]).unwrap();
        let cores = core_numbers(&g);
        assert_eq!(cores[4], 1);
        assert_eq!(&cores[..4], &[3, 3, 3, 3]);
    }

    #[test]
    fn kcore_peels_correctly() {
        let g =
            Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3), (0, 4)]).unwrap();
        assert_eq!(kcore(&g, 3), VertexSet::from_iter([0, 1, 2, 3]));
        assert_eq!(kcore(&g, 1), g.vertices());
        assert!(kcore(&g, 4).is_empty());
    }

    #[test]
    fn degeneracy_of_clique() {
        let g = Graph::complete(6).unwrap();
        let (order, d) = degeneracy_order(&g);
        assert_eq!(d, 5);
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn greedy_lower_bound_is_a_kplex() {
        let g = paper_fig1_graph();
        let p = greedy_lower_bound(&g, 2);
        assert!(is_kplex(&g, p, 2));
        assert!(p.len() >= 3);
    }

    /// Exhaustive soundness check: every k-plex of size ≥ lb survives.
    fn assert_reduction_sound(g: &Graph, k: usize, lb: usize) {
        let red = reduce_for_mkp(g, k, lb);
        for bits in 0..(1u128 << g.n()) {
            let s = VertexSet::from_bits(bits);
            if s.len() >= lb && is_kplex(g, s, k) {
                assert!(
                    s.is_subset_of(red.kept),
                    "k-plex {s:?} (k={k}, lb={lb}) was pruned; kept={:?}",
                    red.kept
                );
            }
        }
    }

    #[test]
    fn reduction_is_sound_on_fig1() {
        let g = paper_fig1_graph();
        for k in 1..=3 {
            for lb in 1..=5 {
                assert_reduction_sound(&g, k, lb);
            }
        }
    }

    #[test]
    fn reduction_is_sound_on_random_graphs() {
        for seed in 0..5 {
            let g = gnm(9, 14, seed).unwrap();
            for k in 1..=2 {
                for lb in 2..=5 {
                    assert_reduction_sound(&g, k, lb);
                }
            }
        }
    }

    #[test]
    fn reduction_prunes_something_on_sparse_graphs() {
        // A star plus a clique: asking for lb = 4 with k = 1 should discard
        // the star's leaves.
        let mut g = Graph::complete(4).unwrap();
        // Recreate with extra star part.
        let mut edges: Vec<_> = g.edges().collect();
        for leaf in 4..8 {
            edges.push((0, leaf));
        }
        g = Graph::from_edges(8, edges).unwrap();
        let red = reduce_for_mkp(&g, 1, 4);
        assert_eq!(red.kept, VertexSet::from_iter([0, 1, 2, 3]));
    }

    #[test]
    fn auto_reduce_keeps_witness() {
        let g = paper_fig1_graph();
        let (red, witness) = auto_reduce(&g, 2);
        assert!(witness.is_subset_of(red.kept));
    }

    #[test]
    fn impossible_bound_empties_graph() {
        let g = paper_fig1_graph();
        let red = reduce_for_mkp(&g, 1, 6); // no 6-clique here
        assert!(red.kept.is_empty());
    }
}
