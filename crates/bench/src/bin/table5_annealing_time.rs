//! Table V — qaMKP objective cost for different annealing times Δt
//! at fixed total runtime t = Δt · s = 1000 µs (k = 3, R = 2) on the
//! D_{n,m} annealing datasets.

use qmkp_annealer::{sqa_qubo, SqaConfig};
use qmkp_bench::{print_table, quick_mode, Provenance};
use qmkp_graph::gen::{paper_anneal_dataset, ANNEAL_DATASETS};
use qmkp_qubo::{MkpQubo, MkpQuboParams};

fn main() {
    let mut prov = Provenance::start("table5_annealing_time");
    let total_us = 1000.0;
    let dts: &[f64] = if quick_mode() {
        &[1.0, 20.0]
    } else {
        &[1.0, 10.0, 20.0, 40.0, 100.0, 200.0]
    };
    let datasets: &[(usize, usize)] = if quick_mode() {
        &ANNEAL_DATASETS[..2]
    } else {
        &ANNEAL_DATASETS
    };

    prov.config("total_us", total_us);
    prov.config("k", 3);
    prov.config("r", 2.0);
    prov.config("seed", 11);
    for &dt in dts {
        prov.config("dt_us", dt);
    }
    for &(n, m) in datasets {
        prov.config("dataset", format!("D_{{{n},{m}}}"));
    }

    let mut headers = vec!["Dataset".to_string()];
    headers.extend(dts.iter().map(|dt| format!("{dt:.0} µs")));
    let mut rows = Vec::new();
    for &(n, m) in datasets {
        let g = paper_anneal_dataset(n, m);
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
        let mut row = vec![format!("D_{{{n},{m}}}")];
        for &dt in dts {
            let shots = ((total_us / dt).round() as usize).max(1);
            let out = sqa_qubo(
                &mq.model,
                &SqaConfig {
                    seed: 11,
                    ..SqaConfig::from_anneal_time(dt, shots)
                },
            );
            prov.outcome(
                format!("cost[D_{{{n},{m}}},dt={dt:.0}]"),
                format!("{:.0}", out.best_energy),
            );
            row.push(format!("{:.0}", out.best_energy));
        }
        rows.push(row);
    }
    print_table(
        "Table V — qaMKP cost vs annealing time Δt (t = 1000 µs, k = 3, R = 2)",
        &headers,
        &rows,
    );
    println!("\n(lower is better; the paper observes the minimum at Δt = 1 µs)");
    prov.finish();
}
