//! Chrome-trace exporter: converts a `qmkp-obs` JSONL trace (written by
//! `QMKP_OBS_JSON=<path>` / [`qmkp_obs::JsonlSink`]) into the Chrome
//! Trace Event JSON-array format that `chrome://tracing`, Perfetto and
//! `speedscope` all load.
//!
//! The obs wire format carries *durations*, not wall timestamps (spans
//! end with `ns`, observes are bare `ns`), so the exporter synthesizes a
//! virtual per-thread timeline: every completed span or observation
//! becomes a `"X"` complete event laid out at the thread's running
//! cursor, which only advances when work completes. Nested spans keep
//! their nesting — a span's slice starts where the cursor stood at its
//! `span_start`, and children pack left-to-right inside it. The
//! `qsim.kernel.layer` observations emitted by the DAG-scheduled runner
//! therefore render as back-to-back kernel slices, one per layer.
//!
//! Counters and gauges become `"C"` counter tracks (counters cumulative,
//! gauges last-value); messages become `"i"` instants.
//!
//! ```text
//! cargo run -p qmkp-bench --bin chrome_trace -- trace.jsonl [--out trace.json]
//! ```

use qmkp_obs::json::{self, Json};
use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;

/// What one conversion did, for the summary line and the tests.
#[derive(Debug, Default, PartialEq)]
struct ExportStats {
    /// `"X"` complete events (spans + observations).
    slices: usize,
    /// `"C"` counter samples (counters + gauges).
    samples: usize,
    /// `"i"` instant events (messages).
    instants: usize,
    /// Lines that were not valid obs events (skipped, reported).
    skipped: usize,
    /// Total nanoseconds attributed to `qsim.kernel.layer` slices.
    kernel_layer_ns: u128,
    /// Number of `qsim.kernel.layer` slices (scheduled kernel layers).
    kernel_layers: usize,
}

/// Microseconds (Chrome's unit) from nanoseconds, keeping sub-µs detail.
fn us(ns: u128) -> String {
    json::number(ns as f64 / 1000.0)
}

fn field_u64(obj: &Json, name: &str) -> Option<u64> {
    obj.get(name).and_then(Json::as_f64).map(|v| v as u64)
}

fn field_str<'a>(obj: &'a Json, name: &str) -> Option<&'a str> {
    obj.get(name).and_then(Json::as_str)
}

/// Converts one JSONL trace into a Chrome trace-event JSON array.
fn export(input: &str) -> (String, ExportStats) {
    let mut stats = ExportStats::default();
    let mut events: Vec<String> = Vec::new();
    // Virtual per-thread clocks (ns); they advance only when work ends.
    let mut cursor: HashMap<u64, u128> = HashMap::new();
    // Open span id → the cursor position when it started.
    let mut open: HashMap<u64, u128> = HashMap::new();
    // Cumulative counter totals by name.
    let mut totals: HashMap<String, u64> = HashMap::new();
    let mut threads: Vec<u64> = Vec::new();

    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(obj) = json::parse(line) else {
            stats.skipped += 1;
            continue;
        };
        let (Some(kind), Some(thread)) = (field_str(&obj, "type"), field_u64(&obj, "thread"))
        else {
            stats.skipped += 1;
            continue;
        };
        if !threads.contains(&thread) {
            threads.push(thread);
        }
        let now = *cursor.entry(thread).or_insert(0);
        match kind {
            "span_start" => {
                let Some(id) = field_u64(&obj, "id") else {
                    stats.skipped += 1;
                    continue;
                };
                open.insert(id, now);
            }
            "span_end" | "duration" => {
                let (Some(name), Some(ns)) = (field_str(&obj, "name"), field_u64(&obj, "ns"))
                else {
                    stats.skipped += 1;
                    continue;
                };
                let ns = ns as u128;
                // A span slice starts where its span_start saw the
                // cursor; an observation starts at the cursor itself.
                let start = match kind {
                    "span_end" => field_u64(&obj, "id")
                        .and_then(|id| open.remove(&id))
                        .unwrap_or(now),
                    _ => now,
                };
                events.push(format!(
                    "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{thread}}}",
                    json::quote(name),
                    us(start),
                    us(ns),
                ));
                stats.slices += 1;
                if name == "qsim.kernel.layer" {
                    stats.kernel_layers += 1;
                    stats.kernel_layer_ns += ns;
                }
                let end = start.saturating_add(ns);
                cursor.insert(thread, now.max(end));
            }
            "counter" => {
                let (Some(name), Some(delta)) = (field_str(&obj, "name"), field_u64(&obj, "delta"))
                else {
                    stats.skipped += 1;
                    continue;
                };
                let total = totals.entry(name.to_string()).or_insert(0);
                *total += delta;
                events.push(format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{thread},\
                     \"args\":{{\"value\":{total}}}}}",
                    json::quote(name),
                    us(now),
                ));
                stats.samples += 1;
            }
            "gauge" => {
                let (Some(name), Some(value)) = (
                    field_str(&obj, "name"),
                    obj.get("value").and_then(Json::as_f64),
                ) else {
                    stats.skipped += 1;
                    continue;
                };
                events.push(format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{thread},\
                     \"args\":{{\"value\":{}}}}}",
                    json::quote(name),
                    us(now),
                    json::number(value),
                ));
                stats.samples += 1;
            }
            "message" => {
                let Some(text) = field_str(&obj, "text") else {
                    stats.skipped += 1;
                    continue;
                };
                events.push(format!(
                    "{{\"name\":{},\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{thread},\"s\":\"t\"}}",
                    json::quote(text),
                    us(now),
                ));
                stats.instants += 1;
            }
            _ => stats.skipped += 1,
        }
    }

    // Thread-name metadata rows so the viewer labels the virtual lanes.
    let mut body: Vec<String> = threads
        .iter()
        .map(|t| {
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{t},\
                 \"args\":{{\"name\":\"obs thread {t}\"}}}}"
            )
        })
        .collect();
    body.extend(events);
    (format!("[{}]\n", body.join(",\n")), stats)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (input_path, out_path) = match args.as_slice() {
        [input] => (input.clone(), format!("{input}.trace.json")),
        [input, flag, out] if flag == "--out" => (input.clone(), out.clone()),
        _ => {
            println!("usage: chrome_trace <trace.jsonl> [--out <trace.json>]");
            return ExitCode::FAILURE;
        }
    };
    let input = match fs::read_to_string(&input_path) {
        Ok(s) => s,
        Err(e) => {
            println!("cannot read {input_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (rendered, stats) = export(&input);
    if let Err(e) = fs::write(&out_path, &rendered) {
        println!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{out_path}: {} slice(s), {} counter sample(s), {} instant(s), {} skipped",
        stats.slices, stats.samples, stats.instants, stats.skipped
    );
    if stats.kernel_layers > 0 {
        println!(
            "kernel layers: {} slice(s), {:.3} ms total, {:.1} µs/layer mean",
            stats.kernel_layers,
            stats.kernel_layer_ns as f64 / 1e6,
            stats.kernel_layer_ns as f64 / 1e3 / stats.kernel_layers as f64,
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(events: &[&str]) -> String {
        events.join("\n")
    }

    #[test]
    fn spans_nest_on_the_virtual_timeline() {
        let input = lines(&[
            r#"{"type":"span_start","id":1,"parent":0,"thread":3,"name":"outer"}"#,
            r#"{"type":"span_start","id":2,"parent":1,"thread":3,"name":"inner"}"#,
            r#"{"type":"span_end","id":2,"thread":3,"name":"inner","ns":4000}"#,
            r#"{"type":"span_end","id":1,"thread":3,"name":"outer","ns":10000}"#,
        ]);
        let (out, stats) = export(&input);
        assert_eq!(stats.slices, 2);
        assert_eq!(stats.skipped, 0);
        let parsed = json::parse(&out).expect("valid JSON array");
        let arr = parsed.as_array().expect("array");
        // 1 metadata row + 2 slices.
        assert_eq!(arr.len(), 3);
        let inner = &arr[1];
        let outer = &arr[2];
        assert_eq!(inner.get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(inner.get("dur").and_then(Json::as_f64), Some(4.0));
        // The outer slice starts where its span_start saw the cursor —
        // 0 — and spans its full 10 µs, containing the inner slice.
        assert_eq!(outer.get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(outer.get("dur").and_then(Json::as_f64), Some(10.0));
    }

    #[test]
    fn kernel_layer_observes_pack_back_to_back() {
        let input = lines(&[
            r#"{"type":"duration","thread":1,"name":"qsim.kernel.layer","ns":2000}"#,
            r#"{"type":"duration","thread":1,"name":"qsim.kernel.layer","ns":3000}"#,
        ]);
        let (out, stats) = export(&input);
        assert_eq!(stats.kernel_layers, 2);
        assert_eq!(stats.kernel_layer_ns, 5000);
        let parsed = json::parse(&out).unwrap();
        let arr = parsed.as_array().unwrap();
        let first = &arr[1];
        let second = &arr[2];
        assert_eq!(first.get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(second.get("ts").and_then(Json::as_f64), Some(2.0));
        assert_eq!(second.get("dur").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn threads_get_independent_timelines() {
        let input = lines(&[
            r#"{"type":"duration","thread":1,"name":"a","ns":1000}"#,
            r#"{"type":"duration","thread":2,"name":"b","ns":1000}"#,
        ]);
        let (out, _) = export(&input);
        let parsed = json::parse(&out).unwrap();
        let arr = parsed.as_array().unwrap();
        // 2 metadata rows + 2 slices, both slices at ts 0 on their lane.
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[2].get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(arr[3].get("ts").and_then(Json::as_f64), Some(0.0));
        assert_ne!(
            arr[2].get("tid").and_then(Json::as_f64),
            arr[3].get("tid").and_then(Json::as_f64)
        );
    }

    #[test]
    fn counters_accumulate_and_gauges_sample() {
        let input = lines(&[
            r#"{"type":"counter","thread":1,"name":"rt.retries","delta":1}"#,
            r#"{"type":"counter","thread":1,"name":"rt.retries","delta":2}"#,
            r#"{"type":"gauge","thread":1,"name":"g","value":2.5}"#,
        ]);
        let (out, stats) = export(&input);
        assert_eq!(stats.samples, 3);
        let parsed = json::parse(&out).unwrap();
        let arr = parsed.as_array().unwrap();
        let second = &arr[2];
        let value = second
            .get("args")
            .and_then(|a| a.get("value"))
            .and_then(Json::as_f64);
        assert_eq!(value, Some(3.0), "counter track is cumulative");
        let gauge = arr[3]
            .get("args")
            .and_then(|a| a.get("value"))
            .and_then(Json::as_f64);
        assert_eq!(gauge, Some(2.5));
    }

    #[test]
    fn real_scheduled_run_round_trips_with_layer_slices() {
        use qmkp_obs::Sink;
        use qmkp_qsim::{Circuit, CompileOptions, CompiledCircuit, DenseState, Gate, QuantumState};
        let mut c = Circuit::new(6);
        for q in 0..3 {
            c.push(Gate::H(q)).unwrap();
        }
        c.push(Gate::ccnot(0, 1, 3)).unwrap();
        c.push(Gate::ccnot(1, 2, 4)).unwrap();
        let compiled = CompiledCircuit::compile_with(
            &c,
            CompileOptions {
                dag_scheduler: true,
            },
        )
        .unwrap();
        let path = std::env::temp_dir().join(format!(
            "chrome_trace_roundtrip_{}.jsonl",
            std::process::id()
        ));
        let sink = std::sync::Arc::new(qmkp_obs::JsonlSink::create(&path).unwrap());
        let guard = qmkp_obs::attach(sink.clone());
        let mut s = DenseState::zero(6).unwrap();
        s.run_compiled(&compiled).unwrap();
        drop(guard);
        sink.flush();

        let input = fs::read_to_string(&path).unwrap();
        let _ = fs::remove_file(&path);
        let (out, stats) = export(&input);
        let layers = compiled.stats().layers;
        assert!(layers >= 1);
        assert!(
            stats.kernel_layers >= layers,
            "expected at least {layers} layer slice(s), saw {}",
            stats.kernel_layers
        );
        assert!(json::parse(&out).is_ok());
    }

    #[test]
    fn garbage_lines_are_skipped_not_fatal() {
        let input = lines(&[
            "not json at all",
            r#"{"type":"mystery","thread":1}"#,
            r#"{"type":"message","thread":1,"text":"hello"}"#,
        ]);
        let (out, stats) = export(&input);
        assert_eq!(stats.skipped, 2);
        assert_eq!(stats.instants, 1);
        assert!(json::parse(&out).is_ok(), "output must stay valid JSON");
    }
}
