//! Table VI — qaMKP objective cost for penalty weights R ∈ {1.1, 2, 4, 8}
//! as the total runtime grows, on D_{10,40} (k = 3, Δt = 1 µs). A `*`
//! marks runs whose best sample decodes to a maximum k-plex (the paper's
//! boldface "optimal solution found" cells).

use qmkp_annealer::{sqa_qubo, SqaConfig};
use qmkp_bench::{print_table, quick_mode, Provenance};
use qmkp_classical::max_kplex_bnb;
use qmkp_graph::gen::paper_anneal_dataset;
use qmkp_qubo::{MkpQubo, MkpQuboParams};

fn main() {
    let mut prov = Provenance::start("table6_penalty_r");
    let g = paper_anneal_dataset(10, 40);
    let k = 3;
    let opt = max_kplex_bnb(&g, k).len();
    println!("(ground truth: maximum {k}-plex of D_{{10,40}} has size {opt})");

    let runtimes: &[f64] = if quick_mode() {
        &[1.0, 10.0, 100.0]
    } else {
        &[1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0]
    };
    let rs = [1.1, 2.0, 4.0, 8.0];
    prov.config("dataset", "D_{10,40}");
    prov.config("k", k);
    prov.config("seed", 5);
    for &r in &rs {
        prov.config("r", r);
    }
    for &t in runtimes {
        prov.config("runtime_us", t);
    }
    prov.outcome("ground_truth_size", opt);

    let mut headers = vec!["R".to_string()];
    headers.extend(runtimes.iter().map(|t| format!("{t:.0} µs")));
    let mut rows = Vec::new();
    for &r in &rs {
        let mq = MkpQubo::new(&g, MkpQuboParams { k, r });
        let mut row = vec![format!("{r}")];
        for &t in runtimes {
            let shots = (t.round() as usize).max(1);
            let out = sqa_qubo(
                &mq.model,
                &SqaConfig {
                    seed: 5,
                    ..SqaConfig::from_anneal_time(1.0, shots)
                },
            );
            let bits = out
                .best
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .fold(0u128, |acc, (i, _)| acc | (1 << i));
            let plex = mq.decode(bits);
            let optimal = qmkp_graph::is_kplex(&g, plex, k) && plex.len() == opt;
            row.push(format!(
                "{:.1}{}",
                out.best_energy,
                if optimal { " *" } else { "" }
            ));
        }
        rows.push(row);
    }
    print_table(
        "Table VI — qaMKP cost vs penalty R on D_{10,40} (k = 3, Δt = 1 µs; * = optimum decoded)",
        &headers,
        &rows,
    );
    prov.finish();
}
