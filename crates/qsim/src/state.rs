//! Quantum state backends: dense statevector and sparse sorted-vec.
//!
//! Both backends execute circuits through the compiled kernel path
//! ([`crate::compile::CompiledCircuit`]): [`QuantumState::run`] lowers the
//! circuit once and then applies fused ops, each in a single pass over the
//! state. When the register fits in 64 bits (every instance in the paper
//! does) the compiler also emits u64-specialised ops and the runner
//! dispatches those through [`QuantumState::apply_op64`]. The gate-by-gate
//! interpreter survives as [`QuantumState::run_interpreted`] (and
//! [`QuantumState::apply`]) for cross-checking and for callers that apply
//! individual gates.
//!
//! The sparse backend stores the state as a `Vec<(key, amplitude)>` sorted
//! by basis key (cf. the sorted-structure representation of sparse
//! Feynman-path simulators): permutation and diagonal kernels are one
//! in-place pass, and the `Single` butterfly is a linear two-way merge
//! with in-place epsilon pruning — no per-gate allocation or rehashing,
//! which the previous `HashMap` representation paid on every H/Ry gate.
//!
//! When the compiler's DAG scheduler is on (the default — see
//! [`crate::compile::CompileOptions`]), `run_compiled` walks the
//! schedule's support-disjoint layers instead of the flat op list, and
//! each layer goes through a fused multi-op kernel
//! ([`QuantumState::apply_layer`] / [`QuantumState::apply_layer64`]): the
//! dense backend evaluates the layer's combined permutation, diagonal,
//! and single-qubit butterflies in one (rayon-parallel) gather pass; the
//! sparse backend collapses permutation+diagonal runs into a single
//! key-rewrite pass.

use crate::circuit::Circuit;
use crate::compile::{
    BasisKey, CompiledCircuit, CompiledOp, CompiledOp64, FlipStep, Op, PhaseStep, SingleQubit,
};
use crate::complex::Complex;
use crate::error::SimError;
use crate::gate::Gate;
use qmkp_rt::RtContext;
use rand::Rng;
use std::collections::BTreeMap;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Amplitudes below this magnitude are dropped by the sparse backend after
/// non-permutation gates, keeping the representation tight without
/// affecting measurement statistics.
pub const PRUNE_EPS: f64 = 1e-14;

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Dense kernels run serially below this amplitude count; above it, passes
/// are split across threads. Covers the thread-spawn overhead of the
/// scoped-thread pool with room to spare.
#[cfg(feature = "parallel")]
const PAR_MIN_AMPS: usize = 1 << 16;

/// Work granule (in amplitudes) for index-parallel dense passes.
#[cfg(feature = "parallel")]
const PAR_CHUNK: usize = 1 << 13;

/// Observability name for a kernel kind, shared by both op widths.
fn kernel_kind<K>(op: &Op<K>) -> &'static str {
    match op {
        Op::Permutation(_) => "qsim.kernel.permutation",
        Op::Diagonal(_) => "qsim.kernel.diagonal",
        Op::Single(_) => "qsim.kernel.single",
    }
}

/// Per-circuit observability switch, resolved once per `run_compiled*`
/// call so the disabled path stays a bare loop: `traced` streams per-op
/// observe events to sinks, `metered` folds the same timings into
/// labeled metric histograms (labels: `backend=dense|sparse`,
/// `scheduled=on|off`).
struct KernelMeter {
    traced: bool,
    metered: bool,
    labels: [(&'static str, &'static str); 2],
}

impl KernelMeter {
    fn new(backend: &'static str, scheduled: bool) -> KernelMeter {
        KernelMeter {
            traced: qmkp_obs::enabled_for("qsim.kernel"),
            metered: qmkp_obs::metrics::enabled(),
            labels: [
                ("backend", backend),
                ("scheduled", if scheduled { "on" } else { "off" }),
            ],
        }
    }

    /// Whether per-op timing is needed at all this circuit.
    fn active(&self) -> bool {
        self.traced || self.metered
    }

    fn layer(&self, elapsed: std::time::Duration) {
        if self.traced {
            qmkp_obs::observe("qsim.kernel.layer", elapsed);
        }
        if self.metered {
            qmkp_obs::metrics::observe_duration("qsim.kernel.layer", &self.labels, elapsed);
        }
    }

    fn op(&self, kind: &'static str, elapsed: std::time::Duration) {
        if self.traced {
            qmkp_obs::observe(kind, elapsed);
        }
        if self.metered {
            qmkp_obs::metrics::observe_duration(kind, &self.labels, elapsed);
        }
    }
}

/// Common interface of the simulation backends.
///
/// Basis states are `u128` bit strings where bit `i` is qubit `i`
/// (LSB = qubit 0), matching the `VertexSet` encoding in `qmkp-graph`.
pub trait QuantumState {
    /// Number of qubits.
    fn width(&self) -> usize;

    /// Applies a single gate (assumed already validated for this width).
    fn apply(&mut self, gate: &Gate);

    /// Applies one compiled kernel op.
    fn apply_op(&mut self, op: &CompiledOp);

    /// Applies one u64-specialised kernel op (only valid on states of
    /// width ≤ 64). The default widens the op back to `u128`; both
    /// backends override it with a direct u64 pass.
    fn apply_op64(&mut self, op: &CompiledOp64) {
        self.apply_op(&op.widen());
    }

    /// Applies one scheduled layer of support-disjoint compiled ops. The
    /// default applies them one by one (correct for any op list); the
    /// backends override it with fused one-pass layer kernels.
    fn apply_layer(&mut self, ops: &[CompiledOp]) {
        for op in ops {
            self.apply_op(op);
        }
    }

    /// u64-specialised variant of [`QuantumState::apply_layer`].
    fn apply_layer64(&mut self, ops: &[CompiledOp64]) {
        for op in ops {
            self.apply_op64(op);
        }
    }

    /// Heap footprint of the state representation in bytes (amplitude
    /// storage plus reusable scratch buffers). Exact for both backends:
    /// buffer capacity times entry size.
    fn memory_bytes(&self) -> usize;

    /// Reports backend-specific gauges (memory footprint, support size)
    /// to the observability layer. Called by the traced branch of
    /// [`QuantumState::run_compiled`]; backends override it with their
    /// own gauge names. The default reports nothing.
    fn trace_gauges(&self) {}

    /// Number of nonzero amplitudes, when the backend tracks it cheaply.
    /// `None` for the dense backend, whose support is implicit in the
    /// width.
    fn support_hint(&self) -> Option<usize> {
        None
    }

    /// Stable backend label used by metrics (`dense`, `sparse`, …).
    fn backend_name(&self) -> &'static str {
        "unknown"
    }

    /// The amplitude of a basis state.
    fn amplitude(&self, basis: u128) -> Complex;

    /// All nonzero `(basis, amplitude)` pairs, sorted by basis state.
    fn nonzero(&self) -> Vec<(u128, Complex)>;

    /// Runs a whole circuit through the compiled kernel path.
    ///
    /// # Errors
    /// Fails if the circuit width does not match the state width or the
    /// circuit does not compile ([`SimError::Compile`]).
    fn run(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        self.run_compiled(&CompiledCircuit::compile(circuit)?)
    }

    /// Runs an already-compiled circuit, preferring the u64-specialised
    /// ops when the compiler emitted them (width ≤ 64).
    ///
    /// # Errors
    /// Fails if the compiled width does not match the state width.
    fn run_compiled(&mut self, compiled: &CompiledCircuit) -> Result<(), SimError> {
        if compiled.width() != self.width() {
            return Err(SimError::WidthMismatch {
                expected: self.width(),
                actual: compiled.width(),
            });
        }
        // Branch once per circuit, not per op: the unobserved path runs
        // a bare loop.
        let meter = KernelMeter::new(self.backend_name(), compiled.schedule().is_some());
        if let Some(schedule) = compiled.schedule() {
            // Scheduled path: dispatch whole support-disjoint layers
            // through the fused layer kernels.
            if let Some(ops) = compiled.narrow_ops() {
                if meter.active() {
                    for layer in &schedule.layers {
                        let start = std::time::Instant::now();
                        self.apply_layer64(&ops[layer.clone()]);
                        meter.layer(start.elapsed());
                    }
                } else {
                    for layer in &schedule.layers {
                        self.apply_layer64(&ops[layer.clone()]);
                    }
                }
            } else if meter.active() {
                for layer in &schedule.layers {
                    let start = std::time::Instant::now();
                    self.apply_layer(&compiled.ops()[layer.clone()]);
                    meter.layer(start.elapsed());
                }
            } else {
                for layer in &schedule.layers {
                    self.apply_layer(&compiled.ops()[layer.clone()]);
                }
            }
            if meter.traced {
                self.trace_gauges();
            }
            return Ok(());
        }
        if let Some(ops) = compiled.narrow_ops() {
            if meter.active() {
                for op in ops {
                    let start = std::time::Instant::now();
                    self.apply_op64(op);
                    meter.op(kernel_kind(op), start.elapsed());
                }
            } else {
                for op in ops {
                    self.apply_op64(op);
                }
            }
        } else if meter.active() {
            for op in compiled.ops() {
                let start = std::time::Instant::now();
                self.apply_op(op);
                meter.op(kernel_kind(op), start.elapsed());
            }
        } else {
            for op in compiled.ops() {
                self.apply_op(op);
            }
        }
        if meter.traced {
            self.trace_gauges();
        }
        Ok(())
    }

    /// Runs a whole circuit through the compiled kernel path under an
    /// execution-runtime context: see [`QuantumState::run_compiled_ctx`].
    ///
    /// # Errors
    /// As [`QuantumState::run`], plus [`SimError::Interrupted`] when the
    /// context's budget is exhausted, cancellation is requested, or an
    /// injected fault fires.
    fn run_ctx(&mut self, circuit: &Circuit, ctx: &RtContext) -> Result<(), SimError> {
        self.run_compiled_ctx(&CompiledCircuit::compile(circuit)?, ctx)
    }

    /// Runs an already-compiled circuit under an execution-runtime
    /// context. Identical numerics to [`QuantumState::run_compiled`], but
    /// the state's footprint is admitted against the byte ceiling before
    /// the first pass and every kernel op is charged against the op
    /// budget, polls cancellation, and consults the `qsim.run.op`
    /// failpoint — interruption lands between ops, never inside a pass,
    /// so the state stays structurally valid (though mid-circuit).
    ///
    /// # Errors
    /// As [`QuantumState::run_compiled`], plus [`SimError::Interrupted`]
    /// carrying the structured [`qmkp_rt::RtError`].
    fn run_compiled_ctx(
        &mut self,
        compiled: &CompiledCircuit,
        ctx: &RtContext,
    ) -> Result<(), SimError> {
        if compiled.width() != self.width() {
            return Err(SimError::WidthMismatch {
                expected: self.width(),
                actual: compiled.width(),
            });
        }
        ctx.admit_bytes(self.memory_bytes())?;
        let meter = KernelMeter::new(self.backend_name(), compiled.schedule().is_some());
        if let Some(schedule) = compiled.schedule() {
            // Scheduled path: interruption lands between layers (never
            // inside a fused pass), and each layer is charged at its op
            // weight so budgets are comparable across compile modes.
            if let Some(ops) = compiled.narrow_ops() {
                for layer in &schedule.layers {
                    qmkp_rt::failpoint::check("qsim.run.op")?;
                    ctx.charge_ops(layer.len() as u64)?;
                    if meter.active() {
                        let start = std::time::Instant::now();
                        self.apply_layer64(&ops[layer.clone()]);
                        meter.layer(start.elapsed());
                    } else {
                        self.apply_layer64(&ops[layer.clone()]);
                    }
                }
            } else {
                for layer in &schedule.layers {
                    qmkp_rt::failpoint::check("qsim.run.op")?;
                    ctx.charge_ops(layer.len() as u64)?;
                    if meter.active() {
                        let start = std::time::Instant::now();
                        self.apply_layer(&compiled.ops()[layer.clone()]);
                        meter.layer(start.elapsed());
                    } else {
                        self.apply_layer(&compiled.ops()[layer.clone()]);
                    }
                }
            }
            if meter.traced {
                self.trace_gauges();
            }
            return Ok(());
        }
        if let Some(ops) = compiled.narrow_ops() {
            for op in ops {
                qmkp_rt::failpoint::check("qsim.run.op")?;
                ctx.charge_ops(1)?;
                if meter.active() {
                    let start = std::time::Instant::now();
                    self.apply_op64(op);
                    meter.op(kernel_kind(op), start.elapsed());
                } else {
                    self.apply_op64(op);
                }
            }
        } else {
            for op in compiled.ops() {
                qmkp_rt::failpoint::check("qsim.run.op")?;
                ctx.charge_ops(1)?;
                if meter.active() {
                    let start = std::time::Instant::now();
                    self.apply_op(op);
                    meter.op(kernel_kind(op), start.elapsed());
                } else {
                    self.apply_op(op);
                }
            }
        }
        if meter.traced {
            self.trace_gauges();
        }
        Ok(())
    }

    /// Runs a circuit gate by gate, without compilation. Reference path
    /// for equivalence testing against [`QuantumState::run`].
    ///
    /// # Errors
    /// Fails if the circuit width does not match the state width.
    fn run_interpreted(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.width() != self.width() {
            return Err(SimError::WidthMismatch {
                expected: self.width(),
                actual: circuit.width(),
            });
        }
        for g in circuit.gates() {
            self.apply(g);
        }
        Ok(())
    }

    /// The measurement probability of a basis state.
    fn probability(&self, basis: u128) -> f64 {
        self.amplitude(basis).norm_sqr()
    }

    /// Total norm² (should stay 1 up to numerical error).
    fn norm_sqr(&self) -> f64 {
        self.nonzero().iter().map(|(_, a)| a.norm_sqr()).sum()
    }

    /// Marginal probability distribution over a subset of qubits: returns a
    /// map from the subset's bit pattern (bit `i` of the key = `qubits[i]`)
    /// to probability.
    fn marginal(&self, qubits: &[usize]) -> BTreeMap<u128, f64> {
        let mut out = BTreeMap::new();
        for (basis, amp) in self.nonzero() {
            let mut key = 0u128;
            for (i, &q) in qubits.iter().enumerate() {
                if (basis >> q) & 1 == 1 {
                    key |= 1 << i;
                }
            }
            *out.entry(key).or_insert(0.0) += amp.norm_sqr();
        }
        out
    }

    /// Samples `shots` measurement outcomes of the given qubits, returning
    /// outcome → count. Outcome keys are encoded as in
    /// [`QuantumState::marginal`].
    ///
    /// Each shot is a binary search over the cumulative distribution, so
    /// sampling costs `O(support + shots·log support)` rather than the
    /// `O(shots·support)` of a per-shot linear scan.
    fn sample<R: Rng>(&self, rng: &mut R, shots: usize, qubits: &[usize]) -> BTreeMap<u128, usize>
    where
        Self: Sized,
    {
        let marg: Vec<(u128, f64)> = self.marginal(qubits).into_iter().collect();
        let mut cumulative = Vec::with_capacity(marg.len());
        let mut acc = 0.0;
        for &(_, p) in &marg {
            acc += p;
            cumulative.push(acc);
        }
        let total = acc;
        let mut counts = BTreeMap::new();
        for _ in 0..shots {
            let x: f64 = rng.gen::<f64>() * total;
            // First outcome whose cumulative mass exceeds x; the min guards
            // against x == total after floating-point rounding.
            let idx = cumulative.partition_point(|&c| c <= x);
            let chosen = marg
                .get(idx.min(marg.len().saturating_sub(1)))
                .map(|&(k, _)| k)
                .unwrap_or(0);
            *counts.entry(chosen).or_insert(0) += 1;
        }
        counts
    }
}

/// Backend-generic construction, letting budget-aware drivers pick where
/// the state lives (the degradation ladder constructs dense, then sparse,
/// through this one interface).
pub trait BackendState: QuantumState + Sized {
    /// Failpoint site consulted by [`BackendState::zero_budgeted`] before
    /// allocating.
    const ALLOC_SITE: &'static str;

    /// `|0…0⟩` over `width` qubits.
    ///
    /// # Errors
    /// Fails when the backend cannot represent the width.
    fn try_zero(width: usize) -> Result<Self, SimError>;

    /// Projected heap footprint of a fresh zero state of `width` qubits,
    /// saturating at `usize::MAX` for widths the backend cannot hold.
    fn projected_bytes(width: usize) -> usize;

    /// Budget-checked constructor: consults the backend's allocation
    /// failpoint and admits the projected footprint against the context's
    /// byte ceiling *before* allocating, so an over-budget dense request
    /// is rejected without touching the allocator.
    ///
    /// # Errors
    /// [`SimError::Interrupted`] on budget rejection or injected fault,
    /// or the backend's own width error.
    fn zero_budgeted(width: usize, ctx: &RtContext) -> Result<Self, SimError> {
        qmkp_rt::failpoint::check(Self::ALLOC_SITE)?;
        ctx.admit_bytes(Self::projected_bytes(width))?;
        Self::try_zero(width)
    }
}

// ---------------------------------------------------------------------------
// Dense backend
// ---------------------------------------------------------------------------

/// Maximum width of the dense backend (`2^26` amplitudes ≈ 1 GiB).
pub const MAX_DENSE_QUBITS: usize = 26;

/// Full statevector backend: `2^width` complex amplitudes.
#[derive(Debug, Clone)]
pub struct DenseState {
    width: usize,
    amps: Vec<Complex>,
    /// Reusable gather buffer for fused permutation passes; swapped with
    /// `amps` after each pass so no allocation recurs.
    scratch: Vec<Complex>,
}

impl DenseState {
    /// `|basis⟩` over `width` qubits.
    ///
    /// # Errors
    /// Fails if `width > 26`.
    pub fn from_basis(width: usize, basis: u128) -> Result<Self, SimError> {
        if width > MAX_DENSE_QUBITS {
            return Err(SimError::TooManyQubitsForDense {
                requested: width,
                max: MAX_DENSE_QUBITS,
            });
        }
        let mut amps = vec![Complex::ZERO; 1usize << width];
        amps[basis as usize] = Complex::ONE;
        Ok(DenseState {
            width,
            amps,
            scratch: Vec::new(),
        })
    }

    /// `|0…0⟩` over `width` qubits.
    ///
    /// # Errors
    /// Fails if `width > 26`.
    pub fn zero(width: usize) -> Result<Self, SimError> {
        Self::from_basis(width, 0)
    }

    /// Direct read-only access to the amplitude vector.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Zeroes every basis state for which `keep` is false and scales the
    /// survivors (used by measurement collapse).
    pub fn project(&mut self, keep: impl Fn(u128) -> bool, scale: f64) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            if keep(i as u128) {
                *a = a.scale(scale);
            } else {
                *a = Complex::ZERO;
            }
        }
    }

    /// One gather pass applying a fused permutation: `out[i] = in[P⁻¹(i)]`.
    /// Each [`FlipStep`] is an involution, so the inverse permutation is
    /// the steps applied in reverse order. Generic over the key width so
    /// the u64-specialised ops run without widening.
    fn apply_permutation<K: BasisKey>(&mut self, steps: &[FlipStep<K>]) {
        if steps.is_empty() {
            // Peephole cancellation can empty a run; skip the copy pass.
            return;
        }
        self.scratch.resize(self.amps.len(), Complex::ZERO);
        let amps = &self.amps;
        let scratch = &mut self.scratch[..];
        let gather = |i: usize| {
            let mut j = K::from_u128(i as u128);
            for s in steps.iter().rev() {
                j = s.apply(j);
            }
            amps[j.to_u128() as usize]
        };
        #[cfg(feature = "parallel")]
        if amps.len() >= PAR_MIN_AMPS {
            scratch
                .par_chunks_mut(PAR_CHUNK)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    let base = ci * PAR_CHUNK;
                    for (t, out) in chunk.iter_mut().enumerate() {
                        *out = gather(base + t);
                    }
                });
            std::mem::swap(&mut self.amps, &mut self.scratch);
            return;
        }
        for (i, out) in scratch.iter_mut().enumerate() {
            *out = gather(i);
        }
        std::mem::swap(&mut self.amps, &mut self.scratch);
    }

    /// One in-place pass applying a fused run of diagonal gates.
    fn apply_diagonal<K: BasisKey>(&mut self, phases: &[PhaseStep<K>]) {
        if phases.is_empty() {
            return;
        }
        let update = |i: usize, a: &mut Complex| {
            let b = K::from_u128(i as u128);
            for p in phases {
                if p.applies_to(b) {
                    *a *= p.phase;
                }
            }
        };
        #[cfg(feature = "parallel")]
        if self.amps.len() >= PAR_MIN_AMPS {
            self.amps
                .par_chunks_mut(PAR_CHUNK)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    let base = ci * PAR_CHUNK;
                    for (t, a) in chunk.iter_mut().enumerate() {
                        update(base + t, a);
                    }
                });
            return;
        }
        for (i, a) in self.amps.iter_mut().enumerate() {
            update(i, a);
        }
    }

    /// A butterfly pass applying a general single-qubit kernel.
    fn apply_single(&mut self, k: &SingleQubit) {
        let m = 1usize << k.qubit;
        let (m00, m01, m10, m11) = (k.m00, k.m01, k.m10, k.m11);
        // Processes a block whose length is a multiple of 2m, pairing
        // offsets (t, t+m) within each 2m-sized run.
        let butterfly = |block: &mut [Complex]| {
            let mut base = 0;
            while base < block.len() {
                for t in base..base + m {
                    let a = block[t];
                    let b = block[t + m];
                    block[t] = m00 * a + m01 * b;
                    block[t + m] = m10 * a + m11 * b;
                }
                base += 2 * m;
            }
        };
        #[cfg(feature = "parallel")]
        {
            // Chunks stay multiples of 2m (both powers of two), so no
            // amplitude pair straddles a chunk boundary.
            let chunk = (2 * m).max(PAR_CHUNK);
            if self.amps.len() >= PAR_MIN_AMPS && self.amps.len() > chunk {
                self.amps.par_chunks_mut(chunk).for_each(butterfly);
                return;
            }
        }
        butterfly(&mut self.amps);
    }

    /// One gather pass applying a whole support-disjoint layer at once:
    ///
    /// ```text
    /// out[i] = Σ_c (Π_j M_j[i_j][c_j]) · d(P⁻¹(i_c)) · in[P⁻¹(i_c)]
    /// ```
    ///
    /// where `P` is the layer's combined permutation (ladders of disjoint
    /// ops concatenated; the inverse is the steps reversed), `d` the
    /// combined diagonal, and `c` ranges over the `2^m` input bit
    /// combinations of the layer's `m` single-qubit kernels (`i_c` is `i`
    /// with those bits replaced by `c`). The layerizer caps `m` at
    /// [`crate::dag::MAX_LAYER_SINGLES`], so the sum stays short. Because
    /// supports are disjoint, the diagonal's bits are untouched by `P` and
    /// by the single substitutions, so `d` may be evaluated on the
    /// gathered source key.
    fn apply_layer_fused<K: BasisKey>(
        &mut self,
        perm: &[FlipStep<K>],
        diag: &[PhaseStep<K>],
        singles: &[SingleQubit],
    ) {
        if singles.is_empty() && perm.is_empty() {
            // Pure diagonal layer: stays an in-place pass.
            self.apply_diagonal(diag);
            return;
        }
        self.scratch.resize(self.amps.len(), Complex::ZERO);
        let amps = &self.amps;
        let scratch = &mut self.scratch[..];
        let combos = 1usize << singles.len();
        let gather = |i: usize| {
            let mut acc = Complex::ZERO;
            for c in 0..combos {
                let mut coeff = Complex::ONE;
                let mut ic = i;
                for (j, k) in singles.iter().enumerate() {
                    let m = 1usize << k.qubit;
                    let row = i & m != 0;
                    let col = (c >> j) & 1 != 0;
                    coeff *= match (row, col) {
                        (false, false) => k.m00,
                        (false, true) => k.m01,
                        (true, false) => k.m10,
                        (true, true) => k.m11,
                    };
                    ic = if col { ic | m } else { ic & !m };
                }
                let mut key = K::from_u128(ic as u128);
                for s in perm.iter().rev() {
                    key = s.apply(key);
                }
                let mut a = amps[key.to_u128() as usize];
                for p in diag {
                    if p.applies_to(key) {
                        a *= p.phase;
                    }
                }
                acc += coeff * a;
            }
            acc
        };
        #[cfg(feature = "parallel")]
        if amps.len() >= PAR_MIN_AMPS {
            scratch
                .par_chunks_mut(PAR_CHUNK)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    let base = ci * PAR_CHUNK;
                    for (t, out) in chunk.iter_mut().enumerate() {
                        *out = gather(base + t);
                    }
                });
            std::mem::swap(&mut self.amps, &mut self.scratch);
            return;
        }
        for (i, out) in scratch.iter_mut().enumerate() {
            *out = gather(i);
        }
        std::mem::swap(&mut self.amps, &mut self.scratch);
    }

    /// Layer dispatch, generic over the key width. The ops in a layer
    /// have pairwise-disjoint supports, so they commute and may run in
    /// any grouping; the dispatch picks the cheapest:
    ///
    /// * singles always run their in-place butterfly — routing a 2×2
    ///   kernel through the gather multiplies every output by `2^m`
    ///   summands, while a butterfly is one linear pass;
    /// * a layer holding both permutations and diagonals fuses them into
    ///   one gather pass (`out[i] = d(P⁻¹(i)) · in[P⁻¹(i)]`), saving the
    ///   separate diagonal sweep;
    /// * disjoint permutations concatenate into a single ladder (one
    ///   gather instead of one per op); diagonals likewise share one
    ///   in-place sweep.
    fn layer_ops<K: BasisKey>(&mut self, ops: &[Op<K>]) {
        let mut perm: Vec<FlipStep<K>> = Vec::new();
        let mut diag: Vec<PhaseStep<K>> = Vec::new();
        for op in ops {
            match op {
                Op::Permutation(steps) => perm.extend_from_slice(steps),
                Op::Diagonal(phases) => diag.extend_from_slice(phases),
                Op::Single(k) => self.apply_single(k),
            }
        }
        if !perm.is_empty() && !diag.is_empty() {
            self.apply_layer_fused(&perm, &diag, &[]);
        } else if !perm.is_empty() {
            self.apply_permutation(&perm);
        } else if !diag.is_empty() {
            self.apply_diagonal(&diag);
        }
    }
}

impl BackendState for DenseState {
    const ALLOC_SITE: &'static str = "qsim.dense.alloc";

    fn try_zero(width: usize) -> Result<Self, SimError> {
        DenseState::zero(width)
    }

    fn projected_bytes(width: usize) -> usize {
        1usize
            .checked_shl(width as u32)
            .and_then(|amps| amps.checked_mul(std::mem::size_of::<Complex>()))
            .unwrap_or(usize::MAX)
    }
}

impl QuantumState for DenseState {
    fn width(&self) -> usize {
        self.width
    }

    fn amplitude(&self, basis: u128) -> Complex {
        self.amps
            .get(basis as usize)
            .copied()
            .unwrap_or(Complex::ZERO)
    }

    fn nonzero(&self) -> Vec<(u128, Complex)> {
        self.amps
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.is_negligible(PRUNE_EPS))
            .map(|(i, a)| (i as u128, *a))
            .collect()
    }

    fn apply_op(&mut self, op: &CompiledOp) {
        match op {
            CompiledOp::Permutation(steps) => self.apply_permutation(steps),
            CompiledOp::Diagonal(phases) => self.apply_diagonal(phases),
            CompiledOp::Single(k) => self.apply_single(k),
        }
    }

    fn apply_op64(&mut self, op: &CompiledOp64) {
        match op {
            CompiledOp64::Permutation(steps) => self.apply_permutation(steps),
            CompiledOp64::Diagonal(phases) => self.apply_diagonal(phases),
            CompiledOp64::Single(k) => self.apply_single(k),
        }
    }

    fn apply_layer(&mut self, ops: &[CompiledOp]) {
        self.layer_ops(ops);
    }

    fn apply_layer64(&mut self, ops: &[CompiledOp64]) {
        self.layer_ops(ops);
    }

    fn memory_bytes(&self) -> usize {
        (self.amps.capacity() + self.scratch.capacity()) * std::mem::size_of::<Complex>()
    }

    fn trace_gauges(&self) {
        qmkp_obs::gauge("qsim.dense.mem_bytes", self.memory_bytes() as f64);
    }

    fn backend_name(&self) -> &'static str {
        "dense"
    }

    fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    fn apply(&mut self, gate: &Gate) {
        match gate {
            Gate::X(q) => {
                let m = 1usize << q;
                for i in 0..self.amps.len() {
                    if i & m == 0 {
                        self.amps.swap(i, i | m);
                    }
                }
            }
            Gate::H(q) => {
                let m = 1usize << q;
                for i in 0..self.amps.len() {
                    if i & m == 0 {
                        let a = self.amps[i];
                        let b = self.amps[i | m];
                        self.amps[i] = (a + b).scale(FRAC_1_SQRT_2);
                        self.amps[i | m] = (a - b).scale(FRAC_1_SQRT_2);
                    }
                }
            }
            Gate::Z(q) => {
                // Only indices with bit q set are touched: stride over the
                // upper half of each 2m block (len/2 amplitudes visited).
                let m = 1usize << q;
                let mut base = m;
                while base < self.amps.len() {
                    for a in &mut self.amps[base..base + m] {
                        *a = -*a;
                    }
                    base += 2 * m;
                }
            }
            Gate::Phase(q, theta) => {
                let m = 1usize << q;
                let ph = Complex::from_phase(*theta);
                let mut base = m;
                while base < self.amps.len() {
                    for a in &mut self.amps[base..base + m] {
                        *a *= ph;
                    }
                    base += 2 * m;
                }
            }
            Gate::Ry(q, theta) => {
                let m = 1usize << q;
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                for i in 0..self.amps.len() {
                    if i & m == 0 {
                        let a = self.amps[i];
                        let b = self.amps[i | m];
                        self.amps[i] = a.scale(c) - b.scale(s);
                        self.amps[i | m] = a.scale(s) + b.scale(c);
                    }
                }
            }
            Gate::CPhase(p, q, theta) => {
                // Nested stride loops visit exactly the len/4 indices with
                // both bits set.
                let (lo, hi) = if p < q { (*p, *q) } else { (*q, *p) };
                let (ml, mh) = (1usize << lo, 1usize << hi);
                let ph = Complex::from_phase(*theta);
                let mut bh = mh;
                while bh < self.amps.len() {
                    let mut bl = bh + ml;
                    while bl < bh + mh {
                        for a in &mut self.amps[bl..bl + ml] {
                            *a *= ph;
                        }
                        bl += 2 * ml;
                    }
                    bh += 2 * mh;
                }
            }
            Gate::Mcx { controls, target } => {
                let m = 1usize << target;
                for i in 0..self.amps.len() {
                    if i & m == 0 && controls.iter().all(|c| c.satisfied_by(i as u128)) {
                        self.amps.swap(i, i | m);
                    }
                }
            }
            Gate::Mcz { controls, target } => {
                let m = 1usize << target;
                for (i, a) in self.amps.iter_mut().enumerate() {
                    if i & m != 0 && controls.iter().all(|c| c.satisfied_by(i as u128)) {
                        *a = -*a;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sparse backend
// ---------------------------------------------------------------------------

/// Ladders at least this long take the half-split permutation pass (the
/// per-call split allocation amortizes); shorter ones — in particular the
/// interpreted path's single-step calls — stay allocation-free.
const SPLIT_LADDER_MIN: usize = 8;

/// A [`FlipStep`] pre-split into 64-bit halves for the sparse
/// permutation ladder (see `apply_permutation_split`).
#[derive(Clone, Copy)]
struct SplitStep {
    care_lo: u64,
    want_lo: u64,
    flip_lo: u64,
    care_hi: u64,
    want_hi: u64,
    flip_hi: u64,
}

impl SplitStep {
    fn from_step<K: BasisKey>(s: FlipStep<K>) -> Self {
        let (care_lo, care_hi) = s.care.split_lo_hi();
        let (want_lo, want_hi) = s.want.split_lo_hi();
        let (flip_lo, flip_hi) = s.flip.split_lo_hi();
        SplitStep {
            care_lo,
            want_lo,
            flip_lo,
            care_hi,
            want_hi,
            flip_hi,
        }
    }

    /// Whether the step's masks live entirely in the low 64 bits (`want ⊆
    /// care`, so `care_hi == 0` implies `want_hi == 0`).
    fn is_narrow(&self) -> bool {
        self.care_hi == 0 && self.flip_hi == 0
    }
}

/// The sorted-vec amplitude store, generic over the basis-key width.
///
/// Invariant: `amps` is sorted by key with all keys distinct. The scratch
/// buffers hold no live data between ops — only their capacity is reused,
/// so a `Single` pass allocates nothing once the buffers have grown to the
/// working support size.
#[derive(Debug, Clone)]
struct SparseCore<K> {
    amps: Vec<(K, Complex)>,
    /// Pass-1 buffer: entries with the target bit clear, key unchanged.
    split_lo: Vec<(K, Complex)>,
    /// Pass-1 buffer: entries with the target bit set, key normalized
    /// (bit cleared) — still sorted, since clearing the same bit from
    /// keys that all have it set preserves order.
    split_hi: Vec<(K, Complex)>,
    /// Pass-2 output: bit-clear halves of the butterflies.
    out_lo: Vec<(K, Complex)>,
    /// Pass-2 output: bit-set halves (key has the bit re-set).
    out_hi: Vec<(K, Complex)>,
}

impl<K: BasisKey> SparseCore<K> {
    fn from_basis(basis: K) -> Self {
        SparseCore {
            amps: vec![(basis, Complex::ONE)],
            split_lo: Vec::new(),
            split_hi: Vec::new(),
            out_lo: Vec::new(),
            out_hi: Vec::new(),
        }
    }

    fn amplitude(&self, basis: K) -> Complex {
        match self.amps.binary_search_by_key(&basis, |&(b, _)| b) {
            Ok(i) => self.amps[i].1,
            Err(_) => Complex::ZERO,
        }
    }

    fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|(_, a)| a.norm_sqr()).sum()
    }

    fn prune(&mut self, eps: f64) {
        self.amps.retain(|(_, a)| !a.is_negligible(eps));
    }

    /// Replaces the amplitudes wholesale. Entries are sorted; for
    /// duplicate keys the last entry wins (matching the insert semantics
    /// of the former `HashMap` representation).
    fn set_amplitudes(&mut self, entries: Vec<(K, Complex)>) {
        let mut v = entries;
        // Stable sort keeps duplicate keys in insertion order, so "keep
        // the last of each equal-key run" below is exactly last-wins.
        v.sort_by_key(|&(b, _)| b);
        let mut w = 0;
        for i in 0..v.len() {
            if i + 1 < v.len() && v[i + 1].0 == v[i].0 {
                continue;
            }
            v[w] = v[i];
            w += 1;
        }
        v.truncate(w);
        self.amps = v;
    }

    /// Exact heap footprint: capacity of every buffer times entry size.
    fn memory_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(K, Complex)>();
        (self.amps.capacity()
            + self.split_lo.capacity()
            + self.split_hi.capacity()
            + self.out_lo.capacity()
            + self.out_hi.capacity())
            * entry
    }

    /// One in-place pass applying a fused permutation. A permutation maps
    /// distinct keys to distinct keys; the pass tracks whether the mapped
    /// keys are still ascending and sorts only when they are not (flip
    /// steps that touch only high ancilla bits of clustered supports often
    /// preserve order).
    fn apply_permutation(&mut self, steps: &[FlipStep<K>]) {
        if steps.is_empty() {
            // Peephole cancellation can empty a run.
            return;
        }
        if steps.len() < SPLIT_LADDER_MIN {
            // Short ladders (in particular the interpreted path's
            // single-step calls) skip the split machinery and its
            // allocations.
            let mut chunks = self.amps.chunks_exact_mut(4);
            for chunk in &mut chunks {
                let (mut k0, mut k1, mut k2, mut k3) =
                    (chunk[0].0, chunk[1].0, chunk[2].0, chunk[3].0);
                for s in steps {
                    k0 = s.apply(k0);
                    k1 = s.apply(k1);
                    k2 = s.apply(k2);
                    k3 = s.apply(k3);
                }
                chunk[0].0 = k0;
                chunk[1].0 = k1;
                chunk[2].0 = k2;
                chunk[3].0 = k3;
            }
            for (b, _) in chunks.into_remainder() {
                let mut key = *b;
                for s in steps {
                    key = s.apply(key);
                }
                *b = key;
            }
        } else {
            self.apply_permutation_split(steps);
        }
        // Flip steps that touch only high ancilla bits of clustered
        // supports often preserve order, so check before sorting.
        if self.amps.windows(2).any(|w| w[1].0 <= w[0].0) {
            self.amps.sort_unstable_by_key(|&(b, _)| b);
        }
    }

    /// Long-ladder permutation pass with the steps pre-split into 64-bit
    /// halves. Oracle circuits put the high-traffic registers (vertices,
    /// edge ancillas, degree counters) in the low qubits, so on a wide
    /// (u128-keyed) register most steps never touch the top half — runs
    /// of such steps execute on pure u64 arithmetic, roughly halving the
    /// ALU work of the hot ladder. Keys ride through the ladder four at a
    /// time: each step's output feeds the next step's control test, so a
    /// single key is a serial dependency chain and the interleaving is
    /// what lets the CPU overlap the latency-bound mask arithmetic.
    fn apply_permutation_split(&mut self, steps: &[FlipStep<K>]) {
        // Dead-step elimination: track which bits *may* be 1 and which
        // *may* be 0 anywhere in the support. A step whose control test
        // needs a bit state that no key can have never fires, so it is
        // dropped for the whole pass. Oracle ladders are full of these:
        // ancilla counters start at zero, so the high-order carry steps
        // of the early increments are provably dead. Firing a surviving
        // step makes its flipped bits unknown in both directions.
        let (mut may1_lo, mut may1_hi) = (0u64, 0u64);
        let (mut all1_lo, mut all1_hi) = (!0u64, !0u64);
        for &(b, _) in &self.amps {
            let (l, h) = b.split_lo_hi();
            may1_lo |= l;
            may1_hi |= h;
            all1_lo &= l;
            all1_hi &= h;
        }
        let (mut may0_lo, mut may0_hi) = (!all1_lo, !all1_hi);
        let mut split: Vec<SplitStep> = Vec::with_capacity(steps.len());
        for s in steps {
            let st = SplitStep::from_step(*s);
            let dead = st.want_lo & !may1_lo != 0
                || st.want_hi & !may1_hi != 0
                || (st.care_lo & !st.want_lo) & !may0_lo != 0
                || (st.care_hi & !st.want_hi) & !may0_hi != 0;
            if dead {
                continue;
            }
            may1_lo |= st.flip_lo;
            may1_hi |= st.flip_hi;
            may0_lo |= st.flip_lo;
            may0_hi |= st.flip_hi;
            split.push(st);
        }
        // Maximal runs of steps sharing narrowness, as (narrow, start, end).
        let mut runs: Vec<(bool, usize, usize)> = Vec::new();
        for (i, st) in split.iter().enumerate() {
            let narrow = st.is_narrow();
            match runs.last_mut() {
                Some((n, _, end)) if *n == narrow => *end = i + 1,
                _ => runs.push((narrow, i, i + 1)),
            }
        }
        let mut chunks = self.amps.chunks_exact_mut(8);
        for chunk in &mut chunks {
            let mut lo = [0u64; 8];
            let mut hi = [0u64; 8];
            for (i, &(b, _)) in chunk.iter().enumerate() {
                (lo[i], hi[i]) = b.split_lo_hi();
            }
            for &(narrow, start, end) in &runs {
                if narrow {
                    for s in &split[start..end] {
                        for l in &mut lo {
                            let hit = ((*l & s.care_lo == s.want_lo) as u64).wrapping_neg();
                            *l ^= s.flip_lo & hit;
                        }
                    }
                } else {
                    for s in &split[start..end] {
                        for (l, h) in lo.iter_mut().zip(&mut hi) {
                            let hit = ((*l & s.care_lo == s.want_lo && *h & s.care_hi == s.want_hi)
                                as u64)
                                .wrapping_neg();
                            *l ^= s.flip_lo & hit;
                            *h ^= s.flip_hi & hit;
                        }
                    }
                }
            }
            for (i, (b, _)) in chunk.iter_mut().enumerate() {
                *b = K::from_lo_hi(lo[i], hi[i]);
            }
        }
        for (b, _) in chunks.into_remainder() {
            let (mut lo, mut hi) = b.split_lo_hi();
            for s in &split {
                let hit = ((lo & s.care_lo == s.want_lo && hi & s.care_hi == s.want_hi) as u64)
                    .wrapping_neg();
                lo ^= s.flip_lo & hit;
                hi ^= s.flip_hi & hit;
            }
            *b = K::from_lo_hi(lo, hi);
        }
    }

    /// One in-place pass applying a fused run of diagonal gates.
    fn apply_diagonal(&mut self, phases: &[PhaseStep<K>]) {
        for (b, a) in self.amps.iter_mut() {
            for p in phases {
                if p.applies_to(*b) {
                    *a *= p.phase;
                }
            }
        }
    }

    /// The `Single`-kernel butterfly as three linear passes over sorted
    /// vecs — the hot path the sorted representation exists for:
    ///
    /// 1. partition `amps` by the target bit into `split_lo` / `split_hi`
    ///    (keys normalized to bit-clear; both halves stay sorted),
    /// 2. two-pointer merge over normalized keys, emitting each
    ///    butterfly's bit-clear half into `out_lo` and bit-set half into
    ///    `out_hi`, pruning negligible amplitudes as they are produced,
    /// 3. two-pointer merge of `out_lo` / `out_hi` back into `amps`
    ///    (keys from the two sides are never equal — they differ in the
    ///    target bit).
    fn apply_single(&mut self, k: &SingleQubit) {
        let m = K::bit(k.qubit);
        self.split_lo.clear();
        self.split_hi.clear();
        for &(b, a) in &self.amps {
            if b & m == K::ZERO {
                self.split_lo.push((b, a));
            } else {
                self.split_hi.push((b & !m, a));
            }
        }
        self.out_lo.clear();
        self.out_hi.clear();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.split_lo.len() || j < self.split_hi.len() {
            let next_lo = self.split_lo.get(i).copied();
            let next_hi = self.split_hi.get(j).copied();
            let (key, a0, a1) = match (next_lo, next_hi) {
                (Some((kl, al)), Some((kh, ah))) => match kl.cmp(&kh) {
                    std::cmp::Ordering::Less => {
                        i += 1;
                        (kl, al, Complex::ZERO)
                    }
                    std::cmp::Ordering::Greater => {
                        j += 1;
                        (kh, Complex::ZERO, ah)
                    }
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                        (kl, al, ah)
                    }
                },
                (Some((kl, al)), None) => {
                    i += 1;
                    (kl, al, Complex::ZERO)
                }
                (None, Some((kh, ah))) => {
                    j += 1;
                    (kh, Complex::ZERO, ah)
                }
                (None, None) => break,
            };
            let lo = k.m00 * a0 + k.m01 * a1;
            let hi = k.m10 * a0 + k.m11 * a1;
            if !lo.is_negligible(PRUNE_EPS) {
                self.out_lo.push((key, lo));
            }
            if !hi.is_negligible(PRUNE_EPS) {
                self.out_hi.push((key | m, hi));
            }
        }
        self.amps.clear();
        self.amps.reserve(self.out_lo.len() + self.out_hi.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.out_lo.len() && j < self.out_hi.len() {
            if self.out_lo[i].0 < self.out_hi[j].0 {
                self.amps.push(self.out_lo[i]);
                i += 1;
            } else {
                self.amps.push(self.out_hi[j]);
                j += 1;
            }
        }
        self.amps.extend_from_slice(&self.out_lo[i..]);
        self.amps.extend_from_slice(&self.out_hi[j..]);
    }

    fn apply_op(&mut self, op: &Op<K>) {
        match op {
            Op::Permutation(steps) => self.apply_permutation(steps),
            Op::Diagonal(phases) => self.apply_diagonal(phases),
            Op::Single(k) => self.apply_single(k),
        }
    }

    /// Applies one support-disjoint scheduled layer. The layer's
    /// permutation and diagonal content collapses into a single in-place
    /// key-rewrite pass (disjoint supports make the phase-vs-flip order
    /// irrelevant, so the phase test reads the pre-permutation key);
    /// ladders long enough for the split machinery keep it by falling
    /// back to the two specialised passes. `Single` kernels run their
    /// merge passes afterwards — their qubits are untouched by the rest
    /// of the layer.
    fn apply_layer_ops(&mut self, ops: &[Op<K>]) {
        if let [op] = ops {
            self.apply_op(op);
            return;
        }
        let mut perm: Vec<FlipStep<K>> = Vec::new();
        let mut diag: Vec<PhaseStep<K>> = Vec::new();
        for op in ops {
            match op {
                Op::Permutation(steps) => perm.extend_from_slice(steps),
                Op::Diagonal(phases) => diag.extend_from_slice(phases),
                Op::Single(_) => {}
            }
        }
        if !perm.is_empty() && !diag.is_empty() && perm.len() < SPLIT_LADDER_MIN {
            for (b, a) in self.amps.iter_mut() {
                for p in &diag {
                    if p.applies_to(*b) {
                        *a *= p.phase;
                    }
                }
                let mut key = *b;
                for s in &perm {
                    key = s.apply(key);
                }
                *b = key;
            }
            if self.amps.windows(2).any(|w| w[1].0 <= w[0].0) {
                self.amps.sort_unstable_by_key(|&(b, _)| b);
            }
        } else {
            if !diag.is_empty() {
                self.apply_diagonal(&diag);
            }
            self.apply_permutation(&perm);
        }
        for op in ops {
            if let Op::Single(k) = op {
                self.apply_single(k);
            }
        }
    }

    /// Interpreted single-gate application: each gate is lowered to a
    /// stack-local kernel step and applied through the same passes as the
    /// compiled path — no allocation, no hashing.
    fn apply_gate(&mut self, gate: &Gate) {
        match gate {
            Gate::X(q) => self.apply_permutation(&[FlipStep {
                care: K::ZERO,
                want: K::ZERO,
                flip: K::bit(*q),
            }]),
            Gate::Mcx { controls, target } => {
                let mut care = K::ZERO;
                let mut want = K::ZERO;
                for c in controls {
                    care = care | K::bit(c.qubit);
                    if c.positive {
                        want = want | K::bit(c.qubit);
                    }
                }
                self.apply_permutation(&[FlipStep {
                    care,
                    want,
                    flip: K::bit(*target),
                }]);
            }
            Gate::Z(q) => self.apply_diagonal(&[PhaseStep {
                care: K::bit(*q),
                want: K::bit(*q),
                phase: Complex::real(-1.0),
            }]),
            Gate::Phase(q, theta) => self.apply_diagonal(&[PhaseStep {
                care: K::bit(*q),
                want: K::bit(*q),
                phase: Complex::from_phase(*theta),
            }]),
            Gate::CPhase(p, q, theta) => {
                let m = K::bit(*p) | K::bit(*q);
                self.apply_diagonal(&[PhaseStep {
                    care: m,
                    want: m,
                    phase: Complex::from_phase(*theta),
                }]);
            }
            Gate::Mcz { controls, target } => {
                let mut care = K::bit(*target);
                let mut want = K::bit(*target);
                for c in controls {
                    care = care | K::bit(c.qubit);
                    if c.positive {
                        want = want | K::bit(c.qubit);
                    }
                }
                self.apply_diagonal(&[PhaseStep {
                    care,
                    want,
                    phase: Complex::real(-1.0),
                }]);
            }
            Gate::H(q) => self.apply_single(&SingleQubit::hadamard(*q)),
            Gate::Ry(q, theta) => self.apply_single(&SingleQubit::ry(*q, *theta)),
        }
    }
}

/// The sorted key representation at the state's width: u64 keys for
/// registers that fit (the fast path — every instance in the paper does),
/// u128 keys for wider registers.
#[derive(Debug, Clone)]
enum Repr {
    Narrow(SparseCore<u64>),
    Wide(SparseCore<u128>),
}

/// Sparse sorted-vec backend: only nonzero basis states are stored, as a
/// `Vec<(key, amplitude)>` sorted by basis key.
///
/// Suited to circuits that are mostly basis-state permutations (X / MCX):
/// the qTKP oracle over 50-200 qubits keeps at most `2^n` nonzero
/// amplitudes, where `n` is the number of vertex qubits ever touched by a
/// Hadamard. States of width ≤ 64 store `u64` keys (24-byte entries
/// instead of 32) and run the compiler's u64-specialised kernels.
#[derive(Debug, Clone)]
pub struct SparseState {
    width: usize,
    repr: Repr,
}

impl SparseState {
    /// `|basis⟩` over `width` qubits (any width up to 128).
    pub fn from_basis(width: usize, basis: u128) -> Self {
        assert!(width <= 128, "at most 128 qubits are supported");
        let repr = if width <= u64::BITS as usize {
            Repr::Narrow(SparseCore::from_basis(basis as u64))
        } else {
            Repr::Wide(SparseCore::from_basis(basis))
        };
        SparseState { width, repr }
    }

    /// `|0…0⟩` over `width` qubits.
    pub fn zero(width: usize) -> Self {
        Self::from_basis(width, 0)
    }

    /// Number of nonzero amplitudes currently stored.
    pub fn support_size(&self) -> usize {
        match &self.repr {
            Repr::Narrow(c) => c.amps.len(),
            Repr::Wide(c) => c.amps.len(),
        }
    }

    /// Drops amplitudes with magnitude below `eps`.
    pub fn prune(&mut self, eps: f64) {
        match &mut self.repr {
            Repr::Narrow(c) => c.prune(eps),
            Repr::Wide(c) => c.prune(eps),
        }
    }

    /// Replaces the state's amplitudes wholesale (used by measurement
    /// collapse; the caller is responsible for normalization). For
    /// duplicate basis keys the last entry wins.
    pub fn set_amplitudes<I: IntoIterator<Item = (u128, Complex)>>(&mut self, amps: I) {
        match &mut self.repr {
            Repr::Narrow(c) => {
                c.set_amplitudes(amps.into_iter().map(|(b, a)| (b as u64, a)).collect())
            }
            Repr::Wide(c) => c.set_amplitudes(amps.into_iter().collect()),
        }
    }
}

impl BackendState for SparseState {
    const ALLOC_SITE: &'static str = "qsim.sparse.alloc";

    fn try_zero(width: usize) -> Result<Self, SimError> {
        if width > 128 {
            return Err(SimError::QubitOutOfRange {
                qubit: width - 1,
                width: 128,
            });
        }
        Ok(SparseState::zero(width))
    }

    fn projected_bytes(_width: usize) -> usize {
        // A fresh zero state stores one amplitude; support growth during a
        // run is the caller's preflight estimate, not an allocation here.
        std::mem::size_of::<(u128, Complex)>()
    }
}

impl QuantumState for SparseState {
    fn width(&self) -> usize {
        self.width
    }

    fn amplitude(&self, basis: u128) -> Complex {
        match &self.repr {
            Repr::Narrow(c) => {
                if basis >> 64 != 0 {
                    return Complex::ZERO;
                }
                c.amplitude(basis as u64)
            }
            Repr::Wide(c) => c.amplitude(basis),
        }
    }

    fn nonzero(&self) -> Vec<(u128, Complex)> {
        // `amps` is already sorted by key.
        match &self.repr {
            Repr::Narrow(c) => c
                .amps
                .iter()
                .filter(|(_, a)| !a.is_negligible(PRUNE_EPS))
                .map(|&(b, a)| (b as u128, a))
                .collect(),
            Repr::Wide(c) => c
                .amps
                .iter()
                .filter(|(_, a)| !a.is_negligible(PRUNE_EPS))
                .copied()
                .collect(),
        }
    }

    fn apply_op(&mut self, op: &CompiledOp) {
        match &mut self.repr {
            // Compat path: a wide op on a narrow state narrows it first
            // (allocates). The compiled runner hands narrow states narrow
            // ops via `apply_op64`, so this is only hit by direct callers.
            Repr::Narrow(c) => c.apply_op(&op.narrow()),
            Repr::Wide(c) => c.apply_op(op),
        }
    }

    fn apply_op64(&mut self, op: &CompiledOp64) {
        match &mut self.repr {
            Repr::Narrow(c) => c.apply_op(op),
            Repr::Wide(c) => c.apply_op(&op.widen()),
        }
    }

    fn apply_layer(&mut self, ops: &[CompiledOp]) {
        match &mut self.repr {
            // Compat path (wide ops, narrow keys): fall back to the
            // per-op narrowing conversions.
            Repr::Narrow(_) => {
                for op in ops {
                    self.apply_op(op);
                }
            }
            Repr::Wide(c) => c.apply_layer_ops(ops),
        }
    }

    fn apply_layer64(&mut self, ops: &[CompiledOp64]) {
        match &mut self.repr {
            Repr::Narrow(c) => c.apply_layer_ops(ops),
            Repr::Wide(_) => {
                for op in ops {
                    self.apply_op64(op);
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        match &self.repr {
            Repr::Narrow(c) => c.memory_bytes(),
            Repr::Wide(c) => c.memory_bytes(),
        }
    }

    fn support_hint(&self) -> Option<usize> {
        Some(self.support_size())
    }

    fn trace_gauges(&self) {
        qmkp_obs::gauge("qsim.sparse.mem_bytes", self.memory_bytes() as f64);
        qmkp_obs::gauge("qsim.sparse.support", self.support_size() as f64);
    }

    fn backend_name(&self) -> &'static str {
        "sparse"
    }

    fn norm_sqr(&self) -> f64 {
        match &self.repr {
            Repr::Narrow(c) => c.norm_sqr(),
            Repr::Wide(c) => c.norm_sqr(),
        }
    }

    fn apply(&mut self, gate: &Gate) {
        match &mut self.repr {
            Repr::Narrow(c) => c.apply_gate(gate),
            Repr::Wide(c) => c.apply_gate(gate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Control;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 1e-10;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < EPS, "{a} != {b}");
    }

    #[test]
    fn basis_state_construction() {
        let d = DenseState::from_basis(3, 0b101).unwrap();
        assert_close(d.probability(0b101), 1.0);
        assert_close(d.probability(0b100), 0.0);
        let s = SparseState::from_basis(100, 1u128 << 99);
        assert_close(s.probability(1u128 << 99), 1.0);
        assert_eq!(s.support_size(), 1);
    }

    #[test]
    fn dense_rejects_large_widths() {
        assert!(matches!(
            DenseState::zero(27),
            Err(SimError::TooManyQubitsForDense { .. })
        ));
    }

    #[test]
    fn x_gate_flips() {
        for_both_backends(1, |st| {
            st.apply_gate(&Gate::X(0));
            assert_close(st.prob(1), 1.0);
        });
    }

    #[test]
    fn h_gate_makes_superposition_and_is_self_inverse() {
        for_both_backends(1, |st| {
            st.apply_gate(&Gate::H(0));
            assert_close(st.prob(0), 0.5);
            assert_close(st.prob(1), 0.5);
            st.apply_gate(&Gate::H(0));
            assert_close(st.prob(0), 1.0);
        });
    }

    #[test]
    fn hzh_equals_x() {
        for_both_backends(1, |st| {
            st.apply_gate(&Gate::H(0));
            st.apply_gate(&Gate::Z(0));
            st.apply_gate(&Gate::H(0));
            assert_close(st.prob(1), 1.0);
        });
    }

    #[test]
    fn cnot_truth_table() {
        for target_in in 0..2u128 {
            for control_in in 0..2u128 {
                let basis = control_in | (target_in << 1);
                let mut d = DenseState::from_basis(2, basis).unwrap();
                d.apply(&Gate::cnot(0, 1));
                let expected = if control_in == 1 { basis ^ 0b10 } else { basis };
                assert_close(d.probability(expected), 1.0);
            }
        }
    }

    #[test]
    fn toffoli_truth_table() {
        for b in 0..8u128 {
            let mut d = DenseState::from_basis(3, b).unwrap();
            let mut s = SparseState::from_basis(3, b);
            let g = Gate::ccnot(0, 1, 2);
            d.apply(&g);
            s.apply(&g);
            let expected = if b & 0b11 == 0b11 { b ^ 0b100 } else { b };
            assert_close(d.probability(expected), 1.0);
            assert_close(s.probability(expected), 1.0);
        }
    }

    #[test]
    fn negative_controls() {
        // Flip target iff qubit0 = 0.
        let g = Gate::Mcx {
            controls: vec![Control::neg(0)],
            target: 1,
        };
        let mut d = DenseState::from_basis(2, 0b00).unwrap();
        d.apply(&g);
        assert_close(d.probability(0b10), 1.0);
        let mut d = DenseState::from_basis(2, 0b01).unwrap();
        d.apply(&g);
        assert_close(d.probability(0b01), 1.0);
    }

    #[test]
    fn mcz_phases_only_the_selected_state() {
        for_both_backends(2, |st| {
            st.apply_gate(&Gate::H(0));
            st.apply_gate(&Gate::H(1));
            st.apply_gate(&Gate::Mcz {
                controls: vec![Control::pos(0)],
                target: 1,
            });
            // |11⟩ picks up a −1 phase; probabilities unchanged.
            assert_close(st.prob(0b11), 0.25);
            assert!(st.amp(0b11).re < 0.0);
            assert!(st.amp(0b00).re > 0.0);
        });
    }

    #[test]
    fn phase_gate() {
        for_both_backends(1, |st| {
            st.apply_gate(&Gate::H(0));
            st.apply_gate(&Gate::Phase(0, std::f64::consts::PI));
            st.apply_gate(&Gate::H(0));
            // HP(π)H = HZH = X
            assert_close(st.prob(1), 1.0);
        });
    }

    #[test]
    fn cphase_touches_only_the_11_subspace() {
        for_both_backends(2, |st| {
            st.apply_gate(&Gate::H(0));
            st.apply_gate(&Gate::H(1));
            st.apply_gate(&Gate::CPhase(0, 1, std::f64::consts::FRAC_PI_2));
            let a = st.amp(0b11);
            assert_close(a.re, 0.0);
            assert_close(a.im, 0.5);
            assert_close(st.amp(0b01).re, 0.5);
            assert_close(st.amp(0b01).im, 0.0);
        });
    }

    /// Runs a closure against both backends initialized to |0…0⟩ — and the
    /// sparse backend on both key widths, by embedding the same circuit in
    /// a 100-qubit register (gates only touch the low qubits, so the
    /// amplitudes must agree with the narrow run).
    fn for_both_backends(width: usize, f: impl Fn(&mut dyn DynState)) {
        let mut d = DenseState::zero(width).unwrap();
        f(&mut d);
        let mut s = SparseState::zero(width);
        f(&mut s);
        let mut wide = SparseState::zero(100);
        f(&mut wide);
    }

    /// Object-safe subset of `QuantumState` used by the test helper.
    /// Method names are distinct from the trait's to avoid ambiguity with
    /// the blanket impl below.
    trait DynState {
        fn apply_gate(&mut self, gate: &Gate);
        fn prob(&self, basis: u128) -> f64;
        fn amp(&self, basis: u128) -> Complex;
    }

    impl<T: QuantumState> DynState for T {
        fn apply_gate(&mut self, gate: &Gate) {
            QuantumState::apply(self, gate)
        }
        fn prob(&self, basis: u128) -> f64 {
            QuantumState::probability(self, basis)
        }
        fn amp(&self, basis: u128) -> Complex {
            QuantumState::amplitude(self, basis)
        }
    }

    /// The same gates re-pushed into a wider register (the extra qubits
    /// stay untouched).
    fn embed(circ: &Circuit, width: usize) -> Circuit {
        let mut c = Circuit::new(width);
        for g in circ.gates() {
            c.push_unchecked(g.clone());
        }
        c
    }

    /// A random circuit over the full gate set, seeded deterministically.
    fn random_circuit(rng: &mut StdRng, width: usize, gates: usize) -> Circuit {
        use rand::Rng;
        let mut circ = Circuit::new(width);
        for _ in 0..gates {
            let q = rng.gen_range(0..width);
            let gate = match rng.gen_range(0..8) {
                0 => Gate::X(q),
                1 => Gate::H(q),
                2 => Gate::Z(q),
                3 => Gate::Phase(q, rng.gen_range(-3.0..3.0)),
                4 => Gate::Ry(q, rng.gen_range(-3.0..3.0)),
                5 => Gate::CPhase(q, (q + 1) % width, rng.gen_range(-3.0..3.0)),
                6 => {
                    let t = (q + 1) % width;
                    Gate::Mcx {
                        controls: vec![Control {
                            qubit: q,
                            positive: rng.gen(),
                        }],
                        target: t,
                    }
                }
                _ => {
                    let t = (q + 1) % width;
                    Gate::Mcz {
                        controls: vec![Control {
                            qubit: q,
                            positive: rng.gen(),
                        }],
                        target: t,
                    }
                }
            };
            circ.push(gate).unwrap();
        }
        circ
    }

    #[test]
    fn dense_and_sparse_agree_on_random_circuits() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..20 {
            let width = rng.gen_range(2..7);
            let circ = random_circuit(&mut rng, width, 30);
            let mut d = DenseState::zero(width).unwrap();
            let mut s = SparseState::zero(width);
            d.run(&circ).unwrap();
            s.run(&circ).unwrap();
            for b in 0..(1u128 << width) {
                let da = d.amplitude(b);
                let sa = s.amplitude(b);
                assert!(
                    (da - sa).norm() < 1e-9,
                    "width={width} basis={b:b}: dense {da} vs sparse {sa}"
                );
            }
            assert_close(d.norm_sqr(), 1.0);
            assert_close(s.norm_sqr(), 1.0);
        }
    }

    #[test]
    fn compiled_run_matches_interpreted_on_random_circuits() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let width = rng.gen_range(2..7);
            let circ = random_circuit(&mut rng, width, 40);
            let mut compiled = DenseState::zero(width).unwrap();
            let mut interpreted = DenseState::zero(width).unwrap();
            compiled.run(&circ).unwrap();
            interpreted.run_interpreted(&circ).unwrap();
            let mut sc = SparseState::zero(width);
            let mut si = SparseState::zero(width);
            sc.run(&circ).unwrap();
            si.run_interpreted(&circ).unwrap();
            for b in 0..(1u128 << width) {
                assert!(
                    (compiled.amplitude(b) - interpreted.amplitude(b)).norm() < 1e-9,
                    "dense compiled vs interpreted at {b:b}"
                );
                assert!(
                    (sc.amplitude(b) - si.amplitude(b)).norm() < 1e-9,
                    "sparse compiled vs interpreted at {b:b}"
                );
            }
        }
    }

    #[test]
    fn narrow_and_wide_sparse_reprs_agree() {
        // The same gates run on a 6-qubit register (u64 keys) and embedded
        // in a 70-qubit register (u128 keys) must produce identical
        // amplitudes on the low qubits.
        let mut rng = StdRng::seed_from_u64(4242);
        for _ in 0..10 {
            let narrow_circ = random_circuit(&mut rng, 6, 40);
            let wide_circ = embed(&narrow_circ, 70);
            let mut narrow = SparseState::zero(6);
            let mut wide = SparseState::zero(70);
            narrow.run(&narrow_circ).unwrap();
            wide.run(&wide_circ).unwrap();
            assert!(matches!(narrow.repr, Repr::Narrow(_)));
            assert!(matches!(wide.repr, Repr::Wide(_)));
            for b in 0..(1u128 << 6) {
                assert!(
                    (narrow.amplitude(b) - wide.amplitude(b)).norm() < 1e-9,
                    "narrow vs wide at {b:b}"
                );
            }
        }
    }

    #[test]
    fn wide_ops_on_narrow_state_and_vice_versa() {
        // The compat conversions in apply_op / apply_op64 must agree with
        // the matched-width paths.
        let mut rng = StdRng::seed_from_u64(9);
        let circ = random_circuit(&mut rng, 5, 30);
        let compiled = CompiledCircuit::compile(&circ).unwrap();
        let narrow_ops = compiled.narrow_ops().unwrap();

        // Wide ops pushed through a narrow state's compat path.
        let mut via_wide = SparseState::zero(5);
        for op in compiled.ops() {
            via_wide.apply_op(op);
        }
        let mut via_narrow = SparseState::zero(5);
        for op in narrow_ops {
            via_narrow.apply_op64(op);
        }
        for b in 0..(1u128 << 5) {
            assert!((via_wide.amplitude(b) - via_narrow.amplitude(b)).norm() < 1e-12);
        }

        // Narrow ops pushed through a wide state's compat path.
        let wide_circ = embed(&circ, 70);
        let wide_compiled = CompiledCircuit::compile(&wide_circ).unwrap();
        let mut wide_direct = SparseState::zero(70);
        wide_direct.run_compiled(&wide_compiled).unwrap();
        let mut wide_via_narrow = SparseState::zero(70);
        for op in narrow_ops {
            wide_via_narrow.apply_op64(op);
        }
        for b in 0..(1u128 << 5) {
            assert!((wide_direct.amplitude(b) - wide_via_narrow.amplitude(b)).norm() < 1e-9);
        }
    }

    #[test]
    fn sparse_support_stays_sorted_and_distinct() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let width = rng.gen_range(2..7);
            let circ = random_circuit(&mut rng, width, 50);
            let mut s = SparseState::zero(width);
            s.run(&circ).unwrap();
            let nz = s.nonzero();
            for w in nz.windows(2) {
                assert!(w[0].0 < w[1].0, "keys must stay sorted and distinct");
            }
        }
    }

    #[test]
    fn run_checks_width() {
        let circ = Circuit::new(3);
        let mut d = DenseState::zero(2).unwrap();
        assert!(matches!(d.run(&circ), Err(SimError::WidthMismatch { .. })));
        assert!(matches!(
            d.run_interpreted(&circ),
            Err(SimError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn run_surfaces_compile_errors() {
        // A 200-qubit circuit exceeds the 128-bit basis encoding; `run`
        // must report that as a structured error, not panic.
        let circ = Circuit::new(200);
        let mut s = SparseState::zero(100);
        assert!(matches!(s.run(&circ), Err(SimError::Compile(_))));
    }

    #[test]
    fn marginal_distribution() {
        // Bell state on qubits 0, 1 of a 3-qubit register.
        let mut s = SparseState::zero(3);
        s.apply(&Gate::H(0));
        s.apply(&Gate::cnot(0, 1));
        let m = s.marginal(&[0, 1]);
        assert_close(m[&0b00], 0.5);
        assert_close(m[&0b11], 0.5);
        assert!(!m.contains_key(&0b01));
        // Marginal over just qubit 1.
        let m1 = s.marginal(&[1]);
        assert_close(m1[&0], 0.5);
        assert_close(m1[&1], 0.5);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut s = SparseState::zero(2);
        s.apply(&Gate::H(0));
        s.apply(&Gate::cnot(0, 1));
        let mut rng = StdRng::seed_from_u64(7);
        let counts = s.sample(&mut rng, 10_000, &[0, 1]);
        let c00 = *counts.get(&0b00).unwrap_or(&0);
        let c11 = *counts.get(&0b11).unwrap_or(&0);
        assert_eq!(c00 + c11, 10_000, "only Bell outcomes should appear");
        assert!((c00 as f64 - 5_000.0).abs() < 300.0, "c00={c00}");
    }

    #[test]
    fn sampling_a_deterministic_state_is_exact() {
        // After X on qubit 1 the only outcome is 0b10 — every shot must
        // land there regardless of where the binary search probes.
        let mut d = DenseState::zero(2).unwrap();
        d.apply(&Gate::X(1));
        let mut rng = StdRng::seed_from_u64(3);
        let counts = d.sample(&mut rng, 1_000, &[0, 1]);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&0b10], 1_000);
    }

    #[test]
    fn sparse_support_stays_bounded_under_permutation_gates() {
        let mut s = SparseState::zero(60);
        for q in 0..4 {
            s.apply(&Gate::H(q));
        }
        assert_eq!(s.support_size(), 16);
        // A long chain of Toffolis into high ancilla qubits must not grow
        // the support.
        for q in 4..60 {
            s.apply(&Gate::ccnot(0, 1, q));
            s.apply(&Gate::cnot(2, q));
        }
        assert_eq!(s.support_size(), 16);
        assert_close(s.norm_sqr(), 1.0);
    }

    #[test]
    fn compiled_run_keeps_sparse_support_bounded() {
        let mut c = Circuit::new(60);
        for q in 0..4 {
            c.push_unchecked(Gate::H(q));
        }
        for q in 4..60 {
            c.push_unchecked(Gate::ccnot(0, 1, q));
            c.push_unchecked(Gate::cnot(2, q));
        }
        let mut s = SparseState::zero(60);
        s.run(&c).unwrap();
        assert_eq!(s.support_size(), 16);
        assert_close(s.norm_sqr(), 1.0);
    }

    #[test]
    fn prune_drops_tiny_amplitudes() {
        let mut s = SparseState::zero(1);
        s.apply(&Gate::H(0));
        s.apply(&Gate::H(0));
        // |1⟩ amplitude is exactly 0 up to rounding; prune removes it.
        s.prune(1e-12);
        assert_eq!(s.support_size(), 1);
    }

    #[test]
    fn set_amplitudes_is_last_wins_on_duplicates() {
        let mut s = SparseState::zero(4);
        s.set_amplitudes([
            (0b0001, Complex::real(0.5)),
            (0b0010, Complex::real(0.5)),
            (0b0001, Complex::real(-0.5)),
        ]);
        assert_eq!(s.support_size(), 2);
        assert_close(s.amplitude(0b0001).re, -0.5);
        assert_close(s.amplitude(0b0010).re, 0.5);
    }

    #[test]
    fn sparse_memory_bytes_is_exact_for_vec_entries() {
        let mut s = SparseState::zero(6);
        for q in 0..6 {
            s.apply(&Gate::H(q));
        }
        assert_eq!(s.support_size(), 64);
        // Narrow entries are (u64, Complex) = 24 bytes; capacity ≥ support.
        let entry = std::mem::size_of::<(u64, Complex)>();
        assert_eq!(entry, 24);
        assert!(s.memory_bytes() >= 64 * entry);
        assert_eq!(s.memory_bytes() % entry, 0, "exact multiple of entry size");

        let wide = SparseState::zero(80);
        let entry = std::mem::size_of::<(u128, Complex)>();
        assert_eq!(entry, 32);
        assert_eq!(wide.memory_bytes() % entry, 0);
    }

    fn h_layer(width: usize) -> Circuit {
        let mut c = Circuit::new(width);
        for q in 0..width {
            c.push(Gate::H(q)).expect("in-range qubit");
        }
        c
    }

    #[test]
    fn run_ctx_matches_run_under_unlimited_budget() {
        let circuit = h_layer(5);
        let mut plain = SparseState::zero(5);
        plain.run(&circuit).expect("plain run");
        let mut budgeted = SparseState::zero(5);
        let ctx = RtContext::unlimited();
        budgeted.run_ctx(&circuit, &ctx).expect("budgeted run");
        assert_eq!(plain.nonzero(), budgeted.nonzero());
        assert!(ctx.ops_used() > 0, "kernel ops were charged");
    }

    #[test]
    fn run_ctx_surfaces_op_budget_exhaustion() {
        let circuit = h_layer(5);
        let mut s = SparseState::zero(5);
        let ctx = RtContext::with_budget(qmkp_rt::Budget::unlimited().with_max_ops(1));
        let err = s.run_ctx(&circuit, &ctx).expect_err("budget must trip");
        assert!(matches!(
            err,
            SimError::Interrupted(qmkp_rt::RtError::OpBudget { .. })
        ));
    }

    #[test]
    fn run_ctx_observes_cancellation_between_ops() {
        let circuit = h_layer(6);
        let mut s = SparseState::zero(6);
        let token = qmkp_rt::CancelToken::cancel_after_checks(0);
        let ctx = RtContext::new(qmkp_rt::Budget::unlimited(), token);
        let err = s.run_ctx(&circuit, &ctx).expect_err("cancel must trip");
        assert!(matches!(
            err,
            SimError::Interrupted(qmkp_rt::RtError::Cancelled)
        ));
    }

    #[test]
    fn zero_budgeted_rejects_oversized_dense_states() {
        let ctx = RtContext::with_budget(qmkp_rt::Budget::unlimited().with_max_bytes(1 << 10));
        let err = DenseState::zero_budgeted(20, &ctx).expect_err("1 MiB state, 1 KiB budget");
        assert!(matches!(
            err,
            SimError::Interrupted(qmkp_rt::RtError::MemoryBudget { .. })
        ));
        let ok = DenseState::zero_budgeted(4, &ctx).expect("tiny state fits");
        assert_eq!(ok.width(), 4);
        // Sparse zero states are a single entry and always admitted.
        let s = SparseState::zero_budgeted(80, &ctx).expect("sparse zero fits");
        assert_eq!(s.width(), 80);
    }

    #[test]
    fn dense_projected_bytes_saturates_instead_of_overflowing() {
        assert_eq!(DenseState::projected_bytes(3), 8 * 16);
        assert_eq!(DenseState::projected_bytes(127), usize::MAX);
        assert_eq!(DenseState::projected_bytes(200), usize::MAX);
    }

    /// A maximal mixed layer — permutation ladder on {0,1}, diagonal on
    /// {2}, singles on {3,4}, all support-disjoint — used to pin the fused
    /// layer kernels against sequential per-op application.
    fn mixed_layer() -> Vec<CompiledOp> {
        vec![
            CompiledOp::Permutation(vec![
                // cnot(0,1) then X(0): a genuine ladder inside one op.
                FlipStep {
                    care: 0b01,
                    want: 0b01,
                    flip: 0b10,
                },
                FlipStep {
                    care: 0,
                    want: 0,
                    flip: 0b01,
                },
            ]),
            CompiledOp::Diagonal(vec![PhaseStep {
                care: 0b100,
                want: 0b100,
                phase: Complex::from_phase(0.7),
            }]),
            CompiledOp::Single(SingleQubit::hadamard(3)),
            CompiledOp::Single(SingleQubit::ry(4, 0.9)),
        ]
    }

    /// A generic (no-zero-amplitude, phase-rich) 5-qubit starting state.
    fn generic_prep() -> Circuit {
        let mut prep = Circuit::new(5);
        for q in 0..5 {
            prep.push_unchecked(Gate::H(q));
        }
        prep.push_unchecked(Gate::CPhase(0, 3, 1.1));
        prep.push_unchecked(Gate::Ry(2, 0.4));
        prep
    }

    #[test]
    fn fused_layer_kernel_matches_sequential_ops() {
        let ops = mixed_layer();
        let ops64: Vec<CompiledOp64> = ops.iter().map(|op| op.narrow()).collect();
        let prep = generic_prep();

        // Dense, wide and narrow op widths.
        let mut base = DenseState::zero(5).unwrap();
        base.run_interpreted(&prep).unwrap();
        let mut seq = base.clone();
        for op in &ops {
            seq.apply_op(op);
        }
        let mut fused = base.clone();
        fused.apply_layer(&ops);
        let mut fused64 = base.clone();
        fused64.apply_layer64(&ops64);
        for b in 0..(1u128 << 5) {
            assert!(
                (fused.amplitude(b) - seq.amplitude(b)).norm() < 1e-12,
                "dense wide {b:b}"
            );
            assert!(
                (fused64.amplitude(b) - seq.amplitude(b)).norm() < 1e-12,
                "dense u64 {b:b}"
            );
        }

        // Sparse: narrow keys take the fused path via apply_layer64, wide
        // keys (same circuit embedded at width 70) via apply_layer.
        let mut sbase = SparseState::zero(5);
        sbase.run_interpreted(&prep).unwrap();
        let mut sfused = sbase.clone();
        sfused.apply_layer64(&ops64);
        let mut wbase = SparseState::zero(70);
        wbase.run_interpreted(&embed(&prep, 70)).unwrap();
        let mut wfused = wbase.clone();
        wfused.apply_layer(&ops);
        for b in 0..(1u128 << 5) {
            assert!(
                (sfused.amplitude(b) - seq.amplitude(b)).norm() < 1e-12,
                "sparse narrow {b:b}"
            );
            assert!(
                (wfused.amplitude(b) - seq.amplitude(b)).norm() < 1e-12,
                "sparse wide {b:b}"
            );
        }
    }

    #[test]
    fn pure_diagonal_layer_stays_in_place() {
        // Two disjoint diagonal ops: the dense backend must not touch its
        // gather scratch (the layer is applied in place).
        let ops = vec![
            CompiledOp::Diagonal(vec![PhaseStep {
                care: 0b01,
                want: 0b01,
                phase: Complex::from_phase(0.3),
            }]),
            CompiledOp::Diagonal(vec![PhaseStep {
                care: 0b10,
                want: 0b10,
                phase: Complex::real(-1.0),
            }]),
        ];
        let mut d = DenseState::zero(2).unwrap();
        d.apply(&Gate::H(0));
        d.apply(&Gate::H(1));
        let mut seq = d.clone();
        for op in &ops {
            seq.apply_op(op);
        }
        d.apply_layer(&ops);
        assert_eq!(
            d.scratch.capacity(),
            0,
            "no gather pass for a diagonal layer"
        );
        for b in 0..4u128 {
            assert!((d.amplitude(b) - seq.amplitude(b)).norm() < 1e-12);
        }
    }

    #[test]
    fn scheduled_run_compiled_charges_layers_at_op_weight() {
        // 5 disjoint H gates layerize into ⌈5/MAX_LAYER_SINGLES⌉ layers,
        // but the op budget must still see all 5 kernel ops.
        let circuit = h_layer(5);
        let compiled = CompiledCircuit::compile_with(
            &circuit,
            crate::compile::CompileOptions {
                dag_scheduler: true,
            },
        )
        .unwrap();
        let schedule = compiled.schedule().expect("scheduled compile");
        assert!(schedule.layers.len() < 5, "singles share layers");
        let ctx = RtContext::unlimited();
        let mut s = SparseState::zero(5);
        s.run_compiled_ctx(&compiled, &ctx).unwrap();
        assert_eq!(ctx.ops_used(), 5, "layers charge their op weight");
    }

    #[test]
    fn support_hint_is_sparse_only() {
        let d = DenseState::zero(4).expect("dense");
        assert_eq!(d.support_hint(), None);
        let mut s = SparseState::zero(4);
        s.apply(&Gate::H(0));
        assert_eq!(s.support_hint(), Some(2));
    }
}
