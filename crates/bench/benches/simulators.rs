//! Dense vs sparse backend comparison — the ablation justifying the
//! sparse amplitude-map substitution for the paper's MPS simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmkp_qsim::{Circuit, DenseState, Gate, QuantumState, SparseState};

/// A Grover-shaped circuit: H layer on `sup` qubits, then a ladder of
/// Toffolis into the remaining ancillas (pure permutation).
fn layered_circuit(width: usize, sup: usize) -> Circuit {
    let mut c = Circuit::new(width);
    for q in 0..sup {
        c.push_unchecked(Gate::H(q));
    }
    for q in sup..width {
        c.push_unchecked(Gate::ccnot(q % sup, (q + 1) % sup, q));
    }
    for q in (sup..width).rev() {
        c.push_unchecked(Gate::ccnot(q % sup, (q + 1) % sup, q));
    }
    c
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend");
    for width in [12usize, 16, 20] {
        let circ = layered_circuit(width, 6);
        group.bench_with_input(BenchmarkId::new("dense", width), &circ, |b, circ| {
            b.iter(|| {
                let mut s = DenseState::zero(circ.width()).unwrap();
                s.run(circ).unwrap();
                s.probability(0)
            });
        });
        group.bench_with_input(BenchmarkId::new("sparse", width), &circ, |b, circ| {
            b.iter(|| {
                let mut s = SparseState::zero(circ.width());
                s.run(circ).unwrap();
                s.probability(0)
            });
        });
    }
    // The sparse backend's raison d'être: widths far beyond dense reach.
    for width in [40usize, 80, 120] {
        let circ = layered_circuit(width, 6);
        group.bench_with_input(BenchmarkId::new("sparse_wide", width), &circ, |b, circ| {
            b.iter(|| {
                let mut s = SparseState::zero(circ.width());
                s.run(circ).unwrap();
                s.probability(0)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
