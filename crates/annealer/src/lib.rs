//! # qmkp-annealer — the annealing substrate for qaMKP
//!
//! Stands in for the D-Wave Advantage QPU and Hybrid solver the paper runs
//! qaMKP on (Section V, Tables V-VII, Figures 9-11):
//!
//! * [`result`] — the common sample-set / trajectory type all samplers
//!   return.
//! * [`sa`] — classical simulated annealing over a QUBO (the paper's "SA"
//!   baseline: sweeps × shots, geometric temperature schedule).
//! * [`sqa`] — **simulated quantum annealing**: path-integral Monte Carlo
//!   with Trotter replicas and a decreasing transverse field. This is the
//!   standard classical stand-in for a quantum annealer; the per-shot
//!   annealing time `Δt` maps to PIMC sweeps and the shot count `s` to
//!   restarts, reproducing the paper's `t = Δt · s` runtime accounting.
//! * [`topology`] — a Chimera hardware graph (the D-Wave qubit-connectivity
//!   family; the Advantage's Pegasus is denser, which only shifts chain
//!   lengths by a constant — DESIGN.md records the substitution).
//! * [`embedding`] — a Cai-Macready-Roy-style heuristic minor embedder,
//!   chain construction/validation, ferromagnetic chain couplings,
//!   majority-vote unembedding and chain statistics (Figure 11).
//! * [`hybrid`] — a classical portfolio solver with a minimum-runtime
//!   contract, standing in for the D-Wave Hybrid BQM solver ("haMKP").
//! * [`pacing`] — deadline-aware schedule sizing: when a runtime context
//!   carries a wall-clock deadline, the `*_ctx` samplers probe one sweep
//!   and shrink the schedule to fit instead of interrupting mid-run.

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
pub mod embedding;
pub mod hybrid;
pub mod pacing;
pub mod result;
pub mod sa;
pub mod sqa;
pub mod tempering;
pub mod topology;

pub use embedding::{
    clique_embedding, constructive_embedding, embed_ising, find_embedding,
    find_embedding_with_tries, refine_embedding, unembed, ChainStats, Embedding,
};
pub use hybrid::{hybrid_solve, HybridConfig};
pub use pacing::{paced_sweeps, remaining_deadline, PACING_SAFETY};
pub use result::AnnealOutcome;
pub use sa::{anneal_qubo, anneal_qubo_ctx, SaCheckpoint, SaConfig};
pub use sqa::{sqa_qubo, sqa_qubo_ctx, sqa_qubo_ctx_observed, SqaCheckpoint, SqaConfig, SqaHooks};
pub use tempering::{temper_qubo, temper_qubo_ctx, TemperCheckpoint, TemperingConfig};
pub use topology::Chimera;
