//! # qmkp-rt — execution-control runtime for the qMKP workspace
//!
//! Nothing in the solve path should be able to run away with the machine:
//! a dense simulation allocates `2^w` amplitudes, a Grover schedule runs
//! `O(2^{n/2})` oracle calls, and an annealing portfolio sweeps for as
//! long as it is told to. This crate is the supervisor layer the paper's
//! classical post-processing assumes: every long-running pass in
//! `qmkp-qsim`, `qmkp-core` and `qmkp-annealer` periodically consults an
//! [`RtContext`] and returns a structured [`RtError`] instead of
//! panicking or running past its budget.
//!
//! * [`Budget`] — wall-clock deadline, byte ceiling, op ceiling
//!   (env-configurable via `QMKP_RT_DEADLINE_MS`, `QMKP_RT_MAX_BYTES`,
//!   `QMKP_RT_MAX_OPS`).
//! * [`CancelToken`] — cooperative cancellation; cloneable, checkable
//!   from any layer, with a deterministic check-count fuse for tests.
//! * [`RtContext`] — binds a budget and a token to a running solve;
//!   checked at kernel-chunk granularity in the simulator, iteration
//!   granularity in the Grover/counting drivers, and sweep granularity
//!   in the annealers.
//! * [`retry()`] — exponential backoff with deterministic jitter for the
//!   stochastic solvers.
//! * [`Checkpoint`] — JSON (de)serialization contract for resumable
//!   solver state (qMKP's binary search, annealing schedules), plus
//!   [`Interrupted`] — the "error + resume state" pair every resumable
//!   `*_ctx` entry point returns.
//! * [`race()`] — first-verified-wins portfolio racing: fault-contained
//!   racers on scoped threads under one shared token, panics mapped to
//!   structured [`RtError::Faulted`], aggregate
//!   [`RtError::AllRacersFailed`] when nobody wins.
//! * [`failpoint`] — deterministic fault injection at named sites,
//!   compiled in only under the `failpoints` feature.
//!
//! Counters are reported through `qmkp-obs` under the `rt.*` prefix:
//! `rt.cancellations`, `rt.budget_rejections`, `rt.retries` (and
//! `rt.degradations`, emitted by the degradation ladder in the facade
//! crate).

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
pub mod budget;
pub mod checkpoint;
pub mod ctx;
pub mod error;
pub mod failpoint;
pub mod race;
pub mod retry;
pub mod token;

pub use budget::Budget;
pub use checkpoint::{load_checkpoint, Checkpoint, Interrupted};
pub use ctx::RtContext;
pub use error::RtError;
pub use race::{race, RaceWin, Racer, RacerOutcome, RacerReport};
pub use retry::{retry, RetryPolicy};
pub use token::CancelToken;

/// SplitMix64 — the deterministic mixer used for retry jitter, derived
/// annealing sub-streams, and sampled failpoint plans (the same mixer the
/// lint sampler uses, so seeded test plans are reproducible everywhere).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mixes a seed with stream coordinates (e.g. shot and sweep indices)
/// into an independent derived seed. Used by the checkpointable annealing
/// paths so that resuming at any sweep boundary replays the exact random
/// stream of an uninterrupted run.
#[inline]
pub fn derive_seed(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(seed ^ a.wrapping_mul(0xA076_1D64_78BD_642F)) ^ b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn derived_seeds_differ_per_coordinate() {
        let s = 42;
        assert_ne!(derive_seed(s, 0, 0), derive_seed(s, 0, 1));
        assert_ne!(derive_seed(s, 0, 0), derive_seed(s, 1, 0));
        assert_eq!(derive_seed(s, 3, 7), derive_seed(s, 3, 7));
    }
}
