//! Gate-DAG scheduling: dependency-aware reordering and layering.
//!
//! The linear fusion pass in [`crate::compile`] closes a fused run at
//! every section boundary and whenever the gate class changes, so a
//! diagonal phase mark sitting between two permutation ladders keeps the
//! ladders apart forever. This module treats the lowered gate stream as a
//! dependency DAG instead: two ops depend on each other only when their
//! qubit supports overlap *and* they do not commute. That admits two
//! rewrites the oracle circuits are full of:
//!
//! 1. **Commute diagonals past permutations.** A [`PhaseStep`] `D`
//!    commutes through a later [`FlipStep`] `F` by conjugation,
//!    `D' = F·D·F` (`F` is an involution), which is again a single masked
//!    phase step whenever the rule below applies. Diagonals therefore
//!    *sink* to the end of the stream and permutation ladders fuse across
//!    what used to be hard boundaries — including the section boundaries
//!    the linear pass must respect.
//! 2. **Long-range flip cancellation.** Once ladders fuse, a flip equal
//!    to an earlier step cancels with it provided every step in between
//!    has disjoint support (they commute past each other). The diffusion
//!    operator's two X-walls meet exactly this way once the MCZ between
//!    them sinks out.
//!
//! ## The conjugation rule
//!
//! For a phase step `D = (care, want, φ)` and a flip step
//! `F = (fcare, fwant, flip)` (with `fcare ∩ flip = ∅` by construction),
//! `D' = F·D·F` is a single masked phase step in exactly these cases:
//!
//! * `flip ∩ care = ∅` — `F` never flips a tested bit: `D' = D`.
//! * `fcare ⊆ care` — `F`'s own control is decided by `D`'s test:
//!   * if `want` agrees with `fwant` on `fcare`, every basis state that
//!     passes `D`'s test has `F` active, so `D' = (care, want ⊕ (flip ∩
//!     care), φ)`;
//!   * otherwise no state passing `D`'s test has `F` active and `D' = D`.
//! * Anything else (`F` conditionally flips tested bits under a control
//!   `D` does not determine) is *not* a single masked step — e.g. `Z` on
//!   the target of a CNOT — and the scheduler flushes instead of
//!   rewriting.
//!
//! The scheduler is a streaming pass maintaining the invariant that
//! `emitted ++ Perm(perm_run) ++ Diag(diag_run) ++ singles` is equivalent
//! to the program prefix read so far; every arrival rule preserves it by
//! one of the commutations above. Section tags travel with the surviving
//! kernel steps, so per-section attribution (the paper's Table IV) stays
//! exact as a per-op weight vector instead of disjoint op ranges.
//!
//! ## Layering
//!
//! The emitted op stream is finally cut into *layers*: maximal runs of
//! consecutive ops with pairwise-disjoint qubit support. All ops in a
//! layer commute, so a backend may apply them in one pass over the
//! amplitudes (`QuantumState::apply_layer`); the dense backend fuses the
//! whole layer into one rayon-parallel gather.

use crate::circuit::{Circuit, Section};
use crate::compile::{lower_gate, CompiledOp, FlipStep, Op, PhaseStep, SingleQubit};
use std::ops::Range;

/// Section id of gates outside every section.
pub const UNSECTIONED: usize = usize::MAX;

/// Most single-qubit butterflies fused into one layer. Each single in a
/// dense layer doubles the gather's accumulation fan-in, so this is kept
/// small: 2 singles cost 4 fused multiply-adds per amplitude.
pub const MAX_LAYER_SINGLES: usize = 2;

/// The layer structure and per-op section attribution of a scheduled
/// compile. Produced only by the DAG scheduler; linear compiles have no
/// schedule and run the flat op list.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Consecutive op-index ranges; each range is an antichain of
    /// support-disjoint ops. The ranges partition `0..ops.len()`.
    pub layers: Vec<Range<usize>>,
    /// For each op, `(section id, surviving kernel steps)` pairs — the
    /// weights a runner uses to split the op's measured cost across the
    /// source sections it absorbed. Section ids index the source
    /// circuit's section list; [`UNSECTIONED`] marks untagged gates.
    pub attributions: Vec<Vec<(usize, usize)>>,
}

impl Schedule {
    /// Total attributed kernel steps of the ops in `range`.
    pub fn weight_of(&self, range: &Range<usize>) -> usize {
        self.attributions[range.clone()]
            .iter()
            .map(|a| a.iter().map(|&(_, w)| w).sum::<usize>())
            .sum()
    }
}

/// `F·D·F` as a single masked phase step, or `None` when the pair does
/// not admit the rewrite (see the module docs for the rule).
pub fn conjugate_phase(d: &PhaseStep<u128>, f: &FlipStep<u128>) -> Option<PhaseStep<u128>> {
    if f.flip & d.care == 0 {
        return Some(*d);
    }
    if f.care & !d.care == 0 {
        if d.want & f.care == f.want {
            return Some(PhaseStep {
                care: d.care,
                want: d.want ^ (f.flip & d.care),
                phase: d.phase,
            });
        }
        return Some(*d);
    }
    None
}

/// Qubit-support mask of a fused op (bits the op reads or writes).
pub fn op_support(op: &CompiledOp) -> u128 {
    match op {
        Op::Permutation(steps) => steps.iter().fold(0, |m, s| m | s.care | s.flip),
        Op::Diagonal(phases) => phases.iter().fold(0, |m, p| m | p.care),
        Op::Single(k) => 1u128 << k.qubit,
    }
}

/// Everything the scheduled compile produces; folded into
/// [`crate::compile::CompiledCircuit`] by `compile_with`.
pub(crate) struct ScheduledCompile {
    pub ops: Vec<CompiledOp>,
    pub sections: Vec<Section>,
    pub schedule: Schedule,
    pub cancelled_flips: usize,
    pub merged_phases: usize,
    pub merged_singles: usize,
    pub commuted_diagonals: usize,
}

/// A kernel step with the section that contributed it.
#[derive(Clone, Copy)]
struct Tagged<T> {
    step: T,
    section: usize,
}

/// The streaming sink/fuse state.
struct Scheduler {
    emitted: Vec<CompiledOp>,
    attributions: Vec<Vec<(usize, usize)>>,
    perm_run: Vec<Tagged<FlipStep<u128>>>,
    diag_run: Vec<Tagged<PhaseStep<u128>>>,
    /// Pending single-qubit kernels, pairwise on distinct qubits.
    singles: Vec<Tagged<SingleQubit>>,
    cancelled_flips: usize,
    merged_phases: usize,
    merged_singles: usize,
    commuted_diagonals: usize,
}

fn bump(attr: &mut Vec<(usize, usize)>, section: usize) {
    match attr.iter_mut().find(|(s, _)| *s == section) {
        Some((_, w)) => *w += 1,
        None => attr.push((section, 1)),
    }
}

impl Scheduler {
    fn new() -> Self {
        Scheduler {
            emitted: Vec::new(),
            attributions: Vec::new(),
            perm_run: Vec::new(),
            diag_run: Vec::new(),
            singles: Vec::new(),
            cancelled_flips: 0,
            merged_phases: 0,
            merged_singles: 0,
            commuted_diagonals: 0,
        }
    }

    fn singles_support(&self) -> u128 {
        self.singles
            .iter()
            .fold(0, |m, s| m | (1u128 << s.step.qubit))
    }

    /// Emits the pending runs in invariant order (perm, diag, singles).
    /// Permutation runs peephole-cancelled down to nothing are dropped.
    fn flush(&mut self) {
        if !self.perm_run.is_empty() {
            let mut attr = Vec::new();
            for t in &self.perm_run {
                bump(&mut attr, t.section);
            }
            self.emitted.push(Op::Permutation(
                self.perm_run.drain(..).map(|t| t.step).collect(),
            ));
            self.attributions.push(attr);
        }
        if !self.diag_run.is_empty() {
            let mut attr = Vec::new();
            for t in &self.diag_run {
                bump(&mut attr, t.section);
            }
            self.emitted.push(Op::Diagonal(
                self.diag_run.drain(..).map(|t| t.step).collect(),
            ));
            self.attributions.push(attr);
        }
        for t in self.singles.drain(..) {
            self.emitted.push(Op::Single(t.step));
            self.attributions.push(vec![(t.section, 1)]);
        }
    }

    fn push_flip(&mut self, f: FlipStep<u128>, section: usize) {
        let support = f.care | f.flip;
        if self.singles_support() & support != 0 {
            // A pending butterfly touches the flip's support; program
            // order must hold between them, so everything flushes.
            self.flush();
            self.perm_run.push(Tagged { step: f, section });
            return;
        }
        // Sink the whole pending diagonal run past `f`: conjugate every
        // step tentatively and commit only if all of them rewrite.
        let conjugated: Option<Vec<Tagged<PhaseStep<u128>>>> = self
            .diag_run
            .iter()
            .map(|t| {
                conjugate_phase(&t.step, &f).map(|step| Tagged {
                    step,
                    section: t.section,
                })
            })
            .collect();
        let Some(conjugated) = conjugated else {
            self.flush();
            self.perm_run.push(Tagged { step: f, section });
            return;
        };
        self.commuted_diagonals += conjugated.len();
        self.diag_run = conjugated;
        // Long-range cancellation: walk the ladder backwards; `f`
        // commutes past support-disjoint steps, and meeting its own copy
        // composes to the identity.
        for j in (0..self.perm_run.len()).rev() {
            let step = self.perm_run[j].step;
            if step == f {
                self.perm_run.remove(j);
                self.cancelled_flips += 2;
                return;
            }
            if (step.care | step.flip) & support != 0 {
                break;
            }
        }
        self.perm_run.push(Tagged { step: f, section });
    }

    fn push_phase(&mut self, p: PhaseStep<u128>, section: usize) {
        if self.singles_support() & p.care != 0 {
            self.flush();
            self.diag_run.push(Tagged { step: p, section });
            return;
        }
        // Diagonals all commute, so a same-pattern step anywhere in the
        // run absorbs the new phase.
        for t in self.diag_run.iter_mut() {
            if t.step.care == p.care && t.step.want == p.want {
                t.step.phase *= p.phase;
                self.merged_phases += 1;
                return;
            }
        }
        self.diag_run.push(Tagged { step: p, section });
    }

    fn push_single(&mut self, k: SingleQubit, section: usize) {
        // A pending single on the same qubit is adjacent once disjoint
        // intermediates commute out of the way (anything overlapping the
        // qubit would have flushed it), so the kernels fuse.
        for t in self.singles.iter_mut() {
            if t.step.qubit == k.qubit {
                t.step = k.after(&t.step);
                self.merged_singles += 1;
                return;
            }
        }
        self.singles.push(Tagged { step: k, section });
    }
}

/// Cuts the op stream into maximal consecutive antichains of
/// support-disjoint ops, holding at most [`MAX_LAYER_SINGLES`]
/// single-qubit kernels per layer.
pub fn layerize(ops: &[CompiledOp]) -> Vec<Range<usize>> {
    let mut layers = Vec::new();
    let mut start = 0;
    let mut support = 0u128;
    let mut singles = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let s = op_support(op);
        let is_single = matches!(op, Op::Single(_));
        let fits = i == start || (support & s == 0 && (!is_single || singles < MAX_LAYER_SINGLES));
        if !fits {
            layers.push(start..i);
            start = i;
            support = 0;
            singles = 0;
        }
        support |= s;
        singles += is_single as usize;
    }
    if start < ops.len() {
        layers.push(start..ops.len());
    }
    layers
}

/// Runs the DAG scheduler over a validated circuit: lowers every gate,
/// sinks diagonals, fuses and cancels permutation ladders across section
/// boundaries, fuses single-qubit kernels, and layers the result.
pub(crate) fn schedule_compile(circuit: &Circuit) -> ScheduledCompile {
    // Per-gate section tag (sections are disjoint gate ranges).
    let mut gate_section = vec![UNSECTIONED; circuit.len()];
    for (id, s) in circuit.sections().iter().enumerate() {
        for slot in &mut gate_section[s.range.clone()] {
            *slot = id;
        }
    }

    let mut sched = Scheduler::new();
    for (g, gate) in circuit.gates().iter().enumerate() {
        let section = gate_section[g];
        match lower_gate(gate) {
            Op::Permutation(steps) => {
                for step in steps {
                    sched.push_flip(step, section);
                }
            }
            Op::Diagonal(phases) => {
                for p in phases {
                    sched.push_phase(p, section);
                }
            }
            Op::Single(k) => sched.push_single(k, section),
        }
    }
    sched.flush();

    let Scheduler {
        emitted: ops,
        attributions,
        cancelled_flips,
        merged_phases,
        merged_singles,
        commuted_diagonals,
        ..
    } = sched;

    // Sections become *covering* op ranges: the op span that holds any
    // surviving step of the section. Spans of different sections may
    // overlap (that is the point of cross-boundary fusion); runners that
    // need exact attribution use the per-op weights instead.
    let sections = circuit
        .sections()
        .iter()
        .enumerate()
        .map(|(id, s)| {
            let mut lo = usize::MAX;
            let mut hi = 0usize;
            for (op, attr) in attributions.iter().enumerate() {
                if attr.iter().any(|&(sec, _)| sec == id) {
                    lo = lo.min(op);
                    hi = hi.max(op + 1);
                }
            }
            let range = if lo == usize::MAX {
                ops.len()..ops.len()
            } else {
                lo..hi
            };
            Section {
                name: s.name.clone(),
                range,
            }
        })
        .collect();

    let layers = layerize(&ops);
    ScheduledCompile {
        ops,
        sections,
        schedule: Schedule {
            layers,
            attributions,
        },
        cancelled_flips,
        merged_phases,
        merged_singles,
        commuted_diagonals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    /// Exhaustively verifies the conjugation rule as an operator
    /// identity: `D` then `F` must equal `F` then `F·D·F` on every basis
    /// state of a 4-qubit register, for every mask combination.
    #[test]
    fn conjugation_rule_is_an_operator_identity() {
        let phase = Complex::from_phase(0.37);
        for fcare in 0u128..8 {
            for fwant in 0u128..8 {
                if fwant & !fcare != 0 {
                    continue;
                }
                for flip in 1u128..16 {
                    if flip & fcare != 0 {
                        continue;
                    }
                    let f = FlipStep {
                        care: fcare,
                        want: fwant,
                        flip,
                    };
                    for care in 0u128..16 {
                        for want in 0u128..16 {
                            if want & !care != 0 {
                                continue;
                            }
                            let d = PhaseStep { care, want, phase };
                            let Some(d2) = conjugate_phase(&d, &f) else {
                                continue;
                            };
                            for x in 0u128..16 {
                                // D then F: phase from D(x), basis F(x).
                                let lhs = (d.applies_to(x), f.apply(x));
                                // F then D': phase from D'(F(x)).
                                let rhs = (d2.applies_to(f.apply(x)), f.apply(x));
                                assert_eq!(lhs, rhs, "f={f:?} d={d:?} x={x}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn z_past_cnot_target_is_refused() {
        // Z on the target of a CNOT is not a masked phase after
        // conjugation (it becomes a controlled pair), so the rule must
        // decline rather than emit something wrong.
        let d = PhaseStep {
            care: 0b10,
            want: 0b10,
            phase: Complex::real(-1.0),
        };
        let f = FlipStep {
            care: 0b01,
            want: 0b01,
            flip: 0b10,
        };
        assert_eq!(conjugate_phase(&d, &f), None);
    }

    #[test]
    fn layering_groups_disjoint_ops_and_caps_singles() {
        let flip = |q: usize| {
            Op::Permutation(vec![FlipStep {
                care: 0,
                want: 0,
                flip: 1u128 << q,
            }])
        };
        let single = |q: usize| Op::Single(SingleQubit::hadamard(q));
        // X(0) X(1) share no support with each other; X(0) again overlaps.
        let ops = vec![flip(0), flip(1), flip(0), single(2), single(3), single(4)];
        let layers = layerize(&ops);
        assert_eq!(layers, vec![0..2, 2..5, 5..6]);
        // Each layer's ops are pairwise disjoint.
        for l in &layers {
            let mut seen = 0u128;
            for op in &ops[l.clone()] {
                assert_eq!(seen & op_support(op), 0);
                seen |= op_support(op);
            }
        }
    }
}
