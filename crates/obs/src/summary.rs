//! Aggregation of a raw event stream into a human-readable run summary:
//! a span tree keyed by name-path plus counter / gauge / duration-histogram
//! rollups.

use crate::event::Event;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::time::Duration;

/// Aggregate statistics for one gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStats {
    /// Most recently set value.
    pub last: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Number of times the gauge was set.
    pub count: u64,
}

/// Aggregate statistics for one duration histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurationStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub total: Duration,
    /// Largest single observation.
    pub max: Duration,
}

/// Aggregate statistics for one span name-path in the span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// How many spans completed at this path.
    pub count: u64,
    /// Sum of their durations.
    pub total: Duration,
}

/// An aggregated view of an event stream.
///
/// Spans are grouped by *name-path* — the chain of span names from the
/// root — so 200 `core.grover.iteration` spans collapse into one line with
/// `count = 200`, keeping summaries readable regardless of run length.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// Span aggregates keyed by name-path (root first).
    pub spans: BTreeMap<Vec<String>, SpanStats>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge statistics by name.
    pub gauges: BTreeMap<String, GaugeStats>,
    /// Duration-histogram statistics by name.
    pub durations: BTreeMap<String, DurationStats>,
    /// Number of message events seen.
    pub messages: u64,
}

impl Summary {
    /// Aggregates an event stream.
    ///
    /// Unmatched `SpanEnd`s (whose start was filtered out or predates the
    /// stream) are grouped as root spans under their own name.
    pub fn from_events(events: &[Event]) -> Self {
        let mut out = Summary::default();
        // Live span id -> its name-path.
        let mut paths: HashMap<u64, Vec<String>> = HashMap::new();
        for ev in events {
            match ev {
                Event::SpanStart {
                    id, parent, name, ..
                } => {
                    let mut path = paths.get(parent).cloned().unwrap_or_default();
                    path.push(name.clone());
                    paths.insert(*id, path);
                }
                Event::SpanEnd {
                    id, name, duration, ..
                } => {
                    let path = paths.remove(id).unwrap_or_else(|| vec![name.clone()]);
                    let s = out.spans.entry(path).or_default();
                    s.count += 1;
                    s.total += *duration;
                }
                Event::Counter { name, delta, .. } => {
                    *out.counters.entry(name.clone()).or_default() += delta;
                }
                Event::Gauge { name, value, .. } => {
                    out.gauges
                        .entry(name.clone())
                        .and_modify(|g| {
                            g.last = *value;
                            g.min = g.min.min(*value);
                            g.max = g.max.max(*value);
                            g.count += 1;
                        })
                        .or_insert(GaugeStats {
                            last: *value,
                            min: *value,
                            max: *value,
                            count: 1,
                        });
                }
                Event::Observe { name, duration, .. } => {
                    let d = out.durations.entry(name.clone()).or_default();
                    d.count += 1;
                    d.total += *duration;
                    d.max = d.max.max(*duration);
                }
                Event::Message { .. } => out.messages += 1,
            }
        }
        out
    }

    /// Renders the summary as an indented text block (one span-tree line
    /// per name-path, then metric rollups). Returns an empty string when
    /// there is nothing to report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for (path, s) in &self.spans {
                let depth = path.len().saturating_sub(1);
                let name = path.last().map(String::as_str).unwrap_or("?");
                let _ = writeln!(
                    out,
                    "  {:indent$}{name:<w$} count {:>6}  total {}",
                    "",
                    s.count,
                    fmt_duration(s.total),
                    indent = depth * 2,
                    w = 36usize.saturating_sub(depth * 2),
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, total) in &self.counters {
                let _ = writeln!(out, "  {name:<38} {total}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, g) in &self.gauges {
                let _ = writeln!(
                    out,
                    "  {name:<38} last {}  min {}  max {}  (n={})",
                    fmt_value(g.last),
                    fmt_value(g.min),
                    fmt_value(g.max),
                    g.count
                );
            }
        }
        if !self.durations.is_empty() {
            out.push_str("durations:\n");
            for (name, d) in &self.durations {
                let mean = if d.count > 0 {
                    d.total / u32::try_from(d.count).unwrap_or(u32::MAX)
                } else {
                    Duration::ZERO
                };
                let _ = writeln!(
                    out,
                    "  {name:<38} n {:>8}  total {}  mean {}  max {}",
                    d.count,
                    fmt_duration(d.total),
                    fmt_duration(mean),
                    fmt_duration(d.max)
                );
            }
        }
        out
    }
}

/// Formats a duration with an auto-picked unit (ns / µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spanned(id: u64, parent: u64, name: &str, ns: u64) -> [Event; 2] {
        [
            Event::SpanStart {
                id,
                parent,
                thread: 1,
                name: name.into(),
            },
            Event::SpanEnd {
                id,
                thread: 1,
                name: name.into(),
                duration: Duration::from_nanos(ns),
            },
        ]
    }

    #[test]
    fn groups_spans_by_name_path() {
        let mut events = Vec::new();
        events.push(Event::SpanStart {
            id: 1,
            parent: 0,
            thread: 1,
            name: "run".into(),
        });
        events.extend(spanned(2, 1, "iter", 10));
        events.extend(spanned(3, 1, "iter", 20));
        events.push(Event::SpanEnd {
            id: 1,
            thread: 1,
            name: "run".into(),
            duration: Duration::from_nanos(100),
        });
        let s = Summary::from_events(&events);
        let iter = &s.spans[&vec!["run".to_string(), "iter".to_string()]];
        assert_eq!(iter.count, 2);
        assert_eq!(iter.total, Duration::from_nanos(30));
        assert_eq!(s.spans[&vec!["run".to_string()]].count, 1);
    }

    #[test]
    fn unmatched_span_end_becomes_root() {
        let events = [Event::SpanEnd {
            id: 99,
            thread: 1,
            name: "orphan".into(),
            duration: Duration::from_nanos(5),
        }];
        let s = Summary::from_events(&events);
        assert_eq!(s.spans[&vec!["orphan".to_string()]].count, 1);
    }

    #[test]
    fn metric_rollups() {
        let events = [
            Event::Counter {
                thread: 1,
                name: "c".into(),
                delta: 2,
            },
            Event::Counter {
                thread: 1,
                name: "c".into(),
                delta: 3,
            },
            Event::Gauge {
                thread: 1,
                name: "g".into(),
                value: 4.0,
            },
            Event::Gauge {
                thread: 1,
                name: "g".into(),
                value: 1.0,
            },
            Event::Observe {
                thread: 1,
                name: "d".into(),
                duration: Duration::from_nanos(7),
            },
            Event::Message {
                thread: 1,
                text: "m".into(),
            },
        ];
        let s = Summary::from_events(&events);
        assert_eq!(s.counters["c"], 5);
        let g = s.gauges["g"];
        assert_eq!((g.last, g.min, g.max, g.count), (1.0, 1.0, 4.0, 2));
        assert_eq!(s.durations["d"].count, 1);
        assert_eq!(s.messages, 1);
        let text = s.render();
        assert!(text.contains("counters:"), "{text}");
        assert!(text.contains("g"), "{text}");
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with('s'));
    }
}
