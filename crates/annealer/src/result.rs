//! The common result type of all annealing-style samplers.

use std::time::Duration;

/// Outcome of a multi-shot annealing run.
#[derive(Debug, Clone)]
pub struct AnnealOutcome {
    /// Best assignment found across all shots.
    pub best: Vec<bool>,
    /// Energy of the best assignment (on the *logical* model).
    pub best_energy: f64,
    /// Final energy of each shot, in execution order.
    pub shot_energies: Vec<f64>,
    /// Best-so-far energy after each shot (the cost-vs-runtime curve).
    pub trace: Vec<(Duration, f64)>,
    /// Total wall time.
    pub elapsed: Duration,
}

impl AnnealOutcome {
    /// Best-so-far energy after the first `d` of simulated runtime — the
    /// last trace entry at or before `d`, or the first shot's energy if
    /// `d` precedes everything.
    pub fn energy_at(&self, d: Duration) -> f64 {
        let mut current = self
            .trace
            .first()
            .map(|&(_, e)| e)
            .unwrap_or(self.best_energy);
        for &(t, e) in &self.trace {
            if t <= d {
                current = e;
            } else {
                break;
            }
        }
        current
    }

    /// Number of shots whose final energy reached the best energy.
    pub fn hits(&self) -> usize {
        self.shot_energies
            .iter()
            .filter(|&&e| (e - self.best_energy).abs() < 1e-9)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_at_walks_the_trace() {
        let o = AnnealOutcome {
            best: vec![],
            best_energy: -3.0,
            shot_energies: vec![-1.0, -3.0, -2.0],
            trace: vec![
                (Duration::from_millis(1), -1.0),
                (Duration::from_millis(5), -3.0),
            ],
            elapsed: Duration::from_millis(6),
        };
        assert_eq!(o.energy_at(Duration::from_millis(0)), -1.0);
        assert_eq!(o.energy_at(Duration::from_millis(2)), -1.0);
        assert_eq!(o.energy_at(Duration::from_millis(5)), -3.0);
        assert_eq!(o.energy_at(Duration::from_millis(60)), -3.0);
        assert_eq!(o.hits(), 1);
    }
}
