//! Labeled metric series: counters, gauges, and log-linear HDR-style
//! histograms with quantile estimation.
//!
//! This module is the aggregation side of the crate: where the event
//! facade ([`crate::span`], [`crate::observe`], …) streams every
//! occurrence to sinks, the metrics registry folds occurrences into
//! fixed-size series in place, so a run of any length produces a
//! bounded-size [`MetricsSnapshot`] — the telemetry envelope a future
//! multi-tenant solve service returns per request.
//!
//! # Cost model
//!
//! - **Disabled** (the default): every entry point is one relaxed atomic
//!   load and an early return.
//! - **Enabled**: a read-locked hash lookup keyed by `(kind, name,
//!   labels)` — computed over borrowed strings, so the record path
//!   allocates nothing once a series exists — then a handful of relaxed
//!   atomic updates on one of [`SHARDS`] per-thread shards. Histogram
//!   bucket arrays are allocated lazily on each shard's first record;
//!   after that first touch the hot path is allocation-free.
//!
//! # Histogram design and error bound
//!
//! Values are `u64` (nanoseconds for durations, raw units otherwise) and
//! land in log-linear buckets: values `0..=31` get exact unit buckets;
//! above that, each power-of-two octave is split into 32 linear
//! sub-buckets ([`SUB_BITS`]` = 5`). Quantiles are estimated by
//! nearest-rank over the bucket counts, reporting the midpoint of the
//! selected bucket clamped to the observed `[min, max]`.
//!
//! **Error bound**: a bucket holding value `v ≥ 32` spans a range of
//! width `2^(h-5)` starting at or above `32·2^(h-5)` (where `h` is the
//! bit length of `v` minus one), so the midpoint is within `1/64` of any
//! value in the bucket. Quantile estimates therefore satisfy
//! `|est − exact| ≤ exact/64 + 1` (the `+1` absorbs integer midpoint
//! rounding); values below 32 are exact. This bound is proptest-verified
//! against an exact sorted reference in this module's tests.

use crate::json;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// Number of per-thread shards per series. Threads map to shards by
/// `thread_id % SHARDS`; shards are merged at snapshot time.
pub const SHARDS: usize = 8;

/// Sub-bucket resolution exponent: each power-of-two octave is split
/// into `2^SUB_BITS = 32` linear sub-buckets.
pub const SUB_BITS: u32 = 5;

const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total histogram buckets: 32 exact unit buckets for `0..=31`, then 32
/// sub-buckets for each of the 59 octaves covering `32..=u64::MAX`.
pub const NUM_BUCKETS: usize = (SUB_COUNT as usize) * 60;

/// The quantiles every histogram snapshot reports.
pub const QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// What a series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeriesKind {
    /// Monotonic sum of deltas.
    Counter,
    /// Last-set value.
    Gauge,
    /// Log-linear value distribution with quantiles.
    Histogram,
}

impl SeriesKind {
    /// Stable lowercase name used in JSON and Prometheus output.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

struct Shard {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: OnceLock<Box<[AtomicU64]>>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: OnceLock::new(),
        }
    }
}

struct Series {
    kind: SeriesKind,
    name: String,
    labels: Vec<(String, String)>,
    /// f64 bit pattern of the last gauge value (gauges only).
    gauge_bits: AtomicU64,
    shards: [Shard; SHARDS],
}

impl Series {
    fn new(kind: SeriesKind, name: &str, labels: &[(&str, &str)]) -> Series {
        Series {
            kind,
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            gauge_bits: AtomicU64::new(0f64.to_bits()),
            shards: std::array::from_fn(|_| Shard::new()),
        }
    }

    fn matches(&self, kind: SeriesKind, name: &str, labels: &[(&str, &str)]) -> bool {
        self.kind == kind
            && self.name == name
            && self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels)
                .all(|((sk, sv), (k, v))| sk == k && sv == v)
    }

    fn shard(&self) -> &Shard {
        &self.shards[(crate::thread_id() as usize) % SHARDS]
    }

    fn add(&self, delta: u64) {
        let s = self.shard();
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(delta, Ordering::Relaxed);
    }

    fn set(&self, value: f64) {
        self.gauge_bits.store(value.to_bits(), Ordering::Relaxed);
        self.shard().count.fetch_add(1, Ordering::Relaxed);
    }

    fn record(&self, value: u64) {
        let s = self.shard();
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(value, Ordering::Relaxed);
        s.min.fetch_min(value, Ordering::Relaxed);
        s.max.fetch_max(value, Ordering::Relaxed);
        let buckets = s.buckets.get_or_init(|| {
            (0..NUM_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SeriesSnapshot {
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut shards_touched = 0u64;
        let mut merged = vec![0u64; NUM_BUCKETS];
        for s in &self.shards {
            let c = s.count.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            shards_touched += 1;
            count += c;
            sum = sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            min = min.min(s.min.load(Ordering::Relaxed));
            max = max.max(s.max.load(Ordering::Relaxed));
            if let Some(buckets) = s.buckets.get() {
                for (m, b) in merged.iter_mut().zip(buckets.iter()) {
                    *m += b.load(Ordering::Relaxed);
                }
            }
        }
        let buckets: Vec<(u32, u64)> = merged
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        if self.kind != SeriesKind::Histogram {
            min = 0;
        }
        let value = match self.kind {
            SeriesKind::Counter => sum as f64,
            SeriesKind::Gauge => f64::from_bits(self.gauge_bits.load(Ordering::Relaxed)),
            SeriesKind::Histogram => sum as f64,
        };
        let quantiles = if self.kind == SeriesKind::Histogram {
            estimate_quantiles(&buckets, count, min, max)
        } else {
            Vec::new()
        };
        SeriesSnapshot {
            kind: self.kind,
            name: self.name.clone(),
            labels: self.labels.clone(),
            value,
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
            shards: shards_touched,
            quantiles,
            buckets,
        }
    }
}

/// Maps a value to its log-linear bucket (see the module docs).
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        let h = 63 - v.leading_zeros(); // bit length - 1; >= SUB_BITS here
        let sub = ((v >> (h - SUB_BITS)) & (SUB_COUNT - 1)) as usize;
        (((h - SUB_BITS + 1) as usize) << SUB_BITS) + sub
    }
}

/// The inclusive `[lo, hi]` value range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB_COUNT as usize {
        (i as u64, i as u64)
    } else {
        let octave = (i >> SUB_BITS) as u32; // 1..=59
        let h = octave + SUB_BITS - 1;
        let sub = (i as u64) & (SUB_COUNT - 1);
        let lo = (SUB_COUNT + sub) << (h - SUB_BITS);
        let width = 1u64 << (h - SUB_BITS);
        (lo, lo + (width - 1))
    }
}

fn bucket_mid(i: usize) -> u64 {
    let (lo, hi) = bucket_bounds(i);
    lo + (hi - lo) / 2
}

/// Nearest-rank quantile estimate over sparse `(bucket, count)` pairs:
/// the midpoint of the bucket holding the rank-`⌈q·count⌉` sample,
/// clamped to the observed `[min, max]`.
pub fn quantile_from(buckets: &[(u32, u64)], count: u64, min: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for &(i, c) in buckets {
        cum += c;
        if cum >= rank {
            return bucket_mid(i as usize).clamp(min, max);
        }
    }
    max
}

fn estimate_quantiles(
    buckets: &[(u32, u64)],
    count: u64,
    min: u64,
    max: u64,
) -> Vec<(String, u64)> {
    QUANTILES
        .iter()
        .map(|&(name, q)| (name.to_string(), quantile_from(buckets, count, min, max, q)))
        .collect()
}

struct MetricsRegistry {
    enabled: AtomicBool,
    series: RwLock<HashMap<u64, Vec<Arc<Series>>>>,
}

fn metrics_registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| MetricsRegistry {
        enabled: AtomicBool::new(false),
        series: RwLock::new(HashMap::new()),
    })
}

/// Whether metric recording is on. The disabled path of every entry
/// point is exactly this one relaxed load.
#[inline]
pub fn enabled() -> bool {
    metrics_registry().enabled.load(Ordering::Relaxed)
}

/// Turns metric recording on or off. Recording off does not clear
/// accumulated series; see [`reset`].
pub fn set_enabled(on: bool) {
    metrics_registry().enabled.store(on, Ordering::Relaxed);
}

/// Clears every accumulated series (recording stays in whatever state it
/// was). Call between runs that must not see each other's data.
pub fn reset() {
    metrics_registry()
        .series
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn series_hash(kind: SeriesKind, name: &str, labels: &[(&str, &str)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut h, &[kind as u8]);
    fnv1a(&mut h, name.as_bytes());
    for (k, v) in labels {
        fnv1a(&mut h, &[0xff]);
        fnv1a(&mut h, k.as_bytes());
        fnv1a(&mut h, &[0xfe]);
        fnv1a(&mut h, v.as_bytes());
    }
    h
}

/// Looks up (or on first touch, creates) the series and applies `f`.
/// Label order is significant: call sites must pass a fixed order.
fn with_series(kind: SeriesKind, name: &str, labels: &[(&str, &str)], f: impl FnOnce(&Series)) {
    let reg = metrics_registry();
    let hash = series_hash(kind, name, labels);
    {
        let map = reg.series.read().unwrap_or_else(|e| e.into_inner());
        if let Some(chain) = map.get(&hash) {
            if let Some(s) = chain.iter().find(|s| s.matches(kind, name, labels)) {
                f(s);
                return;
            }
        }
    }
    let created;
    {
        let mut map = reg.series.write().unwrap_or_else(|e| e.into_inner());
        let chain = map.entry(hash).or_default();
        if let Some(s) = chain.iter().find(|s| s.matches(kind, name, labels)) {
            created = s.clone();
        } else {
            let s = Arc::new(Series::new(kind, name, labels));
            chain.push(s.clone());
            created = s;
        }
    }
    f(&created);
}

/// Adds `delta` to the labeled counter series.
#[inline]
pub fn counter(name: &str, labels: &[(&str, &str)], delta: u64) {
    if !enabled() {
        return;
    }
    with_series(SeriesKind::Counter, name, labels, |s| s.add(delta));
}

/// Sets the labeled gauge series to `value`.
#[inline]
pub fn gauge(name: &str, labels: &[(&str, &str)], value: f64) {
    if !enabled() {
        return;
    }
    with_series(SeriesKind::Gauge, name, labels, |s| s.set(value));
}

/// Records one `u64` observation into the labeled histogram series.
#[inline]
pub fn observe(name: &str, labels: &[(&str, &str)], value: u64) {
    if !enabled() {
        return;
    }
    with_series(SeriesKind::Histogram, name, labels, |s| s.record(value));
}

/// Records a duration (as nanoseconds, saturating) into the labeled
/// histogram series.
#[inline]
pub fn observe_duration(name: &str, labels: &[(&str, &str)], d: Duration) {
    if !enabled() {
        return;
    }
    let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    with_series(SeriesKind::Histogram, name, labels, |s| s.record(ns));
}

/// Captures the current state of every series, sorted by name, labels,
/// and kind for deterministic output.
pub fn snapshot() -> MetricsSnapshot {
    let mut series: Vec<SeriesSnapshot> = metrics_registry()
        .series
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .values()
        .flatten()
        .map(|s| s.snapshot())
        .collect();
    series.sort_by(|a, b| {
        a.name
            .cmp(&b.name)
            .then_with(|| a.labels.cmp(&b.labels))
            .then_with(|| a.kind.cmp(&b.kind))
    });
    MetricsSnapshot { series }
}

/// One series' aggregated state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// What the series measures.
    pub kind: SeriesKind,
    /// Series name (dotted, e.g. `solve.rung_ns`).
    pub name: String,
    /// Label key/value pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Counter total, gauge last value, or histogram sum.
    pub value: f64,
    /// Number of recorded events.
    pub count: u64,
    /// Sum of recorded values (counters: same as `value`).
    pub sum: u64,
    /// Smallest recorded value (histograms; 0 otherwise).
    pub min: u64,
    /// Largest recorded value (histograms; 0 otherwise).
    pub max: u64,
    /// Number of thread shards that recorded into this series.
    pub shards: u64,
    /// `(name, estimate)` quantile pairs (histograms only).
    pub quantiles: Vec<(String, u64)>,
    /// Sparse non-empty `(bucket index, count)` pairs, ascending
    /// (histograms only). Kept so snapshots can be diffed.
    pub buckets: Vec<(u32, u64)>,
}

/// A point-in-time capture of the whole metrics registry: the telemetry
/// envelope folded into [`crate::RunReport`] and scraped periodically via
/// [`MetricsSnapshot::delta_since`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All series, sorted by `(name, labels, kind)`.
    pub series: Vec<SeriesSnapshot>,
}

impl MetricsSnapshot {
    /// Whether no series recorded anything.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The series with exactly this name and label set, if present.
    /// Labels must match in full (order-insensitively); pass `&[]` for
    /// an unlabeled series.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
    }

    /// The value of the series with this name and label set: counter
    /// total, gauge last value, or histogram sum — 0.0 when the series
    /// never recorded. The assertion-friendly accessor for tests and CI
    /// guards.
    pub fn value_of(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.find(name, labels).map_or(0.0, |s| s.value)
    }

    /// The snapshot as a JSON document (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, 0);
        out.push('\n');
        out
    }

    /// Writes the snapshot as a JSON object at the given indent depth
    /// (two spaces per level); used to embed it in a larger document.
    pub(crate) fn write_json(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = write!(out, "{{\n{pad}  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n{pad}    {{");
            let _ = write!(
                out,
                "\"kind\": {}, \"name\": {}, \"labels\": {{",
                json::quote(s.kind.name()),
                json::quote(&s.name)
            );
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json::quote(k), json::quote(v));
            }
            let _ = write!(
                out,
                "}}, \"value\": {}, \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"shards\": {}",
                json::number(s.value),
                s.count,
                s.sum,
                s.min,
                s.max,
                s.shards
            );
            if s.kind == SeriesKind::Histogram {
                out.push_str(", \"quantiles\": {");
                for (j, (q, v)) in s.quantiles.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: {v}", json::quote(q));
                }
                out.push_str("}, \"buckets\": [");
                for (j, (b, c)) in s.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "[{b}, {c}]");
                }
                out.push(']');
            }
            out.push('}');
        }
        if !self.series.is_empty() {
            let _ = write!(out, "\n{pad}  ");
        }
        let _ = write!(out, "]\n{pad}}}");
    }

    /// Prometheus-style text exposition: counters and gauges as single
    /// samples, histograms as summaries (`{quantile="0.5"}` samples plus
    /// `_count` and `_sum`). Dots in names become underscores.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let name = sanitize_metric_name(&s.name);
            let prom_type = match s.kind {
                SeriesKind::Counter => "counter",
                SeriesKind::Gauge => "gauge",
                SeriesKind::Histogram => "summary",
            };
            let _ = writeln!(out, "# TYPE {name} {prom_type}");
            match s.kind {
                SeriesKind::Counter => {
                    let _ = writeln!(out, "{name}{} {}", prom_labels(&s.labels, None), s.sum);
                }
                SeriesKind::Gauge => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        prom_labels(&s.labels, None),
                        json::number(s.value)
                    );
                }
                SeriesKind::Histogram => {
                    for ((_, q), (_, v)) in QUANTILES.iter().zip(&s.quantiles) {
                        let quantile = format!("{q}");
                        let _ =
                            writeln!(out, "{name}{} {v}", prom_labels(&s.labels, Some(&quantile)));
                    }
                    let plain = prom_labels(&s.labels, None);
                    let _ = writeln!(out, "{name}_count{plain} {}", s.count);
                    let _ = writeln!(out, "{name}_sum{plain} {}", s.sum);
                }
            }
        }
        out
    }

    /// The change since `prev` (an earlier snapshot of the same
    /// registry), for periodic scraping: counter values and histogram
    /// bucket counts are subtracted and quantiles recomputed over the
    /// difference; gauges keep their current value with the delta set
    /// count. Histogram `min`/`max` stay cumulative (the registry does
    /// not track per-interval extrema). Series with no activity in the
    /// interval are omitted.
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        let series =
            self.series
                .iter()
                .filter_map(|cur| {
                    let old = prev.series.iter().find(|p| {
                        p.kind == cur.kind && p.name == cur.name && p.labels == cur.labels
                    });
                    let mut d = cur.clone();
                    if let Some(old) = old {
                        d.count = cur.count.saturating_sub(old.count);
                        d.sum = cur.sum.wrapping_sub(old.sum);
                        if cur.kind == SeriesKind::Counter {
                            d.value = d.sum as f64;
                        }
                        if cur.kind == SeriesKind::Histogram {
                            d.buckets = diff_buckets(&cur.buckets, &old.buckets);
                            d.quantiles = estimate_quantiles(&d.buckets, d.count, d.min, d.max);
                        }
                    }
                    (d.count > 0).then_some(d)
                })
                .collect();
        MetricsSnapshot { series }
    }
}

fn diff_buckets(cur: &[(u32, u64)], old: &[(u32, u64)]) -> Vec<(u32, u64)> {
    cur.iter()
        .filter_map(|&(i, c)| {
            let prev = old
                .iter()
                .find(|&&(j, _)| j == i)
                .map(|&(_, p)| p)
                .unwrap_or(0);
            let d = c.saturating_sub(prev);
            (d > 0).then_some((i, d))
        })
        .collect()
}

fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn prom_labels(labels: &[(String, String)], quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}=\"{}\"",
            sanitize_metric_name(k),
            v.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        );
    }
    if let Some(q) = quantile {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "quantile=\"{q}\"");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        crate::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Enables metrics on a clean registry; disables and clears on drop.
    struct Armed;
    impl Armed {
        fn new() -> Armed {
            reset();
            set_enabled(true);
            Armed
        }
    }
    impl Drop for Armed {
        fn drop(&mut self) {
            set_enabled(false);
            reset();
        }
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            let mid = lo + (hi - lo) / 2;
            assert_eq!(bucket_index(mid), i, "mid of bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
    }

    #[test]
    fn bucket_midpoint_relative_error_is_bounded() {
        for i in 32..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let mid = lo + (hi - lo) / 2;
            // Any value v in [lo, hi] differs from mid by at most
            // (hi - lo + 1) / 2 <= lo / 64 <= v / 64.
            let half_width = (hi - lo).div_ceil(2);
            assert!(
                half_width as u128 * 64 <= lo as u128 + 64,
                "bucket {i}: half width {half_width} vs lo {lo}"
            );
            let _ = mid;
        }
    }

    #[test]
    fn find_and_value_of_match_name_and_labels() {
        let _l = locked();
        let _armed = Armed::new();
        counter("m.find.c", &[("lane", "dense")], 3);
        counter("m.find.c", &[("lane", "sparse")], 5);
        gauge("m.find.g", &[], 2.5);
        let snap = snapshot();
        assert_eq!(snap.value_of("m.find.c", &[("lane", "dense")]), 3.0);
        assert_eq!(snap.value_of("m.find.c", &[("lane", "sparse")]), 5.0);
        assert_eq!(snap.value_of("m.find.g", &[]), 2.5);
        // Full-label-set match only: a subset or a miss finds nothing.
        assert!(snap.find("m.find.c", &[]).is_none());
        assert!(snap.find("m.find.c", &[("lane", "classical")]).is_none());
        assert_eq!(snap.value_of("m.absent", &[]), 0.0);
        let s = snap.find("m.find.c", &[("lane", "dense")]).unwrap();
        assert_eq!(s.count, 1);
    }

    #[test]
    fn disabled_is_a_no_op() {
        let _l = locked();
        reset();
        assert!(!enabled());
        counter("m.off", &[], 1);
        gauge("m.off.g", &[], 1.0);
        observe("m.off.h", &[], 7);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let _l = locked();
        let _armed = Armed::new();
        counter("m.c", &[("k", "a")], 2);
        counter("m.c", &[("k", "a")], 3);
        counter("m.c", &[("k", "b")], 10);
        gauge("m.g", &[], 1.5);
        gauge("m.g", &[], 2.5);
        let snap = snapshot();
        assert_eq!(snap.series.len(), 3);
        let ca = snap
            .series
            .iter()
            .find(|s| s.name == "m.c" && s.labels[0].1 == "a")
            .unwrap();
        assert_eq!(ca.sum, 5);
        assert_eq!(ca.count, 2);
        assert_eq!(ca.value, 5.0);
        let g = snap.series.iter().find(|s| s.name == "m.g").unwrap();
        assert_eq!(g.value, 2.5);
        assert_eq!(g.count, 2);
    }

    #[test]
    fn histogram_tracks_exact_stats_and_small_values_exactly() {
        let _l = locked();
        let _armed = Armed::new();
        for v in [0u64, 1, 5, 5, 31, 17] {
            observe("m.h", &[], v);
        }
        let snap = snapshot();
        let h = &snap.series[0];
        assert_eq!(h.kind, SeriesKind::Histogram);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 59);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 31);
        // All values < 32 sit in exact buckets, so quantiles are exact
        // nearest-rank answers: sorted = [0,1,5,5,17,31].
        let q: std::collections::HashMap<_, _> =
            h.quantiles.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        assert_eq!(q["p50"], 5);
        assert_eq!(q["p90"], 31);
        assert_eq!(q["p999"], 31);
    }

    #[test]
    fn observe_duration_records_nanoseconds() {
        let _l = locked();
        let _armed = Armed::new();
        observe_duration("m.d", &[("x", "1")], Duration::from_micros(3));
        let snap = snapshot();
        assert_eq!(snap.series[0].sum, 3_000);
        assert_eq!(snap.series[0].count, 1);
    }

    #[test]
    fn same_name_different_kind_or_labels_are_distinct_series() {
        let _l = locked();
        let _armed = Armed::new();
        counter("m.same", &[], 1);
        observe("m.same", &[], 1);
        counter("m.same", &[("a", "1")], 1);
        assert_eq!(snapshot().series.len(), 3);
    }

    #[test]
    fn snapshot_json_parses_and_prometheus_has_expected_lines() {
        let _l = locked();
        let _armed = Armed::new();
        counter("m.req.total", &[("rung", "dense")], 4);
        for v in 1..=100u64 {
            observe("m.lat.ns", &[("rung", "dense")], v * 1000);
        }
        gauge("m.mem", &[], 42.0);
        let snap = snapshot();
        let doc = crate::json::parse(&snap.to_json()).expect("snapshot JSON must parse");
        let series = doc.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 3);
        let hist = series
            .iter()
            .find(|s| s.get("kind").unwrap().as_str() == Some("histogram"))
            .unwrap();
        assert!(hist
            .get("quantiles")
            .unwrap()
            .get("p50")
            .unwrap()
            .as_f64()
            .is_some());
        assert!(!hist.get("buckets").unwrap().as_array().unwrap().is_empty());

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE m_req_total counter"), "{prom}");
        assert!(prom.contains("m_req_total{rung=\"dense\"} 4"), "{prom}");
        assert!(prom.contains("# TYPE m_lat_ns summary"), "{prom}");
        assert!(
            prom.contains("m_lat_ns{rung=\"dense\",quantile=\"0.5\"}"),
            "{prom}"
        );
        assert!(
            prom.contains("m_lat_ns_count{rung=\"dense\"} 100"),
            "{prom}"
        );
        assert!(prom.contains("# TYPE m_mem gauge"), "{prom}");
        assert!(prom.contains("m_mem 42"), "{prom}");
    }

    #[test]
    fn delta_since_diffs_counters_and_histograms() {
        let _l = locked();
        let _armed = Armed::new();
        counter("m.dc", &[], 5);
        observe("m.dh", &[], 10);
        observe("m.dh", &[], 10);
        counter("m.idle", &[], 1);
        let first = snapshot();
        counter("m.dc", &[], 7);
        observe("m.dh", &[], 1000);
        let second = snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.series.len(), 2, "idle series must be omitted");
        let dc = delta.series.iter().find(|s| s.name == "m.dc").unwrap();
        assert_eq!(dc.sum, 7);
        assert_eq!(dc.count, 1);
        let dh = delta.series.iter().find(|s| s.name == "m.dh").unwrap();
        assert_eq!(dh.count, 1);
        assert_eq!(dh.sum, 1000);
        assert_eq!(dh.buckets.len(), 1);
        let q: std::collections::HashMap<_, _> =
            dh.quantiles.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        // The interval holds one value (1000); the estimate must be
        // within the documented bound.
        assert!((q["p50"] as i64 - 1000).unsigned_abs() <= 1000 / 64 + 1);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let _l = locked();
        let _armed = Armed::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        counter("m.mt.c", &[], 1);
                        observe("m.mt.h", &[("t", "x")], i);
                    }
                });
            }
        });
        let snap = snapshot();
        let c = snap.series.iter().find(|s| s.name == "m.mt.c").unwrap();
        assert_eq!(c.sum, 4000);
        let h = snap.series.iter().find(|s| s.name == "m.mt.h").unwrap();
        assert_eq!(h.count, 4000);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 999);
        assert!(h.shards >= 1);
    }

    /// Exact nearest-rank quantile over a sorted slice.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Builds the sparse bucket representation for a value set.
    fn sparse_buckets(values: &[u64]) -> Vec<(u32, u64)> {
        let mut merged = std::collections::BTreeMap::new();
        for &v in values {
            *merged.entry(bucket_index(v) as u32).or_insert(0u64) += 1;
        }
        merged.into_iter().collect()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// The documented bound: |est - exact| <= exact/64 + 1, for every
        /// reported quantile, against an exact sorted reference.
        #[test]
        fn quantile_estimates_stay_within_documented_bound(
            mut values in proptest::collection::vec(0u64..=(1u64 << 48), 1..300),
        ) {
            values.sort_unstable();
            let buckets = sparse_buckets(&values);
            let count = values.len() as u64;
            let min = values[0];
            let max = values[values.len() - 1];
            for &(_, q) in QUANTILES.iter() {
                let exact = exact_quantile(&values, q);
                let est = quantile_from(&buckets, count, min, max, q);
                let err = (est as i128 - exact as i128).unsigned_abs();
                proptest::prop_assert!(
                    err <= (exact / 64) as u128 + 1,
                    "q={q}: est {est} vs exact {exact} (err {err}, n={count})"
                );
            }
        }

        /// Small values (< 32) always land in exact unit buckets.
        #[test]
        fn small_values_are_exact(
            mut values in proptest::collection::vec(0u64..32, 1..200),
        ) {
            values.sort_unstable();
            let buckets = sparse_buckets(&values);
            let count = values.len() as u64;
            for &(_, q) in QUANTILES.iter() {
                let exact = exact_quantile(&values, q);
                let est = quantile_from(&buckets, count, values[0], values[values.len() - 1], q);
                proptest::prop_assert_eq!(est, exact);
            }
        }
    }
}
