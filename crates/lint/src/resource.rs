//! Resource auditing: qubit, gate, and depth counts checked against the
//! paper's closed-form bounds.
//!
//! Section IV of the paper gives exact resource formulas for the qTKP
//! oracle; this module encodes them for the workspace's concrete builders
//! (one shared comparator scratch instead of per-vertex adder scratch —
//! see `qmkp-core::layout` — which only changes constants, not shapes).
//! With `n` vertices, `m̄` complement edges, counter width `w_c` and size
//! width `w_s`:
//!
//! | section          | gates (exact)                     | source |
//! |------------------|-----------------------------------|--------|
//! | `graph_encoding` | `m̄`                               | one C²NOT per complement edge (Fig. 6A) |
//! | `degree_count`   | `2·m̄·w_c`                         | ripple increment: `w_c` CᵏNOTs per incident edge (Fig. 6B) |
//! | `degree_compare` | `ones(k-1) + n·(11·w_c + 1) + 1`  | Eq. 6/7 lexicographic compare, compute-copy-uncompute (Fig. 9/10) |
//! | `size_check`     | `n·w_s + ones(t) + 11·w_s + 1`    | popcount + Eq. 6/7 compare (Fig. 11A-B) |
//!
//! The `11·s + 1` comparator term decomposes as `5s` compute (4 gates of
//! bitwise `<`/`=` per bit + `s` prefix gates), `s + 1` result XOR chain,
//! and `5s` uncompute. Total width is
//! `n + m̄ + n·w_c + w_c + n + 1 + 2·w_s + 2 + 3·(w_c + w_s)` —
//! `O(n² log n)`, the paper's space bound.
//!
//! The audit is *exact*, not merely an upper bound: the builders are
//! deterministic, so any deviation means the circuit and the formulas
//! have drifted apart — precisely the regression this pass exists to
//! catch. Inverse sections (`name†`) are audited against the same count
//! as their forward twin, since inversion preserves gate count.

use crate::diagnostic::{Diagnostic, Span};
use qmkp_qsim::Circuit;

/// Expected exact gate count for one named section (and its `†` twin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionBudget {
    /// Section name as tagged by the circuit builder.
    pub name: String,
    /// Exact expected gate count.
    pub gates: usize,
}

/// The closed-form resource model one circuit is audited against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceModel {
    /// Exact expected circuit width (qubits).
    pub width: usize,
    /// Per-section exact gate counts.
    pub sections: Vec<SectionBudget>,
}

impl ResourceModel {
    /// Total expected gates across all sections.
    pub fn total_gates(&self) -> usize {
        self.sections.iter().map(|s| s.gates).sum()
    }

    /// The expected count for a section name, accepting the `†`-suffixed
    /// inverse form.
    fn expected_for(&self, name: &str) -> Option<usize> {
        let base = name.strip_suffix('†').unwrap_or(name);
        self.sections
            .iter()
            .find(|s| s.name == base)
            .map(|s| s.gates)
    }
}

/// Counter width needed to count to `max_count` inclusive:
/// `⌈log₂(max_count + 1)⌉`, and at least 1 (the same formula as
/// `qmkp_arith::counter_width`, restated here so `qmkp-lint` stays
/// dependency-minimal and usable *below* `qmkp-arith` in the crate DAG).
fn counter_width(max_count: usize) -> usize {
    usize::BITS as usize - max_count.leading_zeros() as usize + usize::from(max_count == 0)
}

/// The paper's closed-form resource model for a qTKP oracle over a graph
/// with complement degree sequence `cdegs` (indexed by vertex), plex
/// parameter `k` and size threshold `t`.
///
/// # Panics
/// Panics if `cdegs` is empty, `k == 0`, or `t` is outside `[1, n]` —
/// the same preconditions `OracleLayout::new` enforces.
pub fn qtkp_oracle_model(cdegs: &[usize], k: usize, t: usize) -> ResourceModel {
    let n = cdegs.len();
    assert!(n > 0, "graph must be non-empty");
    assert!(k >= 1, "k must be ≥ 1");
    assert!((1..=n).contains(&t), "threshold T must be in [1, n]");
    let m_bar = cdegs.iter().sum::<usize>() / 2;
    let max_cdeg = cdegs.iter().copied().max().unwrap_or(0);
    let w_c = counter_width(max_cdeg.max(k - 1));
    let w_s = counter_width(n.max(t));
    let ones = |v: usize| v.count_ones() as usize;

    ResourceModel {
        width: n + m_bar + n * w_c + w_c + n + 1 + 2 * w_s + 2 + 3 * (w_c + w_s),
        sections: vec![
            SectionBudget {
                name: "graph_encoding".into(),
                gates: m_bar,
            },
            SectionBudget {
                name: "degree_count".into(),
                gates: 2 * m_bar * w_c,
            },
            SectionBudget {
                name: "degree_compare".into(),
                gates: ones(k - 1) + n * (11 * w_c + 1) + 1,
            },
            SectionBudget {
                name: "size_check".into(),
                gates: n * w_s + ones(t) + 11 * w_s + 1,
            },
        ],
    }
}

/// Audits a circuit against a resource model: exact width match and exact
/// per-section gate counts (inverse `name†` sections audited against
/// their forward twin's budget). Sections in the model but absent from
/// the circuit, and circuit sections with no budget, are both reported.
pub fn audit(circuit: &Circuit, model: &ResourceModel) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    if circuit.width() != model.width {
        diagnostics.push(Diagnostic::error(
            "resource-width",
            Span::default(),
            format!(
                "circuit width {} differs from the closed-form qubit count {}",
                circuit.width(),
                model.width
            ),
        ));
    }
    let mut seen = vec![false; model.sections.len()];
    for section in circuit.sections() {
        let actual = section.range.len();
        match model.expected_for(&section.name) {
            Some(expected) => {
                let base = section.name.strip_suffix('†').unwrap_or(&section.name);
                if let Some(idx) = model.sections.iter().position(|s| s.name == base) {
                    seen[idx] = true;
                }
                if actual != expected {
                    diagnostics.push(Diagnostic::error(
                        "resource-gate-count",
                        Span {
                            gate: Some(section.range.start),
                            qubit: None,
                            section: Some(section.name.clone()),
                        },
                        format!(
                            "section `{}` has {actual} gates, closed form predicts {expected}",
                            section.name
                        ),
                    ));
                }
            }
            None => diagnostics.push(Diagnostic::warning(
                "resource-unknown-section",
                Span {
                    gate: Some(section.range.start),
                    qubit: None,
                    section: Some(section.name.clone()),
                },
                format!("section `{}` has no closed-form budget", section.name),
            )),
        }
    }
    for (idx, budget) in model.sections.iter().enumerate() {
        if !seen[idx] {
            diagnostics.push(Diagnostic::error(
                "resource-missing-section",
                Span {
                    gate: None,
                    qubit: None,
                    section: Some(budget.name.clone()),
                },
                format!(
                    "section `{}` ({} gates expected) is missing from the circuit",
                    budget.name, budget.gates
                ),
            ));
        }
    }
    diagnostics
}

/// Circuit depth under ASAP (as-soon-as-possible) scheduling: gates on
/// disjoint qubits share a layer; a gate lands one layer after the
/// deepest qubit it touches. This is the standard depth measure for the
/// paper's `O(…)` depth discussion and is reported (not budgeted) in the
/// [`crate::report::AnalysisReport`].
pub fn circuit_depth(circuit: &Circuit) -> usize {
    let mut qubit_depth = vec![0usize; circuit.width()];
    let mut depth = 0;
    for gate in circuit.gates() {
        let layer = gate
            .qubits()
            .iter()
            .map(|&q| qubit_depth[q])
            .max()
            .unwrap_or(0)
            + 1;
        for q in gate.qubits() {
            qubit_depth[q] = layer;
        }
        depth = depth.max(layer);
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_qsim::Gate;

    #[test]
    fn counter_width_matches_arith() {
        for (max, w) in [(0, 1), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4)] {
            assert_eq!(counter_width(max), w);
        }
    }

    #[test]
    fn fig1_model_matches_layout_accounting() {
        // Fig. 1: n = 6, complement has 8 edges, max complement degree 4.
        // Degree sequence of the complement: v3 has degree 4, others fill
        // to sum 16. (Exact sequence from qmkp-graph's fig-1 test.)
        let cdegs = [2, 3, 2, 4, 2, 3];
        let model = qtkp_oracle_model(&cdegs, 2, 4);
        // Same arithmetic as the layout width test:
        // 6 + 8 + 18 + 3 + 6 + 1 + 3 + 3 + 1 + 1 + 9 + 9 = 68.
        assert_eq!(model.width, 68);
        assert_eq!(model.sections[0].gates, 8);
        assert_eq!(model.sections[1].gates, 2 * 8 * 3);
        // k-1 = 1 → ones = 1; 6·(33+1)+1 = 205.
        assert_eq!(model.sections[2].gates, 1 + 6 * 34 + 1);
        // 6·3 + ones(4)=1 + 33 + 1 = 53.
        assert_eq!(model.sections[3].gates, 18 + 1 + 33 + 1);
    }

    #[test]
    fn audit_flags_width_and_count_drift() {
        let model = ResourceModel {
            width: 3,
            sections: vec![SectionBudget {
                name: "s".into(),
                gates: 2,
            }],
        };
        let mut c = Circuit::new(3);
        c.begin_section("s");
        c.push_unchecked(Gate::X(0));
        c.push_unchecked(Gate::X(1));
        c.end_section();
        assert!(audit(&c, &model).is_empty());

        // One gate too few.
        let mut short = Circuit::new(3);
        short.begin_section("s");
        short.push_unchecked(Gate::X(0));
        short.end_section();
        let diags = audit(&short, &model);
        assert!(diags.iter().any(|d| d.code == "resource-gate-count"));

        // Wrong width.
        let diags = audit(&Circuit::new(4), &model);
        assert!(diags.iter().any(|d| d.code == "resource-width"));
        assert!(diags.iter().any(|d| d.code == "resource-missing-section"));
    }

    #[test]
    fn dagger_sections_audit_against_forward_budget() {
        let model = ResourceModel {
            width: 2,
            sections: vec![SectionBudget {
                name: "s".into(),
                gates: 1,
            }],
        };
        let mut c = Circuit::new(2);
        c.begin_section("s");
        c.push_unchecked(Gate::cnot(0, 1));
        c.end_section();
        let mut full = c.clone();
        full.extend(&c.inverse()).unwrap();
        assert!(audit(&full, &model).is_empty());
    }

    #[test]
    fn unknown_section_is_a_warning() {
        let model = ResourceModel {
            width: 1,
            sections: vec![],
        };
        let mut c = Circuit::new(1);
        c.begin_section("mystery");
        c.push_unchecked(Gate::X(0));
        c.end_section();
        let diags = audit(&c, &model);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "resource-unknown-section");
    }

    #[test]
    fn depth_is_asap_layering() {
        let mut c = Circuit::new(4);
        c.push_unchecked(Gate::X(0));
        c.push_unchecked(Gate::X(1)); // parallel with the first
        c.push_unchecked(Gate::cnot(0, 1)); // layer 2
        c.push_unchecked(Gate::X(3)); // layer 1 (disjoint)
        assert_eq!(circuit_depth(&c), 2);
        assert_eq!(circuit_depth(&Circuit::new(2)), 0);
    }
}
