//! Quickstart: find a maximum k-plex three ways — classically, with the
//! gate-based quantum algorithm (qMKP), and with the annealing pipeline
//! (qaMKP).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qmkp::annealer::{sqa_qubo, SqaConfig};
use qmkp::classical::max_kplex_bnb;
use qmkp::core::{qmkp as run_qmkp, QmkpConfig};
use qmkp::graph::gen::paper_fig1_graph;
use qmkp::qubo::{MkpQubo, MkpQuboParams};

fn main() {
    // The 6-vertex example graph from Figure 1 of the paper.
    let g = paper_fig1_graph();
    let k = 2;
    println!("graph: {g:?}");

    // 1. Classical exact branch & bound.
    let classical = max_kplex_bnb(&g, k);
    println!("classical BnB : {classical:?} (size {})", classical.len());

    // 2. Gate-based quantum search (Grover, simulated exactly).
    let quantum = run_qmkp(&g, k, &QmkpConfig::default());
    println!(
        "qMKP          : {:?} (size {}, {} qubits, {} binary-search probes, error prob {:.2e})",
        quantum.best,
        quantum.best.len(),
        quantum.qubits,
        quantum.calls.len(),
        quantum.error_probability,
    );

    // 3. Annealing: QUBO formulation + simulated quantum annealing.
    let mq = MkpQubo::new(&g, MkpQuboParams { k, r: 2.0 });
    let out = sqa_qubo(&mq.model, &SqaConfig::from_anneal_time(5.0, 100));
    let bits = out
        .best
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .fold(0u128, |acc, (i, _)| acc | (1 << i));
    let annealed = mq.decode_repaired(bits);
    println!(
        "qaMKP (SQA)   : {annealed:?} (size {}, energy {}, {} binary variables)",
        annealed.len(),
        out.best_energy,
        mq.num_vars(),
    );

    assert_eq!(classical.len(), quantum.best.len());
    assert!(qmkp::graph::is_kplex(&g, quantum.best, k));
    println!(
        "\nall three agree: the maximum {k}-plex has {} vertices",
        classical.len()
    );
}
