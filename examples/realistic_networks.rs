//! k-plex mining on realistic network topologies.
//!
//! The paper motivates k-plexes with real-world graphs: heavy-tailed
//! degree distributions (social hubs) and high clustering. This example
//! generates both classic families — Barabási-Albert (preferential
//! attachment) and Watts-Strogatz (small world) — characterizes them,
//! and compares clique vs k-plex mining plus the annealing pipeline on
//! them.
//!
//! ```sh
//! cargo run --release --example realistic_networks
//! ```

use qmkp::annealer::{temper_qubo, TemperingConfig};
use qmkp::classical::{max_kplex_bs, max_kplex_bs_seeded};
use qmkp::graph::gen::{barabasi_albert, watts_strogatz};
use qmkp::graph::reduce::greedy_lower_bound;
use qmkp::graph::stats::{average_clustering, degree_histogram, diameter, triangle_count};
use qmkp::graph::Graph;
use qmkp::qubo::{MkpQubo, MkpQuboParams};

fn analyze(name: &str, g: &Graph) {
    println!("\n=== {name}: n = {}, m = {} ===", g.n(), g.m());
    println!("  max degree        : {}", g.max_degree());
    println!("  degree histogram  : {:?}", degree_histogram(g));
    println!("  triangles         : {}", triangle_count(g));
    println!("  avg clustering    : {:.3}", average_clustering(g));
    println!("  diameter          : {:?}", diameter(g));

    for k in 1..=3 {
        let (plex, stats) = max_kplex_bs(g, k);
        println!(
            "  max {k}-plex        : size {} ({} branch nodes)",
            plex.len(),
            stats.nodes
        );
    }

    // Annealing route on the same instance (k = 2).
    let mq = MkpQubo::new(g, MkpQuboParams { k: 2, r: 2.0 });
    let out = temper_qubo(&mq.model, &TemperingConfig::default());
    let bits = out
        .best
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .fold(0u128, |acc, (i, _)| acc | (1 << i));
    let plex = mq.decode_polished(bits);
    let (exact, _) = max_kplex_bs_seeded(g, 2, greedy_lower_bound(g, 2));
    println!(
        "  annealed 2-plex   : size {} (exact optimum {}, {} QUBO vars)",
        plex.len(),
        exact.len(),
        mq.num_vars()
    );
}

fn main() {
    let ba = barabasi_albert(28, 3, 11).expect("valid parameters");
    analyze("Barabási-Albert (hub-dominated)", &ba);

    let ws = watts_strogatz(28, 3, 0.15, 11).expect("valid parameters");
    analyze("Watts-Strogatz (small world)", &ws);

    println!("\nHubs make BA k-plexes grow with k much faster than WS ones —");
    println!("the relaxation pays off exactly where real networks are noisy.");
}
