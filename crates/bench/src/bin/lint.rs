//! Workspace lint harness: `lint source` scans hot-path crates for
//! forbidden panic-family calls; `lint oracles` statically verifies the
//! experiment oracle configurations with `qmkp-lint` and can archive the
//! machine-readable reports as JSON.
//!
//! Both subcommands exit non-zero on any finding, so CI runs them as
//! gates:
//!
//! ```text
//! cargo run -p qmkp-bench --bin lint -- source
//! cargo run -p qmkp-bench --bin lint -- oracles --json analysis.json
//! ```

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use qmkp_core::Oracle;
use qmkp_graph::gen::{gnm, paper_fig1_graph};
use qmkp_graph::Graph;

/// Panic-family constructs that must not appear in hot-path library code
/// (tests excepted): library callers get `Result`s, not aborts.
const NEEDLES: &[&str] = &[
    ".unwrap(",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "dbg!(",
];

/// Known occurrences: `(path suffix, needle, exact count, justification)`.
/// The scan fails on *any* deviation — a new occurrence is a violation, a
/// removed one makes the entry stale and must be deleted here.
const ALLOWLIST: &[(&str, &str, usize, &str)] = &[
    (
        "qsim/src/circuit.rs",
        ".expect(",
        1,
        "push_unchecked's documented panic contract",
    ),
    (
        "core/src/counting.rs",
        ".expect(",
        4,
        "invariants established by construction (widths, ≤20-qubit cap)",
    ),
    (
        "core/src/grover.rs",
        ".expect(",
        2,
        "compile cannot fail for validated oracles; one shot yields one outcome",
    ),
    (
        "core/src/oracle.rs",
        ".expect(",
        1,
        "U_check and U_check† share one layout width by construction",
    ),
    (
        "core/src/oracle.rs",
        "unreachable!(",
        1,
        "section names are fixed by the builder four lines above",
    ),
    (
        "core/src/qmkp.rs",
        ".unwrap(",
        1,
        "Graph::new(0) is infallible for the empty-graph sentinel",
    ),
    (
        "core/src/qtkp.rs",
        "unreachable!(",
        1,
        "variant excluded by the preceding match arm",
    ),
];

/// Directories scanned by `lint source`, relative to the workspace root.
const SCAN_DIRS: &[&str] = &["crates/qsim/src", "crates/core/src"];

fn workspace_root() -> &'static Path {
    // bench crate lives at <root>/crates/bench.
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Counts forbidden-needle occurrences in one file, skipping `//`-style
/// comment lines and everything from the first `#[cfg(test)]` on (test
/// modules sit at the bottom of every file in this workspace).
fn scan_file(text: &str) -> Vec<(usize, &'static str, String)> {
    let mut hits = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let line = raw.trim_start();
        if line.starts_with("//") {
            continue;
        }
        for &needle in NEEDLES {
            if line.contains(needle) {
                hits.push((lineno + 1, needle, line.to_string()));
            }
        }
    }
    hits
}

fn run_source_lint() -> ExitCode {
    let root = workspace_root();
    let mut counts: Vec<(String, &'static str, usize)> = Vec::new();
    let mut violations = Vec::new();

    for dir in SCAN_DIRS {
        let mut paths: Vec<_> = fs::read_dir(root.join(dir))
            .unwrap_or_else(|e| panic!("cannot read {dir}: {e}"))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        paths.sort();
        for path in paths {
            let text = fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            let rel = path
                .strip_prefix(root.join("crates"))
                .unwrap_or(&path)
                .display()
                .to_string();
            for (lineno, needle, line) in scan_file(&text) {
                counts
                    .iter_mut()
                    .find(|(f, n, _)| *f == rel && *n == needle)
                    .map(|(_, _, c)| *c += 1)
                    .unwrap_or_else(|| counts.push((rel.clone(), needle, 1)));
                let allowed = ALLOWLIST
                    .iter()
                    .any(|&(suffix, n, _, _)| rel.ends_with(suffix) && n == needle);
                if !allowed {
                    violations.push(format!("{rel}:{lineno}: forbidden `{needle}` — {line}"));
                }
            }
        }
    }

    // Exact-count enforcement: each allowlist entry must match reality.
    let mut stale = Vec::new();
    for &(suffix, needle, expected, reason) in ALLOWLIST {
        let found = counts
            .iter()
            .find(|(f, n, _)| f.ends_with(suffix) && *n == needle)
            .map_or(0, |(_, _, c)| *c);
        if found != expected {
            stale.push(format!(
                "allowlist entry ({suffix}, {needle}) expects {expected} occurrence(s), \
                 found {found} — update the entry ({reason})"
            ));
        }
    }

    for v in &violations {
        println!("error[source-lint]: {v}");
    }
    for s in &stale {
        println!("error[stale-allowlist]: {s}");
    }
    if violations.is_empty() && stale.is_empty() {
        println!(
            "source lint clean: {} file group(s) audited, allowlist exact",
            SCAN_DIRS.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The oracle configurations the experiment drivers use; kept small
/// enough that every ancilla proof is exhaustive.
fn oracle_instances() -> Vec<(String, Graph, usize, usize)> {
    let mut out = Vec::new();
    for (k, t) in [(1, 2), (2, 3), (2, 4), (3, 4)] {
        out.push((format!("fig1-k{k}-t{t}"), paper_fig1_graph(), k, t));
    }
    out.push((
        "gnm-7-9-k2-t3".into(),
        gnm(7, 9, 0).expect("valid g(n,m)"),
        2,
        3,
    ));
    out.push((
        "gnm-9-15-k3-t5".into(),
        gnm(9, 15, 1).expect("valid g(n,m)"),
        3,
        5,
    ));
    out
}

fn run_oracle_lint(json_path: Option<&str>) -> ExitCode {
    let mut failed = false;
    let mut json_items = Vec::new();
    for (name, g, k, t) in oracle_instances() {
        let report = Oracle::new(&g, k, t).lint_report();
        let (errors, warnings, notes) = report.counts();
        println!(
            "{name}: {} qubits, {} gates, depth {} — {errors} error(s), \
             {warnings} warning(s), {notes} note(s) [{}]",
            report.width,
            report.gates,
            report.depth,
            if report.exhaustive {
                "exhaustive"
            } else {
                "sampled"
            }
        );
        if report.has_errors() {
            print!("{}", report.render());
            failed = true;
        }
        json_items.push(report.to_json());
    }
    if let Some(path) = json_path {
        let body = format!("[{}]\n", json_items.join(","));
        fs::write(path, &body).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {} report(s) to {path}", json_items.len());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("source") => run_source_lint(),
        Some("oracles") => {
            let json_path = match args.get(1).map(String::as_str) {
                Some("--json") => match args.get(2) {
                    Some(p) => Some(p.as_str()),
                    None => {
                        println!("usage: lint oracles [--json <path>]");
                        return ExitCode::FAILURE;
                    }
                },
                Some(other) => {
                    println!("unknown flag `{other}`; usage: lint oracles [--json <path>]");
                    return ExitCode::FAILURE;
                }
                None => None,
            };
            run_oracle_lint(json_path)
        }
        _ => {
            println!("usage: lint <source | oracles [--json <path>]>");
            ExitCode::FAILURE
        }
    }
}
