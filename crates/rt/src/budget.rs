//! Execution budgets: wall-clock deadline, byte ceiling, op ceiling.

use std::time::Duration;

/// What a single solve is allowed to cost. `None` in any dimension means
/// unlimited; [`Budget::default`] is fully unlimited, so existing call
/// sites pay nothing.
///
/// Environment knobs (read by [`Budget::from_env`], mirroring the
/// `QMKP_OBS_*` conventions):
///
/// | Variable              | Effect                                   |
/// |-----------------------|------------------------------------------|
/// | `QMKP_RT_DEADLINE_MS` | Wall-clock deadline in milliseconds.     |
/// | `QMKP_RT_MAX_BYTES`   | Ceiling on simulator state memory.       |
/// | `QMKP_RT_MAX_OPS`     | Ceiling on compiled kernel ops executed. |
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline measured from [`crate::RtContext`] creation.
    pub deadline: Option<Duration>,
    /// Ceiling on bytes of simulator state admitted by preflight checks.
    pub max_bytes: Option<usize>,
    /// Ceiling on compiled kernel ops charged by the simulator passes.
    pub max_ops: Option<u64>,
}

impl Budget {
    /// No limits in any dimension.
    pub const fn unlimited() -> Self {
        Budget {
            deadline: None,
            max_bytes: None,
            max_ops: None,
        }
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the byte ceiling.
    #[must_use]
    pub fn with_max_bytes(mut self, bytes: usize) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// Sets the kernel-op ceiling.
    #[must_use]
    pub fn with_max_ops(mut self, ops: u64) -> Self {
        self.max_ops = Some(ops);
        self
    }

    /// Whether no dimension is limited.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_bytes.is_none() && self.max_ops.is_none()
    }

    /// Reads `QMKP_RT_DEADLINE_MS`, `QMKP_RT_MAX_BYTES` and
    /// `QMKP_RT_MAX_OPS`. A malformed value warns once on stderr (naming
    /// the variable and the value, like `Session::from_env` does for
    /// `QMKP_OBS*`) and leaves that dimension unlimited.
    pub fn from_env() -> Self {
        Budget {
            deadline: env_u64("QMKP_RT_DEADLINE_MS").map(Duration::from_millis),
            max_bytes: env_u64("QMKP_RT_MAX_BYTES").map(|v| v as usize),
            max_ops: env_u64("QMKP_RT_MAX_OPS"),
        }
    }
}

/// Parses an environment variable as a positive integer; malformed or
/// zero values warn on stderr and are treated as unset (unlimited).
fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<u64>() {
        Ok(0) => {
            eprintln!("warning: {var}={raw} is zero; treating the budget dimension as unlimited");
            None
        }
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: {var}={raw} is not a non-negative integer; ignoring it");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        assert!(Budget::default().is_unlimited());
        assert!(Budget::unlimited().is_unlimited());
    }

    #[test]
    fn builders_set_each_dimension() {
        let b = Budget::unlimited()
            .with_deadline(Duration::from_millis(5))
            .with_max_bytes(1 << 20)
            .with_max_ops(1000);
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
        assert_eq!(b.max_bytes, Some(1 << 20));
        assert_eq!(b.max_ops, Some(1000));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn env_parsing_accepts_integers_and_rejects_garbage() {
        // Process-global env: use distinct variable names per assertion to
        // stay independent of test ordering.
        std::env::set_var("QMKP_RT_TEST_OK", "1500");
        assert_eq!(env_u64("QMKP_RT_TEST_OK"), Some(1500));
        std::env::set_var("QMKP_RT_TEST_BAD", "soon");
        assert_eq!(env_u64("QMKP_RT_TEST_BAD"), None);
        std::env::set_var("QMKP_RT_TEST_ZERO", "0");
        assert_eq!(env_u64("QMKP_RT_TEST_ZERO"), None);
        assert_eq!(env_u64("QMKP_RT_TEST_UNSET"), None);
    }
}
