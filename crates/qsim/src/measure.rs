//! Projective measurement with state collapse.
//!
//! The sampling in [`crate::state::QuantumState::sample`] draws outcomes
//! without disturbing the state (fine for end-of-circuit statistics, the
//! common case in this workspace). This module provides genuine
//! *mid-circuit measurement*: measure one qubit, collapse the state to
//! the observed branch, renormalize — needed e.g. for repeat-until-success
//! protocols and useful for testing simulator semantics.

use crate::complex::Complex;
use crate::state::{DenseState, QuantumState, SparseState, PRUNE_EPS};
use rand::Rng;

/// Measures qubit `q`, collapses the state, and returns the outcome bit.
///
/// # Panics
/// Panics if the state has (numerically) zero norm on both branches —
/// i.e. it was not normalized to begin with.
pub fn measure_and_collapse<R: Rng>(state: &mut SparseState, q: usize, rng: &mut R) -> bool {
    let mask = 1u128 << q;
    let p1: f64 = state
        .nonzero()
        .iter()
        .filter(|(b, _)| b & mask != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum();
    let total: f64 = state.norm_sqr();
    assert!(total > 1e-12, "state must be normalized");
    let outcome = rng.gen::<f64>() * total < p1;
    collapse(state, q, outcome);
    outcome
}

/// Forces qubit `q` into the given classical value and renormalizes
/// (post-selection).
///
/// # Panics
/// Panics if the selected branch has zero probability.
pub fn collapse(state: &mut SparseState, q: usize, value: bool) {
    let mask = 1u128 << q;
    let keep: Vec<(u128, Complex)> = state
        .nonzero()
        .into_iter()
        .filter(|(b, _)| (b & mask != 0) == value)
        .collect();
    let norm: f64 = keep.iter().map(|(_, a)| a.norm_sqr()).sum();
    assert!(norm > 1e-12, "collapsing onto a zero-probability branch");
    let scale = 1.0 / norm.sqrt();
    let width = state.width();
    *state = SparseState::zero(width);
    // Rebuild: zero() leaves amplitude 1 at |0…0⟩; clear it first by
    // collapsing onto the kept set.
    state.set_amplitudes(keep.into_iter().map(|(b, a)| (b, a.scale(scale))));
}

/// Dense-backend variant of [`measure_and_collapse`].
pub fn measure_and_collapse_dense<R: Rng>(state: &mut DenseState, q: usize, rng: &mut R) -> bool {
    let mask = 1u128 << q;
    let p1: f64 = state
        .nonzero()
        .iter()
        .filter(|(b, _)| b & mask != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum();
    let total = state.norm_sqr();
    assert!(total > 1e-12, "state must be normalized");
    let outcome = rng.gen::<f64>() * total < p1;
    let norm = if outcome { p1 } else { total - p1 };
    assert!(
        norm > PRUNE_EPS,
        "collapsing onto a zero-probability branch"
    );
    let scale = 1.0 / norm.sqrt();
    state.project(|b| (b & mask != 0) == outcome, scale);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measuring_a_basis_state_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = SparseState::from_basis(3, 0b101);
        assert!(measure_and_collapse(&mut s, 0, &mut rng));
        assert!(!measure_and_collapse(&mut s, 1, &mut rng));
        assert!(measure_and_collapse(&mut s, 2, &mut rng));
        assert!((s.probability(0b101) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measuring_bell_pair_collapses_both_qubits() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ones = 0;
        for _ in 0..200 {
            let mut s = SparseState::zero(2);
            s.apply(&Gate::H(0));
            s.apply(&Gate::cnot(0, 1));
            let m0 = measure_and_collapse(&mut s, 0, &mut rng);
            // The partner qubit is now perfectly correlated.
            let m1 = measure_and_collapse(&mut s, 1, &mut rng);
            assert_eq!(m0, m1, "Bell pair must correlate");
            ones += usize::from(m0);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
        }
        assert!((50..150).contains(&ones), "roughly fair coin: {ones}");
    }

    #[test]
    fn post_selection_renormalizes() {
        let mut s = SparseState::zero(1);
        s.apply(&Gate::Ry(0, 1.0)); // uneven superposition
        collapse(&mut s, 0, true);
        assert!((s.probability(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn impossible_post_selection_panics() {
        let mut s = SparseState::from_basis(1, 0);
        collapse(&mut s, 0, true);
    }

    #[test]
    fn dense_collapse_matches_sparse() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let mut d = DenseState::zero(2).unwrap();
        let mut s = SparseState::zero(2);
        for st in [&mut d as &mut dyn ApplyHelper, &mut s] {
            st.apply_h(0);
            st.apply_cnot(0, 1);
        }
        let md = measure_and_collapse_dense(&mut d, 0, &mut rng1);
        let ms = measure_and_collapse(&mut s, 0, &mut rng2);
        assert_eq!(md, ms, "same seed, same outcome");
        for b in 0..4u128 {
            assert!((d.probability(b) - s.probability(b)).abs() < 1e-9);
        }
    }

    /// Minimal helper so the test can drive both backends uniformly.
    trait ApplyHelper {
        fn apply_h(&mut self, q: usize);
        fn apply_cnot(&mut self, c: usize, t: usize);
    }
    impl<T: QuantumState> ApplyHelper for T {
        fn apply_h(&mut self, q: usize) {
            self.apply(&Gate::H(q));
        }
        fn apply_cnot(&mut self, c: usize, t: usize) {
            self.apply(&Gate::cnot(c, t));
        }
    }
}
