//! Figure 10 — objective cost vs runtime for qaMKP / SA / MILP / haMKP on
//! D_{30,300} (k = 3, R = 2, Δt = 1 µs).

use qmkp_bench::cost_runtime::{default_runtimes, print_cost_runtime, run_cost_vs_runtime};
use qmkp_bench::{quick_mode, Provenance};

fn main() {
    let mut prov = Provenance::start("fig10_cost_runtime");
    let (n, m) = if quick_mode() { (15, 70) } else { (30, 300) };
    prov.config("n", n);
    prov.config("m", m);
    prov.config("k", 3);
    prov.config("r", 2.0);
    prov.config("dt_us", 1.0);
    prov.config("seed", 23);
    let cr = run_cost_vs_runtime(n, m, 3, 2.0, 1.0, &default_runtimes(quick_mode()), 23);
    print_cost_runtime(
        &format!("Fig. 10 — cost vs runtime on D_{{{n},{m}}} (k = 3, R = 2, Δt = 1 µs)"),
        &cr,
    );
    prov.finish();
}
