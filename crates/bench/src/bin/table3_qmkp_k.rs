//! Table III — qMKP on G_{10,37} for k = 2, 3, 4, 5.

use qmkp_bench::{error_prob, print_table, quick_mode, us, Provenance};
use qmkp_classical::max_kplex_bs;
use qmkp_core::{qmkp, QmkpConfig};
use qmkp_graph::gen::{paper_gate_dataset, GATE_DATASET_K};
use std::time::Instant;

fn main() {
    let mut prov = Provenance::start("table3_qmkp_k");
    let (n, m) = if quick_mode() {
        (8, 22)
    } else {
        GATE_DATASET_K
    };
    prov.config("n", n);
    prov.config("m", m);
    let g = paper_gate_dataset(n, m);
    let ks: &[usize] = if quick_mode() { &[2, 3] } else { &[2, 3, 4, 5] };
    for &k in ks {
        prov.config("k", k);
    }
    let mut rows = Vec::new();
    for &k in ks {
        let t0 = Instant::now();
        let (bs_best, _) = max_kplex_bs(&g, k);
        let bs_time = t0.elapsed();
        let out = qmkp(&g, k, &QmkpConfig::default());
        assert_eq!(out.best.len(), bs_best.len(), "exact solvers must agree");
        let (first, first_time) = out.first_result.expect("always finds some plex");
        prov.outcome(format!("best_size[k={k}]"), out.best.len());
        rows.push(vec![
            k.to_string(),
            out.best.len().to_string(),
            us(bs_time),
            us(out.total_elapsed),
            us(first_time),
            first.len().to_string(),
            error_prob(out.error_probability),
            out.total_iterations.to_string(),
        ]);
    }
    print_table(
        &format!("Table III — qMKP on G_{{{n},{m}}} across k"),
        &[
            "k",
            "max k-plex",
            "BS (µs)",
            "qMKP (µs)",
            "first-result (µs)",
            "first size",
            "error prob",
            "oracle calls",
        ],
        &rows,
    );
    prov.finish();
}
