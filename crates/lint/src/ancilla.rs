//! Ancilla-lifecycle (uncompute) verification.
//!
//! The qTKP oracle's `U_check` / flip / `U_check†` sandwich is built from
//! X / CNOT / Toffoli / CᵏNOT only, so it is a *permutation of basis
//! states* — its action is fully determined by classical bit-set
//! evaluation, no amplitudes required. This pass exploits that: it models
//! the circuit as a permutation over `u128` bit-sets and proves that
//! every ancilla qubit is restored to `|0⟩` (and every free input qubit
//! preserved) at the phase-kickback boundary, for *every* reachable
//! input. A dirty ancilla here is exactly the failure mode that silently
//! corrupts amplitude amplification in the maximal-clique Grover
//! literature (Chang et al., arXiv:1803.11356; Sanyal, arXiv:2004.10596):
//! the diffusion step then interferes branches that should be identical
//! outside the search register.
//!
//! When the free register is too wide to enumerate (`2^|free|` inputs),
//! the pass falls back to deterministic pseudo-random sampling and
//! *downgrades* its verdict: a clean run is then reported with a
//! `Warning` that the proof is probabilistic, never silently presented
//! as exhaustive.

use crate::diagnostic::{Diagnostic, Severity, Span};
use qmkp_qsim::{Circuit, Gate};

/// What the ancilla pass should assume and check.
#[derive(Debug, Clone)]
pub struct AncillaSpec {
    /// Qubits holding the superposed search register (the oracle's vertex
    /// qubits). They take every value; the pass proves they are preserved.
    pub free: Vec<usize>,
    /// Qubits allowed to differ from their input at the end (the oracle
    /// qubit `|O⟩`, or a comparator's result bit). Every other non-free
    /// qubit starts `|0⟩` and must end `|0⟩`.
    pub dirty_ok: Vec<usize>,
    /// Enumerate exhaustively while `|free| ≤ max_exhaustive_bits`;
    /// beyond that, sample. Default 16 (65 536 inputs).
    pub max_exhaustive_bits: usize,
    /// Number of sampled inputs in the fallback mode. Default 512.
    pub samples: usize,
}

impl AncillaSpec {
    /// A spec with the default enumeration limits.
    pub fn new(free: Vec<usize>, dirty_ok: Vec<usize>) -> Self {
        AncillaSpec {
            free,
            dirty_ok,
            max_exhaustive_bits: 16,
            samples: 512,
        }
    }
}

/// The outcome of one ancilla-lifecycle verification.
#[derive(Debug, Clone)]
pub struct AncillaReport {
    /// Findings, if any. Clean circuits produce none (exhaustive mode) or
    /// a single sampling warning (fallback mode).
    pub diagnostics: Vec<Diagnostic>,
    /// Whether every free-register assignment was checked.
    pub exhaustive: bool,
    /// How many inputs were evaluated.
    pub inputs_checked: u64,
    /// `live_gates[i]` is true when gate `i` fired (flipped its target)
    /// on at least one checked input. Only meaningful when the analysis
    /// ran to completion; used by the dead-gate note and by mutation
    /// tests to seed only detectable mutations.
    pub live_gates: Vec<bool>,
}

impl AncillaReport {
    /// Whether the pass proved (or, in sampling mode, failed to refute)
    /// cleanliness.
    pub fn is_clean(&self) -> bool {
        !crate::diagnostic::has_errors(&self.diagnostics)
    }
}

/// The section (if any) a gate index falls into, for span enrichment.
fn section_of(circuit: &Circuit, gate: usize) -> Option<String> {
    circuit
        .sections()
        .iter()
        .find(|s| s.range.contains(&gate))
        .map(|s| s.name.clone())
}

/// Splitmix64: deterministic sampling without a rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Statically verifies ancilla cleanliness: for every (enumerated or
/// sampled) assignment of the free register, with all other qubits
/// starting `|0⟩`, the circuit must restore every qubit outside
/// `spec.dirty_ok` to its input value. Violations are reported with the
/// gate index that last flipped the offending qubit — the gate whose
/// uncompute partner is missing or wrong.
///
/// Non-permutation gates (`H`, `Z`, `Phase`, `Ry`, `CPhase`, `MCZ`) make
/// the property undecidable by bit-set evaluation and are reported as
/// errors: the paper's `U_check` is classical-reversible by construction,
/// so their presence is itself a structural defect.
pub fn verify_ancillas(circuit: &Circuit, spec: &AncillaSpec) -> AncillaReport {
    let mut diagnostics = Vec::new();
    let width = circuit.width();

    // Spec sanity: free/dirty_ok qubits must exist and be distinct.
    let mut seen = vec![false; width.max(1)];
    for &q in spec.free.iter().chain(&spec.dirty_ok) {
        if q >= width {
            diagnostics.push(Diagnostic::error(
                "spec-qubit-out-of-range",
                Span::at_qubit(q),
                format!("spec references qubit {q}, but the circuit has width {width}"),
            ));
        } else if std::mem::replace(&mut seen[q], true) {
            diagnostics.push(Diagnostic::error(
                "spec-qubit-duplicated",
                Span::at_qubit(q),
                format!("qubit {q} appears more than once across `free`/`dirty_ok`"),
            ));
        }
    }
    // Permutation-only precondition.
    for (i, gate) in circuit.gates().iter().enumerate() {
        if !gate.is_permutation() {
            diagnostics.push(Diagnostic::error(
                "non-permutation-gate",
                Span {
                    gate: Some(i),
                    qubit: gate.qubits().first().copied(),
                    section: section_of(circuit, i),
                },
                format!(
                    "ancilla verification requires a classical-reversible circuit, \
                     but gate #{i} is {gate:?}"
                ),
            ));
        }
    }
    if crate::diagnostic::has_errors(&diagnostics) {
        return AncillaReport {
            diagnostics,
            exhaustive: false,
            inputs_checked: 0,
            live_gates: vec![false; circuit.len()],
        };
    }

    let free_bits = spec.free.len();
    let exhaustive = free_bits <= spec.max_exhaustive_bits && free_bits < 63;
    let total: u64 = if exhaustive {
        1u64 << free_bits
    } else {
        spec.samples as u64
    };

    let dirty_ok_mask: u128 = spec.dirty_ok.iter().map(|&q| 1u128 << q).sum();
    let mut live = vec![false; circuit.len()];
    let mut last_flip: Vec<Option<usize>> = vec![None; width.max(1)];
    let mut rng_state = 0x71c9_a57c_8d2b_f00du64;
    let mut inputs_checked = 0u64;

    let free_mask: u128 = if free_bits >= 128 {
        u128::MAX
    } else {
        (1u128 << free_bits) - 1
    };
    for step in 0..total {
        let assignment: u128 = if exhaustive {
            u128::from(step)
        } else {
            let lo = splitmix64(&mut rng_state);
            let hi = splitmix64(&mut rng_state);
            (u128::from(lo) | (u128::from(hi) << 64)) & free_mask
        };
        // Scatter assignment bits onto the free qubits.
        let mut input: u128 = 0;
        for (bit, &q) in spec.free.iter().enumerate() {
            if (assignment >> bit) & 1 == 1 {
                input |= 1u128 << q;
            }
        }

        // Evaluate the permutation, tracking which gate last flipped each
        // qubit so a violation can be attributed.
        let mut state = input;
        for (i, gate) in circuit.gates().iter().enumerate() {
            match gate {
                Gate::X(q) => {
                    state ^= 1u128 << q;
                    live[i] = true;
                    last_flip[*q] = Some(i);
                }
                Gate::Mcx { controls, target }
                    if controls.iter().all(|c| c.satisfied_by(state)) =>
                {
                    state ^= 1u128 << target;
                    live[i] = true;
                    last_flip[*target] = Some(i);
                }
                // Unreachable: non-permutation gates error out above.
                _ => {}
            }
        }
        inputs_checked += 1;

        let dirt = (state ^ input) & !dirty_ok_mask;
        if dirt != 0 {
            for (q, &gate) in last_flip.iter().enumerate() {
                if (dirt >> q) & 1 == 1 {
                    let (role, code) = if spec.free.contains(&q) {
                        ("free (search-register) qubit", "free-qubit-corrupted")
                    } else {
                        ("ancilla qubit", "ancilla-dirty")
                    };
                    diagnostics.push(Diagnostic::error(
                        code,
                        Span {
                            gate,
                            qubit: Some(q),
                            section: gate.and_then(|g| section_of(circuit, g)),
                        },
                        format!(
                            "{role} {q} is not restored on free-register input \
                             {assignment:#b}; last flipped by gate {}",
                            gate.map_or_else(|| "<none>".to_string(), |g| format!("#{g}")),
                        ),
                    ));
                }
            }
            // One violating input pins down the defect; stop enumerating.
            break;
        }
    }

    if !exhaustive {
        diagnostics.push(Diagnostic::warning(
            "sampled-proof-only",
            Span::default(),
            format!(
                "free register has {free_bits} qubits (> {} exhaustive limit); \
                 cleanliness checked on {inputs_checked} sampled inputs only",
                spec.max_exhaustive_bits
            ),
        ));
    } else if !crate::diagnostic::has_errors(&diagnostics) && inputs_checked == total {
        // Dead gates are only decidable after a full enumeration. Cap the
        // individual notes (constant registers routinely strand whole
        // comparator cascades) — `live_gates` always has the full picture.
        const MAX_DEAD_GATE_NOTES: usize = 8;
        let dead: Vec<usize> = live
            .iter()
            .enumerate()
            .filter(|(_, l)| !**l)
            .map(|(i, _)| i)
            .collect();
        for &i in dead.iter().take(MAX_DEAD_GATE_NOTES) {
            diagnostics.push(Diagnostic::note(
                "dead-gate",
                Span {
                    gate: Some(i),
                    qubit: circuit.gates()[i].qubits().last().copied(),
                    section: section_of(circuit, i),
                },
                format!(
                    "gate #{i} never fires on any reachable input \
                     (controls unsatisfiable given the |0⟩-initialized ancillas)"
                ),
            ));
        }
        if dead.len() > MAX_DEAD_GATE_NOTES {
            diagnostics.push(Diagnostic::note(
                "dead-gate",
                Span::default(),
                format!(
                    "…and {} more gates that never fire ({} dead of {} total)",
                    dead.len() - MAX_DEAD_GATE_NOTES,
                    dead.len(),
                    circuit.len()
                ),
            ));
        }
    }

    AncillaReport {
        diagnostics,
        exhaustive,
        inputs_checked,
        live_gates: live,
    }
}

/// Convenience predicate: `true` when the pass finds no error-severity
/// diagnostics (sampling warnings and dead-gate notes are allowed).
pub fn is_clean(circuit: &Circuit, spec: &AncillaSpec) -> bool {
    verify_ancillas(circuit, spec)
        .diagnostics
        .iter()
        .all(|d| d.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_qsim::QubitAllocator;

    /// cnot(0→1), ccnot(0,1→2), then the mirror: fully clean.
    fn clean_sandwich() -> (Circuit, AncillaSpec) {
        let mut c = Circuit::new(4);
        c.push_unchecked(Gate::cnot(0, 1));
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.push_unchecked(Gate::ccnot(1, 2, 3)); // "flip" onto result 3
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.push_unchecked(Gate::cnot(0, 1));
        (c, AncillaSpec::new(vec![0], vec![3]))
    }

    #[test]
    fn clean_circuit_passes() {
        let (c, spec) = clean_sandwich();
        let report = verify_ancillas(&c, &spec);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.exhaustive);
        assert_eq!(report.inputs_checked, 2);
    }

    #[test]
    fn dropped_uncompute_gate_is_flagged_with_its_index() {
        let (c, spec) = clean_sandwich();
        // Drop gate #4 (the final cnot uncompute).
        let mut mutated = Circuit::new(c.width());
        for (i, g) in c.gates().iter().enumerate() {
            if i != 4 {
                mutated.push_unchecked(g.clone());
            }
        }
        let report = verify_ancillas(&mutated, &spec);
        assert!(!report.is_clean());
        let dirty: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "ancilla-dirty")
            .collect();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].span.qubit, Some(1));
        // Qubit 1 was last flipped by the (former) compute cnot, gate #0.
        assert_eq!(dirty[0].span.gate, Some(0));
    }

    #[test]
    fn corrupted_free_qubit_uses_its_own_code() {
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::X(0));
        let report = verify_ancillas(&c, &AncillaSpec::new(vec![0], vec![]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "free-qubit-corrupted"));
    }

    #[test]
    fn non_permutation_gate_is_an_error() {
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::H(0));
        let report = verify_ancillas(&c, &AncillaSpec::new(vec![0], vec![]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "non-permutation-gate"));
        assert_eq!(report.inputs_checked, 0);
    }

    #[test]
    fn dead_gates_are_noted() {
        let mut alloc = QubitAllocator::new();
        let v = alloc.alloc_one("v");
        let anc = alloc.alloc_one("anc");
        let t = alloc.alloc_one("t");
        let mut c = Circuit::new(alloc.width());
        // anc starts |0⟩ and nothing sets it, so this gate can never fire.
        c.push_unchecked(Gate::ccnot(v, anc, t));
        let report = verify_ancillas(&c, &AncillaSpec::new(vec![v], vec![]));
        assert!(report.is_clean());
        let dead: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "dead-gate")
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].span.gate, Some(0));
        assert!(!report.live_gates[0]);
    }

    #[test]
    fn bad_spec_is_rejected() {
        let c = Circuit::new(2);
        let report = verify_ancillas(&c, &AncillaSpec::new(vec![5], vec![]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "spec-qubit-out-of-range"));
        let report = verify_ancillas(&c, &AncillaSpec::new(vec![0], vec![0]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "spec-qubit-duplicated"));
    }

    #[test]
    fn wide_free_register_falls_back_to_sampling() {
        let mut spec = AncillaSpec::new((0..10).collect(), vec![]);
        spec.max_exhaustive_bits = 4;
        spec.samples = 32;
        let c = Circuit::new(10);
        let report = verify_ancillas(&c, &spec);
        assert!(!report.exhaustive);
        assert_eq!(report.inputs_checked, 32);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "sampled-proof-only" && d.severity == Severity::Warning));
    }

    #[test]
    fn is_clean_helper_tolerates_notes() {
        let (c, spec) = clean_sandwich();
        assert!(is_clean(&c, &spec));
    }
}
