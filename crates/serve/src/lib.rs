//! # qmkp-serve — multi-tenant solve service
//!
//! Serves the degradation ladder (`qmkp::solve`) to many concurrent
//! tenants:
//!
//! * [`SolveService`] — bounded admission queues (a full lane rejects
//!   immediately, it never blocks the submitter), a worker pool sharded
//!   by the preflight cost model (`dense` / `sparse` / `classical`
//!   lanes so cheap classical requests never queue behind statevector
//!   runs), and per-request budgets + cooperative cancellation: every
//!   request runs under its own [`qmkp_rt::RtContext`], so cancelling
//!   one ticket touches nothing else.
//! * [`OracleCache`] — a shared compiled-oracle cache keyed by
//!   `(Graph::digest(), k, t)` with LRU eviction under a byte ceiling
//!   and single-flight compilation: N concurrent requests for the same
//!   instance compile once, the rest wait for the artifact.
//!
//! The service is deliberately runtime-free: `std::thread` workers and
//! `std::sync::mpsc` channels, no async executor.
//!
//! ```
//! use qmkp::graph::gen::paper_fig1_graph;
//! use qmkp_serve::{ServiceConfig, SolveRequest, SolveService};
//!
//! let service = SolveService::new(ServiceConfig::default());
//! let ticket = service
//!     .submit(SolveRequest::new(paper_fig1_graph(), 2))
//!     .unwrap();
//! let response = ticket.wait();
//! let outcome = response.outcome.unwrap();
//! assert!(qmkp::graph::is_kplex(
//!     &paper_fig1_graph(),
//!     outcome.best,
//!     2
//! ));
//! ```

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]

pub mod cache;
pub mod service;

pub use cache::{CacheStats, OracleCache};
pub use service::{
    ServeError, ServiceConfig, SolveRequest, SolveResponse, SolveService, SolveTicket,
};
