//! Decomposition of multi-controlled gates into {X, CNOT, Toffoli}.
//!
//! The oracle builders freely use CᵏNOT with many mixed-polarity controls;
//! real gate sets stop at the Toffoli. This module lowers a circuit to at
//! most 2 controls per gate using the standard clean-ancilla ladder:
//!
//! ```text
//! C^k X(c1..ck → t)  =  T(c1,c2 → a1) T(a1,c3 → a2) … T(a_{k-2},ck → t) …uncompute…
//! ```
//!
//! which costs `2(k−1) − 1 = 2k − 3` Toffolis for `k ≥ 2` — exactly the
//! [`crate::gate::Gate::elementary_cost`] model, now *checked* rather than
//! assumed. Negative controls are handled by conjugating with X gates;
//! multi-controlled Z by conjugating the target with H.

use crate::circuit::Circuit;
use crate::gate::{Control, Gate};
use crate::register::QubitAllocator;

/// Result of lowering a circuit: the decomposed circuit (over a wider
/// qubit set — ancillas are appended after the original qubits) plus the
/// number of ancillas added.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The decomposed circuit; qubits `0..original_width` are unchanged.
    pub circuit: Circuit,
    /// Number of clean ancillas appended.
    pub ancillas: usize,
}

/// Lowers every gate to ≤ 2 controls. `H`, `Z`, `Phase`, `Ry`, `CPhase`
/// and already-small gates pass through untouched.
pub fn lower_to_toffoli(circuit: &Circuit) -> Lowered {
    // Worst-case ancilla need: max controls − 2.
    let max_controls = circuit
        .gates()
        .iter()
        .map(Gate::control_count)
        .max()
        .unwrap_or(0);
    let ancillas = max_controls.saturating_sub(2);
    let mut alloc = QubitAllocator::new();
    let _orig = alloc.alloc("orig", circuit.width());
    let anc = alloc.alloc("anc", ancillas);
    let mut out = Circuit::new(alloc.width());

    for gate in circuit.gates() {
        match gate {
            Gate::Mcx { controls, target } if controls.len() > 2 => {
                emit_mcx(&mut out, controls, *target, &anc.qubits());
            }
            Gate::Mcz { controls, target } if controls.len() > 2 => {
                // MCZ = H(t) · MCX · H(t).
                out.push_unchecked(Gate::H(*target));
                emit_mcx(&mut out, controls, *target, &anc.qubits());
                out.push_unchecked(Gate::H(*target));
            }
            other => out.push_unchecked(other.clone()),
        }
    }
    Lowered {
        circuit: out,
        ancillas,
    }
}

/// Emits the ladder decomposition of one CᵏNOT (k ≥ 3) with positive-
/// control normalization.
fn emit_mcx(out: &mut Circuit, controls: &[Control], target: usize, anc: &[usize]) {
    // Normalize negative controls by conjugating with X.
    let flips: Vec<usize> = controls
        .iter()
        .filter(|c| !c.positive)
        .map(|c| c.qubit)
        .collect();
    for &q in &flips {
        out.push_unchecked(Gate::X(q));
    }
    let ctrls: Vec<usize> = controls.iter().map(|c| c.qubit).collect();
    let k = ctrls.len();
    debug_assert!(k >= 3);
    debug_assert!(anc.len() >= k - 2, "need {} ancillas", k - 2);

    // Compute ladder: anc[0] = c0 ∧ c1; anc[i] = anc[i-1] ∧ c_{i+1}.
    out.push_unchecked(Gate::ccnot(ctrls[0], ctrls[1], anc[0]));
    for i in 1..k - 2 {
        out.push_unchecked(Gate::ccnot(anc[i - 1], ctrls[i + 1], anc[i]));
    }
    // Apply: target ^= anc[k-3] ∧ c_{k-1}.
    out.push_unchecked(Gate::ccnot(anc[k - 3], ctrls[k - 1], target));
    // Uncompute the ladder.
    for i in (1..k - 2).rev() {
        out.push_unchecked(Gate::ccnot(anc[i - 1], ctrls[i + 1], anc[i]));
    }
    out.push_unchecked(Gate::ccnot(ctrls[0], ctrls[1], anc[0]));

    for &q in &flips {
        out.push_unchecked(Gate::X(q));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{DenseState, QuantumState};

    /// Checks that the lowered circuit computes the same map on the
    /// original qubits (ancillas start and end at |0⟩).
    fn assert_equivalent(circ: &Circuit) {
        let lowered = lower_to_toffoli(circ);
        for g in lowered.circuit.gates() {
            assert!(g.control_count() <= 2, "gate not lowered: {g:?}");
        }
        let w = circ.width();
        for basis in 0..(1u128 << w) {
            let mut reference = DenseState::from_basis(w, basis).unwrap();
            reference.run(circ).unwrap();
            let mut low = DenseState::from_basis(lowered.circuit.width(), basis).unwrap();
            low.run(&lowered.circuit).unwrap();
            for b in 0..(1u128 << w) {
                let got = low.amplitude(b); // ancillas restored ⇒ high bits zero
                let want = reference.amplitude(b);
                assert!(
                    (got - want).norm() < 1e-9,
                    "basis {basis:b} → {b:b}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn lowers_c3not_and_c4not() {
        for k in [3usize, 4, 5] {
            let mut c = Circuit::new(k + 1);
            c.push_unchecked(Gate::mcx_pos(0..k, k));
            assert_equivalent(&c);
        }
    }

    #[test]
    fn toffoli_count_matches_elementary_cost() {
        for k in [3usize, 4, 5, 6] {
            let mut c = Circuit::new(k + 1);
            let gate = Gate::mcx_pos(0..k, k);
            let expected = gate.elementary_cost();
            c.push_unchecked(gate);
            let lowered = lower_to_toffoli(&c);
            let toffolis = lowered
                .circuit
                .gates()
                .iter()
                .filter(|g| g.control_count() == 2)
                .count();
            assert_eq!(toffolis, expected, "C^{k}NOT");
        }
    }

    #[test]
    fn handles_negative_controls() {
        let mut c = Circuit::new(4);
        c.push_unchecked(Gate::Mcx {
            controls: vec![Control::pos(0), Control::neg(1), Control::pos(2)],
            target: 3,
        });
        assert_equivalent(&c);
    }

    #[test]
    fn lowers_mcz_via_hadamard_conjugation() {
        let mut c = Circuit::new(4);
        c.push_unchecked(Gate::Mcz {
            controls: vec![Control::pos(0), Control::pos(1), Control::neg(2)],
            target: 3,
        });
        assert_equivalent(&c);
    }

    #[test]
    fn small_gates_pass_through() {
        let mut c = Circuit::new(3);
        c.push_unchecked(Gate::H(0));
        c.push_unchecked(Gate::cnot(0, 1));
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.push_unchecked(Gate::Phase(2, 0.3));
        let lowered = lower_to_toffoli(&c);
        assert_eq!(lowered.ancillas, 0);
        assert_eq!(lowered.circuit.len(), 4);
    }

    #[test]
    fn mixed_circuit_with_interleaved_hadamards() {
        let mut c = Circuit::new(5);
        c.push_unchecked(Gate::H(0));
        c.push_unchecked(Gate::mcx_pos([0, 1, 2, 3], 4));
        c.push_unchecked(Gate::H(0));
        assert_equivalent(&c);
    }
}
