//! Validates a `qmkp-obs` JSONL trace file: every line must parse as a
//! JSON object and carry the keys its event type requires. Used by CI
//! after running a traced example.
//!
//! Usage: `obs_validate <trace.jsonl> [required-span-prefix ...]`
//!
//! Extra arguments are span-name prefixes that must appear in at least
//! one `span_start` event (e.g. `qsim.compile core.grover.iteration`),
//! letting CI assert that the trace actually covers the pipeline.
//!
//! Exits 0 when the file is valid, 1 otherwise, printing one line per
//! problem to stderr.

use qmkp_obs::json;

/// The keys every event of a given type must carry (beyond `type` and
/// `thread`, which are universal).
fn required_keys(kind: &str) -> Option<&'static [&'static str]> {
    match kind {
        "span_start" => Some(&["id", "parent", "name"]),
        "span_end" => Some(&["id", "name", "ns"]),
        "counter" => Some(&["name", "delta"]),
        "gauge" => Some(&["name", "value"]),
        "duration" => Some(&["name", "ns"]),
        "message" => Some(&["text"]),
        _ => None,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        eprintln!("usage: obs_validate <trace.jsonl> [required-span-prefix ...]");
        std::process::exit(2);
    });
    let want_prefixes: Vec<String> = args.collect();
    let body = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        eprintln!("obs_validate: cannot read {path}: {err}");
        std::process::exit(2);
    });

    let mut problems = 0usize;
    let mut lines = 0usize;
    let mut seen_spans: Vec<String> = Vec::new();
    let mut by_kind: std::collections::BTreeMap<String, usize> = Default::default();
    for (lineno, line) in body.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let mut complain = |msg: String| {
            eprintln!("obs_validate: {path}:{lineno}: {msg}");
            problems += 1;
        };
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(err) => {
                complain(format!("not valid JSON: {err}"));
                continue;
            }
        };
        let Some(kind) = v.get("type").and_then(|t| t.as_str()) else {
            complain("missing string key \"type\"".to_string());
            continue;
        };
        if v.get("thread").and_then(json::Json::as_f64).is_none() {
            complain("missing numeric key \"thread\"".to_string());
        }
        let Some(keys) = required_keys(kind) else {
            complain(format!("unknown event type {kind:?}"));
            continue;
        };
        for key in keys {
            if v.get(key).is_none() {
                complain(format!("event type {kind:?} missing key {key:?}"));
            }
        }
        *by_kind.entry(kind.to_string()).or_default() += 1;
        if kind == "span_start" {
            if let Some(name) = v.get("name").and_then(|n| n.as_str()) {
                seen_spans.push(name.to_string());
            }
        }
    }

    if lines == 0 {
        eprintln!("obs_validate: {path}: empty trace");
        problems += 1;
    }
    for prefix in &want_prefixes {
        if !seen_spans.iter().any(|s| s.starts_with(prefix.as_str())) {
            eprintln!("obs_validate: {path}: no span_start with prefix {prefix:?}");
            problems += 1;
        }
    }

    let kinds: Vec<String> = by_kind.iter().map(|(k, n)| format!("{k}={n}")).collect();
    println!(
        "obs_validate: {path}: {lines} events ({}), {} distinct spans, {problems} problem(s)",
        kinds.join(" "),
        seen_spans.len(),
    );
    std::process::exit(if problems == 0 { 0 } else { 1 });
}
