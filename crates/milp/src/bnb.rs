//! Anytime exact 0/1 minimization of a QUBO by branch & bound.
//!
//! This is the solver behind the "MILP" curves of the paper's Figures 9-10
//! (our Gurobi substitute): depth-first search over the binary variables
//! with
//!
//! * an impact-based variable order (largest total coefficient magnitude
//!   first),
//! * an incremental **roof-dual-style lower bound**: partial energy plus
//!   `Σ min(0, adjusted linear)` over unfixed variables plus
//!   `Σ min(0, q_ij)` over unfixed pairs — every term independently at its
//!   best,
//! * greedy-first value ordering (dives to a good incumbent quickly),
//! * an **incumbent trajectory** (`(elapsed, energy)` points) and a wall
//!   clock budget, giving the anytime cost-vs-runtime behaviour the
//!   evaluation plots.

use qmkp_qubo::QuboModel;
use std::time::{Duration, Instant};

/// Configuration for [`minimize_qubo`].
#[derive(Debug, Clone)]
pub struct BnbConfig {
    /// Wall-clock budget; the incumbent at expiry is returned.
    pub time_limit: Duration,
    /// Node budget (safety valve for tests).
    pub node_limit: u64,
    /// Run first-order persistency presolve (safe variable fixing) before
    /// branching. Fixed variables disappear from the search space; their
    /// values are re-inserted in the reported assignment.
    pub presolve: bool,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            time_limit: Duration::from_secs(10),
            node_limit: u64::MAX,
            presolve: true,
        }
    }
}

/// One point of the incumbent trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Time since the solve started.
    pub elapsed: Duration,
    /// Incumbent energy at that time.
    pub energy: f64,
}

/// Result of [`minimize_qubo`].
#[derive(Debug, Clone)]
pub struct BnbOutcome {
    /// Best assignment found (original variable order).
    pub best: Vec<bool>,
    /// Its energy.
    pub best_energy: f64,
    /// Whether the search space was exhausted (true = proven optimal).
    pub proven_optimal: bool,
    /// Nodes expanded.
    pub nodes: u64,
    /// Incumbent improvements over time.
    pub trace: Vec<TracePoint>,
}

struct Search {
    order: Vec<usize>,
    /// Adjacency in *ordered* index space: `adj[d] = [(other_depth, q)]`.
    adj: Vec<Vec<(usize, f64)>>,
    /// `suffix_pair_min[d] = Σ min(0, q_ij)` over pairs with both depths ≥ d.
    suffix_pair_min: Vec<f64>,
    start: Instant,
    config: BnbConfig,
    nodes: u64,
    best_energy: f64,
    best: Vec<bool>, // ordered space
    trace: Vec<TracePoint>,
    out_of_budget: bool,
}

impl Search {
    fn record_incumbent(&mut self, assignment: &[bool], energy: f64) {
        if energy < self.best_energy - 1e-12 {
            self.best_energy = energy;
            self.best = assignment.to_vec();
            self.trace.push(TracePoint {
                elapsed: self.start.elapsed(),
                energy,
            });
        }
    }

    fn budget_exceeded(&mut self) -> bool {
        if self.out_of_budget {
            return true;
        }
        if self.nodes >= self.config.node_limit
            || (self.nodes.is_multiple_of(256) && self.start.elapsed() >= self.config.time_limit)
        {
            self.out_of_budget = true;
        }
        self.out_of_budget
    }

    /// DFS from depth `d` with `partial` = energy of fixed prefix,
    /// `adj_linear[i]` = linear coeff of ordered var `i` adjusted by fixed
    /// ones, `assignment[..d]` fixed.
    fn dfs(&mut self, d: usize, partial: f64, adj_linear: &mut [f64], assignment: &mut [bool]) {
        self.nodes += 1;
        if self.budget_exceeded() {
            return;
        }
        let n = self.order.len();
        if d == n {
            self.record_incumbent(assignment, partial);
            return;
        }
        // Lower bound on the completion.
        let mut bound = partial + self.suffix_pair_min[d];
        for &c in &adj_linear[d..] {
            if c < 0.0 {
                bound += c;
            }
        }
        if bound >= self.best_energy - 1e-12 {
            return;
        }
        // Value order: greedy-first.
        let first_one = adj_linear[d] < 0.0;
        for &value in &[first_one, !first_one] {
            assignment[d] = value;
            if value {
                let delta = adj_linear[d];
                // Fix to 1: fold this var's couplings into later linears.
                let updates: Vec<(usize, f64)> = self.adj[d]
                    .iter()
                    .filter(|&&(j, _)| j > d)
                    .map(|&(j, q)| (j, q))
                    .collect();
                for &(j, q) in &updates {
                    adj_linear[j] += q;
                }
                self.dfs(d + 1, partial + delta, adj_linear, assignment);
                for &(j, q) in &updates {
                    adj_linear[j] -= q;
                }
            } else {
                self.dfs(d + 1, partial, adj_linear, assignment);
            }
            if self.out_of_budget {
                return;
            }
        }
    }
}

/// Minimizes a QUBO exactly (within budget) by branch & bound.
pub fn minimize_qubo(q: &QuboModel, config: &BnbConfig) -> BnbOutcome {
    if config.presolve {
        let pre = qmkp_qubo::presolve(q);
        if pre.num_fixed() > 0 {
            let reduced = qmkp_qubo::reduce_model(q, &pre);
            let inner = BnbConfig {
                presolve: false,
                ..config.clone()
            };
            let out = minimize_qubo(&reduced, &inner);
            let best = pre.expand(&out.best);
            debug_assert!((q.energy(&best) - out.best_energy).abs() < 1e-6);
            return BnbOutcome { best, ..out };
        }
    }
    let n = q.num_vars();
    let start = Instant::now();

    // Impact order: descending |c_i| + Σ_j |q_ij|.
    let nbr = q.neighbor_lists();
    let mut order: Vec<usize> = (0..n).collect();
    let impact: Vec<f64> = (0..n)
        .map(|i| q.linear(i).abs() + nbr[i].iter().map(|&(_, c)| c.abs()).sum::<f64>())
        .collect();
    order.sort_by(|&a, &b| impact[b].partial_cmp(&impact[a]).expect("finite impacts"));
    let mut pos = vec![0usize; n];
    for (d, &v) in order.iter().enumerate() {
        pos[v] = d;
    }

    // Reindex model data into ordered (depth) space.
    let linear: Vec<f64> = order.iter().map(|&v| q.linear(v)).collect();
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for ((u, v), c) in q.interactions() {
        adj[pos[u]].push((pos[v], c));
        adj[pos[v]].push((pos[u], c));
    }
    let mut suffix_pair_min = vec![0.0f64; n + 1];
    for d in (0..n).rev() {
        let own: f64 = adj[d]
            .iter()
            .filter(|&&(j, _)| j > d)
            .map(|&(_, c)| c.min(0.0))
            .sum();
        suffix_pair_min[d] = suffix_pair_min[d + 1] + own;
    }

    // Greedy initial incumbent: single-flip descent from all-zeros.
    let mut greedy = vec![false; n];
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n {
            if q.flip_delta(&greedy, i) < -1e-12 {
                greedy[i] = !greedy[i];
                improved = true;
            }
        }
    }
    let greedy_ordered: Vec<bool> = order.iter().map(|&v| greedy[v]).collect();
    let greedy_energy = q.energy(&greedy);

    let mut search = Search {
        order: order.clone(),
        adj,
        suffix_pair_min,
        start,
        config: config.clone(),
        nodes: 0,
        best_energy: f64::INFINITY,
        best: vec![false; n],
        trace: Vec::new(),
        out_of_budget: false,
    };
    search.record_incumbent(&greedy_ordered, greedy_energy);

    let mut adj_linear = linear;
    let mut assignment = vec![false; n];
    search.dfs(0, q.offset(), &mut adj_linear, &mut assignment);

    // Map the best assignment back to original variable order.
    let mut best = vec![false; n];
    for (d, &v) in order.iter().enumerate() {
        best[v] = search.best[d];
    }
    debug_assert!((q.energy(&best) - search.best_energy).abs() < 1e-6);
    BnbOutcome {
        best,
        best_energy: search.best_energy,
        proven_optimal: !search.out_of_budget,
        nodes: search.nodes,
        trace: search.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_qubo::{MkpQubo, MkpQuboParams};

    fn random_qubo(n: usize, seed: u64) -> QuboModel {
        // Cheap deterministic pseudo-random model without pulling in rand.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 100.0 - 10.0
        };
        let mut q = QuboModel::new(n);
        for i in 0..n {
            q.add_linear(i, next());
            for j in (i + 1)..n {
                if next() > 2.0 {
                    q.add_quadratic(i, j, next());
                }
            }
        }
        q
    }

    #[test]
    fn matches_brute_force_on_random_models() {
        for seed in 0..10 {
            let q = random_qubo(10, seed);
            let out = minimize_qubo(&q, &BnbConfig::default());
            let (_, brute) = q.brute_force_min();
            assert!(out.proven_optimal);
            assert!(
                (out.best_energy - brute).abs() < 1e-9,
                "seed={seed}: {} vs {}",
                out.best_energy,
                brute
            );
            assert!((q.energy(&out.best) - out.best_energy).abs() < 1e-9);
        }
    }

    #[test]
    fn solves_the_mkp_qubo_exactly() {
        let g = qmkp_graph::gen::paper_fig1_graph();
        let q = MkpQubo::new(&g, MkpQuboParams { k: 2, r: 2.0 });
        let out = minimize_qubo(&q.model, &BnbConfig::default());
        assert!(out.proven_optimal);
        assert!(
            (out.best_energy + 4.0).abs() < 1e-9,
            "max 2-plex has size 4"
        );
        let bits = out
            .best
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .fold(0u128, |acc, (i, _)| acc | (1 << i));
        let p = q.decode(bits);
        assert!(qmkp_graph::is_kplex(&g, p, 2));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn trace_is_monotonically_improving() {
        let q = random_qubo(14, 3);
        let out = minimize_qubo(&q, &BnbConfig::default());
        assert!(!out.trace.is_empty());
        for w in out.trace.windows(2) {
            assert!(w[1].energy < w[0].energy);
            assert!(w[1].elapsed >= w[0].elapsed);
        }
        assert_eq!(out.trace.last().unwrap().energy, out.best_energy);
    }

    #[test]
    fn respects_node_budget_and_stays_anytime() {
        let q = random_qubo(20, 4);
        let out = minimize_qubo(
            &q,
            &BnbConfig {
                node_limit: 50,
                time_limit: Duration::from_secs(60),
                presolve: false,
            },
        );
        assert!(!out.proven_optimal);
        assert!(out.nodes <= 51);
        // The greedy incumbent is always available.
        assert!(out.best_energy < f64::INFINITY);
        assert!((q.energy(&out.best) - out.best_energy).abs() < 1e-9);
    }

    #[test]
    fn bound_prunes_aggressively_on_separable_models() {
        // Pure linear model: bound equals truth at the root, so the greedy
        // dive immediately matches and everything else prunes.
        let mut q = QuboModel::new(16);
        for i in 0..16 {
            q.add_linear(i, if i % 2 == 0 { -1.0 } else { 1.0 });
        }
        let out = minimize_qubo(&q, &BnbConfig::default());
        assert!(out.proven_optimal);
        assert_eq!(out.best_energy, -8.0);
        assert!(
            out.nodes < 2048,
            "separable model should prune, used {} nodes",
            out.nodes
        );
    }

    #[test]
    fn empty_model() {
        let q = QuboModel::new(0);
        let out = minimize_qubo(&q, &BnbConfig::default());
        assert_eq!(out.best_energy, 0.0);
        assert!(out.proven_optimal);
    }

    #[test]
    fn presolve_path_matches_plain_search() {
        for seed in 0..6 {
            let q = random_qubo(11, seed + 100);
            let plain = minimize_qubo(
                &q,
                &BnbConfig {
                    presolve: false,
                    ..BnbConfig::default()
                },
            );
            let pre = minimize_qubo(&q, &BnbConfig::default());
            assert!(
                (plain.best_energy - pre.best_energy).abs() < 1e-9,
                "seed={seed}"
            );
            assert!((q.energy(&pre.best) - pre.best_energy).abs() < 1e-9);
        }
    }

    #[test]
    fn presolve_shrinks_mkp_search() {
        let g = qmkp_graph::gen::paper_anneal_dataset(10, 40);
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
        let plain = minimize_qubo(
            &mq.model,
            &BnbConfig {
                presolve: false,
                ..BnbConfig::default()
            },
        );
        let pre = minimize_qubo(&mq.model, &BnbConfig::default());
        assert!((plain.best_energy - pre.best_energy).abs() < 1e-9);
        assert!(pre.nodes <= plain.nodes, "presolve must not grow the tree");
    }
}
