//! [`RtContext`]: a budget and a cancellation token bound to one solve.

use crate::{Budget, CancelToken, RtError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// How many charged ops may pass between wall-clock deadline reads.
/// Token polls and op accounting are relaxed atomics (a few ns); an
/// `Instant::now()` is the expensive part of a check, so the hot
/// kernel-chunk path amortizes it.
const DEADLINE_CHECK_MASK: u64 = 63;

/// Default wall-clock spacing between `rt.*` headroom samples emitted to
/// the *event stream* (`QMKP_RT_SAMPLE_MS` overrides). The metrics
/// registry already receives headroom gauges on every amortized deadline
/// read; the event-stream series is what `chrome_trace`/`flamegraph`
/// render, so it is paced on wall-clock time instead.
const SAMPLE_INTERVAL_MS_DEFAULT: u64 = 100;

fn sample_interval_from_env() -> u64 {
    match std::env::var("QMKP_RT_SAMPLE_MS") {
        Ok(raw) => raw.trim().parse().unwrap_or(SAMPLE_INTERVAL_MS_DEFAULT),
        Err(_) => SAMPLE_INTERVAL_MS_DEFAULT,
    }
}

/// The runtime context threaded through every budgeted pass. Cheap to
/// consult: the unlimited, uncancelled fast path is a handful of relaxed
/// atomic operations per kernel chunk.
#[derive(Debug)]
pub struct RtContext {
    budget: Budget,
    token: CancelToken,
    start: Instant,
    ops: AtomicU64,
    cancel_reported: AtomicBool,
    sample_interval_ms: u64,
    last_sample_ms: AtomicU64,
}

impl Default for RtContext {
    fn default() -> Self {
        RtContext::unlimited()
    }
}

impl RtContext {
    /// Binds a budget and a token; the deadline clock starts now.
    pub fn new(budget: Budget, token: CancelToken) -> Self {
        RtContext {
            budget,
            token,
            start: Instant::now(),
            ops: AtomicU64::new(0),
            cancel_reported: AtomicBool::new(false),
            sample_interval_ms: sample_interval_from_env(),
            last_sample_ms: AtomicU64::new(0),
        }
    }

    /// Overrides the wall-clock spacing between event-stream headroom
    /// samples (default 100 ms, env `QMKP_RT_SAMPLE_MS`). Zero emits a
    /// sample on every check — useful in tests.
    pub fn with_sample_interval(mut self, interval: std::time::Duration) -> Self {
        self.sample_interval_ms = interval.as_millis() as u64;
        self
    }

    /// No limits, never cancelled (other than via an external clone of a
    /// token passed to [`RtContext::new`]). The context legacy entry
    /// points delegate to.
    pub fn unlimited() -> Self {
        RtContext::new(Budget::unlimited(), CancelToken::new())
    }

    /// A context with the given budget and a fresh token.
    pub fn with_budget(budget: Budget) -> Self {
        RtContext::new(budget, CancelToken::new())
    }

    /// The budget this context enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The cancellation token this context polls.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Kernel ops charged so far.
    pub fn ops_used(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Time elapsed since the context was created.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Polls cancellation and the wall-clock deadline. Called at
    /// iteration/sweep granularity by the drivers.
    pub fn check(&self) -> Result<(), RtError> {
        if self.token.is_cancelled() {
            return Err(self.cancelled());
        }
        self.maybe_sample_headroom();
        self.check_deadline()
    }

    /// Charges `n` kernel ops and polls every limit; the deadline read is
    /// amortized over `DEADLINE_CHECK_MASK + 1` charges. Called at
    /// kernel-chunk granularity by the simulator passes.
    pub fn charge_ops(&self, n: u64) -> Result<(), RtError> {
        let used = self.ops.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(limit) = self.budget.max_ops {
            if used > limit {
                return Err(RtError::OpBudget { used, limit });
            }
        }
        if self.token.is_cancelled() {
            return Err(self.cancelled());
        }
        if used & DEADLINE_CHECK_MASK == 0 {
            self.maybe_sample_headroom();
            self.check_deadline()?;
            // Same amortization window as the deadline read: headroom
            // gauges cost nothing on the hot path between windows.
            if let Some(limit) = self.budget.max_ops {
                qmkp_obs::metrics::gauge("rt.ops_headroom", &[], limit.saturating_sub(used) as f64);
            }
        }
        Ok(())
    }

    /// Emits `rt.*` headroom gauges into the *event stream* as a periodic
    /// wall-clock series (at most one sample per `sample_interval_ms`),
    /// so deadline/op-budget pressure during long annealing runs is
    /// visible as a counter track in `chrome_trace` and in folded
    /// flamegraph output. Registry gauges are unaffected: they keep their
    /// own amortization in [`RtContext::charge_ops`]/`check_deadline`.
    fn maybe_sample_headroom(&self) {
        if self.budget.deadline.is_none() && self.budget.max_ops.is_none() {
            return;
        }
        if !qmkp_obs::enabled() {
            return;
        }
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_sample_ms.load(Ordering::Relaxed);
        let due = last == 0 || now_ms.saturating_sub(last) >= self.sample_interval_ms;
        if !due {
            return;
        }
        // One thread wins the sample window; losers skip quietly.
        if self
            .last_sample_ms
            .compare_exchange(last, now_ms.max(1), Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        if let Some(deadline) = self.budget.deadline {
            let headroom = deadline.saturating_sub(self.start.elapsed());
            qmkp_obs::gauge("rt.deadline_headroom_ms", headroom.as_secs_f64() * 1e3);
        }
        if let Some(limit) = self.budget.max_ops {
            let used = self.ops.load(Ordering::Relaxed);
            qmkp_obs::gauge("rt.ops_headroom", limit.saturating_sub(used) as f64);
        }
    }

    /// Preflight-admits an allocation (or a state of) `bytes` bytes
    /// against the byte ceiling. Rejections count as
    /// `rt.budget_rejections`.
    pub fn admit_bytes(&self, bytes: usize) -> Result<(), RtError> {
        if let Some(limit) = self.budget.max_bytes {
            if bytes > limit {
                qmkp_obs::counter("rt.budget_rejections", 1);
                return Err(RtError::MemoryBudget {
                    required: bytes,
                    limit,
                });
            }
        }
        Ok(())
    }

    fn check_deadline(&self) -> Result<(), RtError> {
        if let Some(deadline) = self.budget.deadline {
            let elapsed = self.start.elapsed();
            if elapsed > deadline {
                return Err(RtError::DeadlineExceeded {
                    elapsed_ms: elapsed.as_millis() as u64,
                    deadline_ms: deadline.as_millis() as u64,
                });
            }
            qmkp_obs::metrics::gauge(
                "rt.deadline_headroom_ms",
                &[],
                (deadline - elapsed).as_secs_f64() * 1e3,
            );
        }
        Ok(())
    }

    /// Builds the `Cancelled` error, reporting the `rt.cancellations`
    /// counter exactly once per context however many layers observe it.
    fn cancelled(&self) -> RtError {
        if !self.cancel_reported.swap(true, Ordering::Relaxed) {
            qmkp_obs::counter("rt.cancellations", 1);
        }
        RtError::Cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_context_admits_everything() {
        let ctx = RtContext::unlimited();
        assert_eq!(ctx.check(), Ok(()));
        assert_eq!(ctx.charge_ops(1 << 40), Ok(()));
        assert_eq!(ctx.admit_bytes(usize::MAX), Ok(()));
    }

    #[test]
    fn op_budget_trips_at_the_limit() {
        let ctx = RtContext::with_budget(Budget::unlimited().with_max_ops(10));
        assert_eq!(ctx.charge_ops(10), Ok(()));
        assert_eq!(
            ctx.charge_ops(1),
            Err(RtError::OpBudget {
                used: 11,
                limit: 10
            })
        );
        assert_eq!(ctx.ops_used(), 11);
    }

    #[test]
    fn byte_budget_rejects_oversized_states() {
        let ctx = RtContext::with_budget(Budget::unlimited().with_max_bytes(100));
        assert_eq!(ctx.admit_bytes(100), Ok(()));
        assert_eq!(
            ctx.admit_bytes(101),
            Err(RtError::MemoryBudget {
                required: 101,
                limit: 100
            })
        );
    }

    #[test]
    fn elapsed_deadline_surfaces_once_hit() {
        let ctx = RtContext::with_budget(Budget::unlimited().with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(ctx.check(), Err(RtError::DeadlineExceeded { .. })));
        // charge_ops amortizes the deadline read; by 64 charged ops it
        // must have been read at least once.
        let ctx = RtContext::with_budget(Budget::unlimited().with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        let mut tripped = false;
        for _ in 0..64 {
            if ctx.charge_ops(1).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(
            tripped,
            "deadline must surface within one amortization window"
        );
    }

    #[test]
    fn headroom_samples_reach_the_event_stream() {
        let collector = std::sync::Arc::new(qmkp_obs::Collector::for_current_thread());
        let _guard = qmkp_obs::attach(collector.clone());
        let ctx = RtContext::with_budget(
            Budget::unlimited()
                .with_deadline(Duration::from_secs(3600))
                .with_max_ops(1_000_000),
        )
        .with_sample_interval(Duration::ZERO);
        for _ in 0..3 {
            ctx.check().unwrap();
        }
        ctx.charge_ops(64).unwrap();
        let deadline_headroom = collector
            .last_gauge("rt.deadline_headroom_ms")
            .expect("deadline headroom sampled");
        assert!(deadline_headroom > 0.0 && deadline_headroom <= 3_600_000.0);
        let ops_headroom = collector
            .last_gauge("rt.ops_headroom")
            .expect("ops headroom sampled");
        assert!(ops_headroom <= 1_000_000.0);
    }

    #[test]
    fn unlimited_budget_emits_no_headroom_samples() {
        let collector = std::sync::Arc::new(qmkp_obs::Collector::for_current_thread());
        let _guard = qmkp_obs::attach(collector.clone());
        let ctx = RtContext::unlimited().with_sample_interval(Duration::ZERO);
        for _ in 0..3 {
            ctx.check().unwrap();
        }
        assert_eq!(collector.last_gauge("rt.deadline_headroom_ms"), None);
        assert_eq!(collector.last_gauge("rt.ops_headroom"), None);
    }

    #[test]
    fn cancellation_surfaces_via_check_and_charge() {
        let token = CancelToken::new();
        let ctx = RtContext::new(Budget::unlimited(), token.clone());
        assert_eq!(ctx.check(), Ok(()));
        token.cancel();
        assert_eq!(ctx.check(), Err(RtError::Cancelled));
        assert_eq!(ctx.charge_ops(1), Err(RtError::Cancelled));
    }
}
