//! Property: the observability layer and the driver's own `SectionTimes`
//! accounting cannot drift. Every `times.add(name, d)` in the Grover
//! driver is paired with a `core.grover.section.<name>` span carrying the
//! *same* `Duration`, so with a collector attached the span sum must equal
//! `SectionTimes::total()` exactly — not approximately.

use proptest::prelude::*;
use qmkp_core::{GroverDriver, Oracle, SectionTimes};
use qmkp_obs::Collector;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn section_spans_sum_to_section_times_total(
        n in 4usize..=6,
        extra_edges in 0usize..=4,
        k in 1usize..=2,
        iterations in 1usize..=3,
    ) {
        let m = (n - 1 + extra_edges).min(n * (n - 1) / 2);
        let g = qmkp_graph::gen::gnm(n, m, 7 * n as u64 + extra_edges as u64)
            .expect("valid G(n,m) parameters");
        let t = (k + 1).min(n);

        let collector = Arc::new(Collector::for_current_thread());
        let guard = qmkp_obs::attach(collector.clone());
        let mut driver = GroverDriver::new(Oracle::new(&g, k, t));
        driver.iterate_n(iterations);
        let times: SectionTimes = driver.times().clone();
        drop(guard);

        let span_sum = collector.span_total("core.grover.section.");
        prop_assert_eq!(
            span_sum,
            times.total(),
            "span sum {:?} != SectionTimes total {:?} (buckets {:?})",
            span_sum,
            times.total(),
            times.buckets()
        );

        // Sanity on structure: one iteration span per Grover iteration,
        // and every recorded bucket appears as a span at least once.
        let iteration_spans = collector
            .finished_spans()
            .iter()
            .filter(|(name, _)| name == "core.grover.iteration")
            .count();
        prop_assert_eq!(iteration_spans, iterations);
        for (bucket, &d) in times.buckets() {
            prop_assert_eq!(
                collector.span_total(&format!("core.grover.section.{bucket}")),
                d
            );
        }
    }
}
