//! A dense primal simplex solver.
//!
//! Solves `max cᵀx  s.t.  Ax ≤ b, x ≥ 0` with `b ≥ 0` (so the all-slack
//! basis is feasible and no phase-1 is needed — exactly the shape of the
//! McCormick relaxations in [`crate::linearize`] and of box-bounded LPs in
//! general). Bland's rule guarantees termination on degenerate problems.

/// An LP in the supported canonical form.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Objective coefficients `c` (maximized).
    pub objective: Vec<f64>,
    /// Constraint rows `(a, b)` meaning `a·x ≤ b`; every `b` must be ≥ 0.
    pub constraints: Vec<(Vec<f64>, f64)>,
}

/// Result of [`solve_lp`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal vertex: the primal solution and the objective value.
    Optimal {
        /// Optimal assignment of the structural variables.
        x: Vec<f64>,
        /// Optimal objective value.
        value: f64,
    },
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Solves the LP by primal simplex with Bland's anti-cycling rule.
///
/// # Panics
/// Panics if a right-hand side is negative, or a constraint row has the
/// wrong length.
pub fn solve_lp(p: &LpProblem) -> LpOutcome {
    let n = p.objective.len();
    let m = p.constraints.len();
    for (a, b) in &p.constraints {
        assert_eq!(a.len(), n, "constraint row length mismatch");
        assert!(*b >= -EPS, "canonical form requires b ≥ 0, got {b}");
    }

    // Tableau: m rows × (n structural + m slack + 1 rhs) columns, plus an
    // objective row (reduced costs) at index m.
    let cols = n + m + 1;
    let mut t = vec![vec![0.0f64; cols]; m + 1];
    for (i, (a, b)) in p.constraints.iter().enumerate() {
        t[i][..n].copy_from_slice(a);
        t[i][n + i] = 1.0;
        t[i][cols - 1] = b.max(0.0);
    }
    for (obj_cell, c) in t[m][..n].iter_mut().zip(&p.objective) {
        *obj_cell = -c; // minimize −cᵀx row convention
    }
    let mut basis: Vec<usize> = (n..n + m).collect();

    loop {
        // Entering column: Bland — the lowest index with a negative
        // reduced cost.
        let Some(enter) = (0..n + m).find(|&j| t[m][j] < -EPS) else {
            // Optimal: read off the solution.
            let mut x = vec![0.0; n];
            for (i, &b) in basis.iter().enumerate() {
                if b < n {
                    x[b] = t[i][cols - 1];
                }
            }
            let value = p
                .objective
                .iter()
                .zip(&x)
                .map(|(c, xi)| c * xi)
                .sum::<f64>();
            return LpOutcome::Optimal { x, value };
        };
        // Ratio test: Bland tie-break on the smallest basis variable.
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][cols - 1] / t[i][enter];
                match leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < lr - EPS || (ratio < lr + EPS && basis[i] < basis[li]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((pivot_row, _)) = leave else {
            return LpOutcome::Unbounded;
        };
        // Pivot.
        let pv = t[pivot_row][enter];
        for v in t[pivot_row].iter_mut() {
            *v /= pv;
        }
        let pivot = t[pivot_row].clone();
        for (i, row) in t.iter_mut().enumerate() {
            if i != pivot_row && row[enter].abs() > EPS {
                let f = row[enter];
                for (cell, pv) in row.iter_mut().zip(&pivot) {
                    *cell -= f * pv;
                }
            }
        }
        basis[pivot_row] = enter;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 2y  s.t.  x + y ≤ 4, x ≤ 2  →  x = 2, y = 2, value 10.
        let p = LpProblem {
            objective: vec![3.0, 2.0],
            constraints: vec![(vec![1.0, 1.0], 4.0), (vec![1.0, 0.0], 2.0)],
        };
        match solve_lp(&p) {
            LpOutcome::Optimal { x, value } => {
                assert_close(value, 10.0);
                assert_close(x[0], 2.0);
                assert_close(x[1], 2.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn detects_unboundedness() {
        // max x with only −x ≤ 1: unbounded above.
        let p = LpProblem {
            objective: vec![1.0],
            constraints: vec![(vec![-1.0], 1.0)],
        };
        assert_eq!(solve_lp(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn zero_objective_is_trivially_optimal() {
        let p = LpProblem {
            objective: vec![0.0, 0.0],
            constraints: vec![(vec![1.0, 1.0], 1.0)],
        };
        match solve_lp(&p) {
            LpOutcome::Optimal { value, .. } => assert_close(value, 0.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple constraints active at the optimum (degeneracy).
        let p = LpProblem {
            objective: vec![1.0, 1.0],
            constraints: vec![
                (vec![1.0, 0.0], 1.0),
                (vec![0.0, 1.0], 1.0),
                (vec![1.0, 1.0], 2.0),
                (vec![1.0, 1.0], 2.0),
            ],
        };
        match solve_lp(&p) {
            LpOutcome::Optimal { value, .. } => assert_close(value, 2.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lp_bound_dominates_integer_optimum() {
        // LP relaxation of a tiny knapsack: max 5x + 4y, 2x + 3y ≤ 4,
        // x,y ≤ 1. LP: x = 1, y = 2/3 → 7.67; integer best is 5 + 0 = 5…
        // actually x=1,y=0 (2 ≤ 4) value 5 or x=0,y=1 value 4. LP ≥ IP.
        let p = LpProblem {
            objective: vec![5.0, 4.0],
            constraints: vec![
                (vec![2.0, 3.0], 4.0),
                (vec![1.0, 0.0], 1.0),
                (vec![0.0, 1.0], 1.0),
            ],
        };
        match solve_lp(&p) {
            LpOutcome::Optimal { value, .. } => {
                assert!(value >= 5.0 - 1e-9);
                assert_close(value, 5.0 + 4.0 * 2.0 / 3.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mccormick_relaxation_bounds_qubo_minimum() {
        use crate::linearize::LinearizedMilp;
        use qmkp_qubo::QuboModel;
        // Small QUBO; LP bound on −F must be ≥ −min F (i.e. LP min ≤ min).
        let mut q = QuboModel::new(3);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        q.add_quadratic(0, 1, 3.0);
        q.add_quadratic(1, 2, -2.0);
        let milp = LinearizedMilp::from_qubo(&q);
        // Build max −cᵀz with box bounds and McCormick rows.
        let nv = milp.num_vars();
        let mut constraints: Vec<(Vec<f64>, f64)> = Vec::new();
        for c in &milp.constraints {
            let mut row = vec![0.0; nv];
            for &(i, a) in &c.terms {
                row[i] = a;
            }
            constraints.push((row, c.rhs));
        }
        for i in 0..nv {
            let mut row = vec![0.0; nv];
            row[i] = 1.0;
            constraints.push((row, 1.0));
        }
        let p = LpProblem {
            objective: milp.objective.iter().map(|c| -c).collect(),
            constraints,
        };
        let lp_min = match solve_lp(&p) {
            LpOutcome::Optimal { value, .. } => -value + milp.offset,
            other => panic!("{other:?}"),
        };
        let (_, true_min) = q.brute_force_min();
        assert!(
            lp_min <= true_min + 1e-7,
            "LP relaxation {lp_min} must lower-bound {true_min}"
        );
    }
}
