//! Retry with exponential backoff and deterministic jitter for the
//! stochastic solvers.

use crate::{splitmix64, RtContext, RtError};
use std::time::Duration;

/// Backoff policy for [`retry`]. Delays grow geometrically from
/// [`RetryPolicy::base_delay`], capped at [`RetryPolicy::max_delay`], and
/// each is jittered by a deterministic factor in `[0.5, 1.5)` derived
/// from [`RetryPolicy::seed`] and the attempt index — reproducible runs,
/// no thundering herd.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum attempts (including the first); must be ≥ 1.
    pub attempts: usize,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff delay before retry number `retry_index`
    /// (0-based: the delay between attempt 0 failing and attempt 1).
    pub fn delay(&self, retry_index: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(retry_index))
            .min(self.max_delay);
        // Deterministic jitter factor in [0.5, 1.5).
        let r = splitmix64(self.seed ^ (retry_index as u64).wrapping_mul(0x9E37)) as f64
            / (u64::MAX as f64);
        exp.mul_f64(0.5 + r)
    }
}

/// Runs `op` until it succeeds, fails terminally, or the policy is
/// exhausted. Only *transient* errors ([`RtError::is_transient`], i.e.
/// injected faults modelling flaky hardware) are retried; budget
/// exhaustion, cancellation and config errors propagate immediately.
/// Each retry counts as `rt.retries`, sleeps the jittered backoff
/// (truncated so it cannot overshoot a live deadline), and re-checks the
/// context before re-attempting.
///
/// # Errors
/// The last error returned by `op`, or the context's own error if the
/// budget ran out between attempts.
pub fn retry<T>(
    policy: &RetryPolicy,
    ctx: &RtContext,
    mut op: impl FnMut(usize) -> Result<T, RtError>,
) -> Result<T, RtError> {
    let attempts = policy.attempts.max(1);
    let metered = qmkp_obs::metrics::enabled();
    let mut last = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            qmkp_obs::counter("rt.retries", 1);
            let mut delay = policy.delay(attempt as u32 - 1);
            if let Some(deadline) = ctx.budget().deadline {
                let remaining = deadline.saturating_sub(ctx.elapsed());
                delay = delay.min(remaining);
            }
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            qmkp_obs::metrics::observe_duration("rt.retry.backoff", &[], delay);
            ctx.check()?;
        }
        let attempt_start = metered.then(std::time::Instant::now);
        let result = op(attempt);
        if let Some(t0) = attempt_start {
            let outcome = if result.is_ok() { "ok" } else { "err" };
            qmkp_obs::metrics::observe_duration(
                "rt.retry.attempt",
                &[("outcome", outcome)],
                t0.elapsed(),
            );
        }
        match result {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt + 1 < attempts => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    // attempts ≥ 1, so the loop ran and `last` is set on this path.
    Err(last.unwrap_or(RtError::InvalidConfig(
        "retry: zero attempts configured".into(),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
            seed: 7,
        }
    }

    #[test]
    fn first_success_needs_no_retry() {
        let ctx = RtContext::unlimited();
        let out = retry(&fast_policy(), &ctx, |_| Ok::<_, RtError>(42));
        assert_eq!(out, Ok(42));
    }

    #[test]
    fn transient_faults_are_retried_until_success() {
        let ctx = RtContext::unlimited();
        let out = retry(&fast_policy(), &ctx, |attempt| {
            if attempt < 2 {
                Err(RtError::Faulted { site: "t".into() })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(2));
    }

    #[test]
    fn exhausted_policy_returns_the_last_fault() {
        let ctx = RtContext::unlimited();
        let out: Result<(), _> = retry(&fast_policy(), &ctx, |_| {
            Err(RtError::Faulted { site: "t".into() })
        });
        assert_eq!(out, Err(RtError::Faulted { site: "t".into() }));
    }

    #[test]
    fn terminal_errors_propagate_without_retry() {
        let ctx = RtContext::unlimited();
        let mut calls = 0;
        let out: Result<(), _> = retry(&fast_policy(), &ctx, |_| {
            calls += 1;
            Err(RtError::Cancelled)
        });
        assert_eq!(out, Err(RtError::Cancelled));
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_grows_and_jitter_is_deterministic() {
        let p = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_secs(1),
            seed: 3,
        };
        assert_eq!(p.delay(0), p.delay(0), "same seed, same delay");
        // Jitter is bounded by [0.5, 1.5), so consecutive exponents
        // cannot shrink by more than 3x; delay(2) uses a 4x exponent over
        // delay(0) and must exceed it.
        assert!(p.delay(2) > p.delay(0));
        let q = RetryPolicy { seed: 4, ..p };
        assert_ne!(q.delay(0), p.delay(0), "different seeds jitter apart");
    }

    #[test]
    fn deadline_expiry_between_attempts_stops_retrying() {
        let ctx =
            RtContext::with_budget(Budget::unlimited().with_deadline(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(3));
        let out: Result<(), _> = retry(&fast_policy(), &ctx, |_| {
            Err(RtError::Faulted { site: "t".into() })
        });
        assert!(matches!(out, Err(RtError::DeadlineExceeded { .. })));
    }
}
