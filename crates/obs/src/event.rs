//! The event model: everything the facade emits is one of these variants.
//!
//! Events are cheap plain data. Sinks receive them by reference as they
//! happen; the JSONL encoding here is the machine-readable wire format
//! validated by the workspace's trace tests.

use crate::json;
use std::time::Duration;

/// One telemetry event.
///
/// Span ids are process-unique and strictly increasing; `parent == 0`
/// means the span has no parent (a root). `thread` is a small
/// process-unique integer identifying the emitting thread (not the OS
/// thread id), so sinks can separate interleaved streams.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span was opened.
    SpanStart {
        /// Process-unique span id.
        id: u64,
        /// Enclosing span id, or 0 for a root span.
        parent: u64,
        /// Emitting thread.
        thread: u64,
        /// Dotted span name, e.g. `"core.grover.iteration"`.
        name: String,
    },
    /// A span was closed.
    SpanEnd {
        /// The id from the matching [`Event::SpanStart`].
        id: u64,
        /// Emitting thread.
        thread: u64,
        /// Same name as the matching start (spans are self-contained so
        /// sinks need not keep a join table).
        name: String,
        /// Wall time between open and close.
        duration: Duration,
    },
    /// A monotonic counter was incremented.
    Counter {
        /// Emitting thread.
        thread: u64,
        /// Counter name.
        name: String,
        /// Increment (counters only go up).
        delta: u64,
    },
    /// A gauge was set to a new value.
    Gauge {
        /// Emitting thread.
        thread: u64,
        /// Gauge name.
        name: String,
        /// The observed value.
        value: f64,
    },
    /// One observation of a duration histogram.
    Observe {
        /// Emitting thread.
        thread: u64,
        /// Histogram name.
        name: String,
        /// The observed duration.
        duration: Duration,
    },
    /// A human-oriented progress message (also printed to stderr by the
    /// facade).
    Message {
        /// Emitting thread.
        thread: u64,
        /// Message text.
        text: String,
    },
}

impl Event {
    /// The metric/span name, if the variant has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            Event::SpanStart { name, .. }
            | Event::SpanEnd { name, .. }
            | Event::Counter { name, .. }
            | Event::Gauge { name, .. }
            | Event::Observe { name, .. } => Some(name),
            Event::Message { .. } => None,
        }
    }

    /// The emitting thread's process-unique id.
    pub fn thread(&self) -> u64 {
        match self {
            Event::SpanStart { thread, .. }
            | Event::SpanEnd { thread, .. }
            | Event::Counter { thread, .. }
            | Event::Gauge { thread, .. }
            | Event::Observe { thread, .. }
            | Event::Message { thread, .. } => *thread,
        }
    }

    /// The value of the `"type"` key in the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Observe { .. } => "duration",
            Event::Message { .. } => "message",
        }
    }

    /// Encodes the event as one JSON object (no trailing newline).
    ///
    /// Every line carries `"type"` and `"thread"`; metric variants carry
    /// `"name"`, spans carry `"id"` (+ `"parent"` on start, `"ns"` on
    /// end), and messages carry `"text"`.
    pub fn to_jsonl(&self) -> String {
        let t = self.kind();
        match self {
            Event::SpanStart {
                id,
                parent,
                thread,
                name,
            } => format!(
                "{{\"type\":\"{t}\",\"id\":{id},\"parent\":{parent},\"thread\":{thread},\"name\":{}}}",
                json::quote(name)
            ),
            Event::SpanEnd {
                id,
                thread,
                name,
                duration,
            } => format!(
                "{{\"type\":\"{t}\",\"id\":{id},\"thread\":{thread},\"name\":{},\"ns\":{}}}",
                json::quote(name),
                duration.as_nanos()
            ),
            Event::Counter {
                thread,
                name,
                delta,
            } => format!(
                "{{\"type\":\"{t}\",\"thread\":{thread},\"name\":{},\"delta\":{delta}}}",
                json::quote(name)
            ),
            Event::Gauge {
                thread,
                name,
                value,
            } => format!(
                "{{\"type\":\"{t}\",\"thread\":{thread},\"name\":{},\"value\":{}}}",
                json::quote(name),
                json::number(*value)
            ),
            Event::Observe {
                thread,
                name,
                duration,
            } => format!(
                "{{\"type\":\"{t}\",\"thread\":{thread},\"name\":{},\"ns\":{}}}",
                json::quote(name),
                duration.as_nanos()
            ),
            Event::Message { thread, text } => format!(
                "{{\"type\":\"{t}\",\"thread\":{thread},\"text\":{}}}",
                json::quote(text)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_parse_back() {
        let events = [
            Event::SpanStart {
                id: 3,
                parent: 1,
                thread: 2,
                name: "a.b".into(),
            },
            Event::SpanEnd {
                id: 3,
                thread: 2,
                name: "a.b".into(),
                duration: Duration::from_nanos(1234),
            },
            Event::Counter {
                thread: 2,
                name: "c".into(),
                delta: 7,
            },
            Event::Gauge {
                thread: 2,
                name: "g \"q\"".into(),
                value: 1.5,
            },
            Event::Observe {
                thread: 2,
                name: "d".into(),
                duration: Duration::from_micros(9),
            },
            Event::Message {
                thread: 2,
                text: "hello\nworld".into(),
            },
        ];
        for ev in &events {
            let line = ev.to_jsonl();
            let v = json::parse(&line).expect("line must be valid JSON");
            let obj = v.as_object().expect("line must be an object");
            assert_eq!(
                obj.get("type").and_then(|t| t.as_str()),
                Some(ev.kind()),
                "{line}"
            );
            assert!(obj.contains_key("thread"), "{line}");
        }
    }

    #[test]
    fn span_end_encodes_nanoseconds() {
        let ev = Event::SpanEnd {
            id: 1,
            thread: 1,
            name: "x".into(),
            duration: Duration::from_millis(2),
        };
        assert!(ev.to_jsonl().contains("\"ns\":2000000"));
    }
}
