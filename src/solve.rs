//! The degradation ladder: budgeted end-to-end solving.
//!
//! The quantum pipeline is memory-hungry (a dense statevector is
//! `16·2^w` bytes; the sparse backend's support still grows to `2^n`
//! entries under the uniform superposition), so a budgeted run must
//! decide *before* allocating whether the simulation fits — and, when it
//! does not, still return a valid k-plex. This module implements the
//! ladder
//!
//! ```text
//! dense statevector → sparse statevector → classical (BnB / GRASP)
//! ```
//!
//! chosen by a preflight cost estimate against the [`Budget`]'s byte
//! ceiling, with a mid-run fallback: if the selected quantum rung is
//! interrupted by a budget limit or an injected fault, the solver
//! degrades to the classical floor instead of failing (`degraded = true`
//! in the outcome and the `rt.degradations` counter). Explicit
//! cancellation and configuration errors are *not* degraded — they
//! surface as errors, because the caller asked for them.

use qmkp_classical::bnb::max_kplex_bnb;
use qmkp_classical::grasp::grasp_kplex;
use qmkp_core::{qmkp_ctx, OracleLayout, QmkpCheckpoint, QmkpConfig, QmkpOutcome};
use qmkp_graph::{is_kplex, Graph, VertexSet};
use qmkp_obs::RunReport;
use qmkp_qsim::{BackendState, DenseState, SparseState, MAX_DENSE_QUBITS};
use qmkp_rt::{retry, Budget, Interrupted, RetryPolicy, RtContext, RtError};

/// Which rung of the ladder produced the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveBackend {
    /// Dense statevector simulation of the Grover pipeline.
    Dense,
    /// Sparse (sorted-vec) statevector simulation.
    Sparse,
    /// Classical exact branch & bound (small graphs).
    ClassicalExact,
    /// Classical GRASP heuristic (large graphs), verified with
    /// [`is_kplex`].
    ClassicalHeuristic,
}

impl SolveBackend {
    /// Stable lowercase name for reports and metrics.
    pub fn name(self) -> &'static str {
        match self {
            SolveBackend::Dense => "dense",
            SolveBackend::Sparse => "sparse",
            SolveBackend::ClassicalExact => "classical-exact",
            SolveBackend::ClassicalHeuristic => "classical-heuristic",
        }
    }
}

/// Configuration for [`solve`].
#[derive(Debug, Clone, Default)]
pub struct SolveConfig {
    /// The quantum search configuration (seed, reduction, counting mode).
    pub qmkp: QmkpConfig,
    /// Vertex count at or below which the classical floor runs exact
    /// branch & bound instead of GRASP. 0 keeps the default (20).
    pub exact_threshold: usize,
    /// GRASP restarts for the heuristic floor. 0 keeps the default (64).
    pub grasp_iterations: usize,
}

impl SolveConfig {
    fn exact_threshold(&self) -> usize {
        if self.exact_threshold == 0 {
            20
        } else {
            self.exact_threshold
        }
    }

    fn grasp_iterations(&self) -> usize {
        if self.grasp_iterations == 0 {
            64
        } else {
            self.grasp_iterations
        }
    }
}

/// Outcome of a budgeted [`solve`] run.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// A maximum (quantum / exact rungs) or maximal-effort (heuristic
    /// rung) k-plex, always verified against [`is_kplex`].
    pub best: VertexSet,
    /// The rung that produced `best`.
    pub backend: SolveBackend,
    /// Whether the solver fell back below the requested quantum pipeline.
    pub degraded: bool,
    /// Why the solver degraded, when it did.
    pub degraded_because: Option<RtError>,
    /// Full quantum outcome when a quantum rung completed.
    pub quantum: Option<QmkpOutcome>,
}

impl SolveOutcome {
    /// A run report fragment with the ladder fields filled in, for the
    /// `QMKP_OBS_REPORT` pipeline.
    pub fn report(&self, name: &str) -> RunReport {
        let mut report = RunReport::new(name)
            .outcome("backend", self.backend.name())
            .outcome("degraded", self.degraded)
            .outcome("best_size", self.best.len());
        if let Some(e) = &self.degraded_because {
            report = report.outcome("degraded_because", e);
        }
        report
    }
}

/// Estimated peak bytes for a dense simulation of `width` qubits.
fn dense_cost(width: usize) -> usize {
    // 16-byte amplitudes plus an equal-size permutation scratch buffer.
    2usize
        .checked_shl(width as u32)
        .map_or(usize::MAX, |amps| amps.saturating_mul(16))
}

/// Estimated peak bytes for a sparse simulation of a graph with `n`
/// vertices: the support reaches `2^n` basis states under the uniform
/// superposition, with a same-size scratch vec during compaction.
fn sparse_cost(n: usize) -> usize {
    let entry = std::mem::size_of::<(u128, [f64; 2])>();
    1usize
        .checked_shl(n as u32 + 1)
        .map_or(usize::MAX, |e| e.saturating_mul(entry))
}

fn fits(budget: &Budget, bytes: usize) -> bool {
    budget.max_bytes.is_none_or(|limit| bytes <= limit)
}

/// Runs one quantum rung under the runtime's retry loop. Transient
/// faults (injected via `qmkp_rt::failpoint`, modelling flaky simulated
/// hardware) are retried up to the default [`RetryPolicy`] with
/// deterministic jittered backoff, *resuming from the checkpoint* the
/// interrupted run handed back — a retry never repeats completed binary-
/// search probes. Terminal errors (budget exhaustion, cancellation,
/// invalid config) propagate to the degradation ladder unchanged.
fn quantum_rung<S: BackendState>(
    g: &Graph,
    k: usize,
    config: &SolveConfig,
    ctx: &RtContext,
) -> Result<QmkpOutcome, RtError> {
    let policy = RetryPolicy {
        seed: config.qmkp.qtkp.seed,
        ..RetryPolicy::default()
    };
    let mut resume: Option<QmkpCheckpoint> = None;
    retry(&policy, ctx, |_attempt| {
        match qmkp_ctx::<S>(g, k, &config.qmkp, ctx, resume.as_ref()) {
            Ok(out) => Ok(out),
            Err(Interrupted { error, checkpoint }) => {
                resume = Some(*checkpoint);
                Err(error)
            }
        }
    })
}

/// The classical floor: exact branch & bound on small graphs, GRASP
/// (verified) on everything else.
fn classical_floor(g: &Graph, k: usize, config: &SolveConfig) -> (VertexSet, SolveBackend) {
    if g.n() <= config.exact_threshold() {
        (max_kplex_bnb(g, k), SolveBackend::ClassicalExact)
    } else {
        let best = grasp_kplex(g, k, config.grasp_iterations(), 0.3, config.qmkp.qtkp.seed);
        debug_assert!(is_kplex(g, best, k));
        (best, SolveBackend::ClassicalHeuristic)
    }
}

/// Solves maximum k-plex under a budget, degrading gracefully.
///
/// Preflight picks the cheapest rung that fits the byte ceiling; a
/// quantum rung interrupted mid-run by a budget limit or injected fault
/// degrades to the classical floor (`degraded = true`,
/// `rt.degradations`). [`RtError::Cancelled`] and
/// [`RtError::InvalidConfig`] are returned as errors instead — the
/// former because the caller asked the run to stop, the latter because
/// no amount of degradation fixes a bad configuration.
///
/// # Errors
/// [`RtError::Cancelled`] or [`RtError::InvalidConfig`], as above.
///
/// # Panics
/// Panics if the graph is empty or `k == 0`.
pub fn solve(
    g: &Graph,
    k: usize,
    config: &SolveConfig,
    ctx: &RtContext,
) -> Result<SolveOutcome, RtError> {
    assert!(g.n() > 0, "graph must be non-empty");
    assert!(k >= 1, "k must be ≥ 1");
    let span = qmkp_obs::span("solve.run");
    let result = solve_inner(g, k, config, ctx);
    span.finish();
    result
}

/// Records one attempted rung's wall time into the `solve.rung`
/// histogram, labeled with the rung name and whether the run degraded
/// past it. A `None` start means metrics were disabled at rung entry.
fn rung_metric(start: Option<std::time::Instant>, rung: SolveBackend, degraded: bool) {
    if let Some(t0) = start {
        qmkp_obs::metrics::observe_duration(
            "solve.rung",
            &[
                ("rung", rung.name()),
                ("degraded", if degraded { "true" } else { "false" }),
            ],
            t0.elapsed(),
        );
    }
}

fn solve_inner(
    g: &Graph,
    k: usize,
    config: &SolveConfig,
    ctx: &RtContext,
) -> Result<SolveOutcome, RtError> {
    // Preflight: lay out the oracle (width is independent of the probe
    // threshold, which only pads constant registers) and cost each rung.
    // A >128-qubit oracle cannot run on any quantum rung — classical only.
    let width = OracleLayout::try_new(g, k, 1).map(|layout| layout.width);
    let budget = ctx.budget();
    let rung_start = qmkp_obs::metrics::enabled().then(std::time::Instant::now);
    let quantum = match width {
        Some(w) if w <= MAX_DENSE_QUBITS && fits(budget, dense_cost(w)) => {
            qmkp_obs::gauge("solve.preflight_bytes", dense_cost(w) as f64);
            Some((
                SolveBackend::Dense,
                quantum_rung::<DenseState>(g, k, config, ctx),
            ))
        }
        Some(w) if w <= 128 && fits(budget, sparse_cost(g.n())) => {
            qmkp_obs::gauge("solve.preflight_bytes", sparse_cost(g.n()) as f64);
            Some((
                SolveBackend::Sparse,
                quantum_rung::<SparseState>(g, k, config, ctx),
            ))
        }
        _ => None,
    };

    let degraded_because = match quantum {
        Some((backend, Ok(out))) => {
            rung_metric(rung_start, backend, false);
            debug_assert!(is_kplex(g, out.best, k));
            return Ok(SolveOutcome {
                best: out.best,
                backend,
                degraded: false,
                degraded_because: None,
                quantum: Some(out),
            });
        }
        Some((backend, Err(error))) => match error {
            RtError::Cancelled | RtError::InvalidConfig(_) => return Err(error),
            other => {
                rung_metric(rung_start, backend, true);
                Some(other)
            }
        },
        // Preflight rejected every quantum rung: either the budget is too
        // tight or the instance is too wide to simulate at all.
        None => Some(RtError::MemoryBudget {
            required: width.map_or(usize::MAX, |w| sparse_cost(g.n()).min(dense_cost(w))),
            limit: budget.max_bytes.unwrap_or(usize::MAX),
        }),
    };

    // One last chance for the caller to stop before the classical floor
    // spends CPU (a cancelled context must never degrade).
    ctx.check()?;
    qmkp_obs::counter("rt.degradations", 1);
    let floor_start = qmkp_obs::metrics::enabled().then(std::time::Instant::now);
    let (best, backend) = classical_floor(g, k, config);
    rung_metric(floor_start, backend, true);
    assert!(
        is_kplex(g, best, k),
        "classical floor returned an invalid k-plex"
    );
    Ok(SolveOutcome {
        best,
        backend,
        degraded: true,
        degraded_because,
        quantum: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_graph::gen::{gnm, paper_fig1_graph};
    use qmkp_rt::CancelToken;

    #[test]
    fn unlimited_budget_runs_the_quantum_pipeline() {
        let g = paper_fig1_graph();
        let out = solve(&g, 2, &SolveConfig::default(), &RtContext::unlimited()).unwrap();
        assert_eq!(out.best.len(), 4);
        assert!(!out.degraded);
        assert!(matches!(
            out.backend,
            SolveBackend::Dense | SolveBackend::Sparse
        ));
        assert!(out.quantum.is_some());
    }

    #[test]
    fn tight_byte_budget_degrades_to_classical() {
        let g = paper_fig1_graph();
        let ctx = RtContext::with_budget(Budget::unlimited().with_max_bytes(1024));
        let out = solve(&g, 2, &SolveConfig::default(), &ctx).unwrap();
        assert!(out.degraded);
        assert!(matches!(
            out.degraded_because,
            Some(RtError::MemoryBudget { .. })
        ));
        assert_eq!(out.backend, SolveBackend::ClassicalExact);
        assert_eq!(out.best.len(), 4, "the floor still finds the optimum");
        assert!(is_kplex(&g, out.best, 2));
    }

    #[test]
    fn op_budget_exhaustion_mid_run_degrades() {
        let g = paper_fig1_graph();
        let ctx = RtContext::with_budget(Budget::unlimited().with_max_ops(100));
        let out = solve(&g, 2, &SolveConfig::default(), &ctx).unwrap();
        assert!(out.degraded);
        assert!(matches!(
            out.degraded_because,
            Some(RtError::OpBudget { .. })
        ));
        assert!(is_kplex(&g, out.best, 2));
        assert_eq!(out.best.len(), 4);
    }

    #[test]
    fn cancellation_is_not_degraded() {
        let g = paper_fig1_graph();
        let ctx = RtContext::new(Budget::unlimited(), CancelToken::cancel_after_checks(0));
        assert_eq!(
            solve(&g, 2, &SolveConfig::default(), &ctx).unwrap_err(),
            RtError::Cancelled
        );
    }

    #[test]
    fn invalid_config_is_an_error_not_a_degradation() {
        let g = paper_fig1_graph();
        let config = SolveConfig {
            qmkp: QmkpConfig {
                qtkp: qmkp_core::QtkpConfig {
                    max_attempts: 0,
                    ..qmkp_core::QtkpConfig::default()
                },
                ..QmkpConfig::default()
            },
            ..SolveConfig::default()
        };
        assert!(matches!(
            solve(&g, 2, &config, &RtContext::unlimited()),
            Err(RtError::InvalidConfig(_))
        ));
    }

    #[test]
    fn large_graphs_use_the_heuristic_floor() {
        let g = gnm(40, 200, 3).unwrap();
        let ctx = RtContext::with_budget(Budget::unlimited().with_max_bytes(1 << 20));
        let config = SolveConfig {
            exact_threshold: 10,
            ..SolveConfig::default()
        };
        let out = solve(&g, 2, &config, &ctx).unwrap();
        assert!(out.degraded);
        assert_eq!(out.backend, SolveBackend::ClassicalHeuristic);
        assert!(is_kplex(&g, out.best, 2));
        assert!(!out.best.is_empty());
    }

    #[test]
    fn report_carries_the_ladder_fields() {
        let g = paper_fig1_graph();
        let ctx = RtContext::with_budget(Budget::unlimited().with_max_bytes(1024));
        let out = solve(&g, 2, &SolveConfig::default(), &ctx).unwrap();
        let json = out.report("ladder_test").to_json();
        assert!(json.contains("\"degraded\""));
        assert!(json.contains("true"));
        assert!(json.contains("classical-exact"));
    }
}
