//! Benchmarks backing Figure 11: minor-embedding time and chain growth
//! for the MKP QUBO interaction graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmkp_annealer::{find_embedding_with_tries, Chimera};
use qmkp_graph::gen::{chain_family_edges, gnm, DATASET_SEED};
use qmkp_qubo::{MkpQubo, MkpQuboParams};

fn bench_embed(c: &mut Criterion) {
    let mut group = c.benchmark_group("embed_mkp_qubo");
    group.sample_size(10);
    for n in [10usize, 15, 20] {
        let g = gnm(n, chain_family_edges(n), DATASET_SEED ^ n as u64).unwrap();
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
        let edges: Vec<(usize, usize)> = mq.model.interactions().map(|(p, _)| p).collect();
        let vars = mq.num_vars();
        let grid = (((vars * 10) as f64 / 8.0).sqrt().ceil() as usize).max(4);
        let hw = Chimera::new(grid, grid, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(edges, vars, hw),
            |b, (e, v, hw)| {
                b.iter(|| find_embedding_with_tries(e, *v, hw, 3, 4, 2));
            },
        );
    }
    group.finish();
}

fn bench_chimera_build(c: &mut Criterion) {
    c.bench_function("chimera_c16_build", |b| b.iter(Chimera::c16));
}

criterion_group!(benches, bench_embed, bench_chimera_build);
criterion_main!(benches);
