//! # qmkp-core — gate-based quantum algorithms for the Maximum k-Plex Problem
//!
//! The paper's primary contribution: the qTKP and qMKP algorithms of
//! Section III (gate-based model).
//!
//! * [`layout`] — qubit layout of the oracle: vertex register, complement
//!   edge ancillas, per-vertex degree counters, comparison flags, size
//!   register and the oracle qubit `|O⟩` (the paper's Figures 6, 9, 11).
//! * [`oracle`] — the `U_check` circuit builder: graph encoding
//!   (Challenge I), degree counting (Challenge II / oracle part 1), degree
//!   comparison (Challenge III / part 2) and size determination
//!   (Challenge IV / part 3), each tagged as a circuit section for the
//!   Table-IV instrumentation.
//! * [`grover`] — superposition preparation, the phase-kickback oracle
//!   application with `U_check†` uncomputation, the diffusion operator,
//!   and the Grover iteration driver (Figure 12).
//! * [`counting`] — solution counting: exact classical census, plus a
//!   simulated Brassard-et-al. quantum-counting (phase estimation) module
//!   for estimating `M`.
//! * [`mod@qtkp`] — Algorithm 2: find a k-plex of size ≥ T (or report `∅`).
//! * [`mod@qmkp`] — Algorithm 3: binary search over `T` to find a maximum
//!   k-plex, with the paper's progressive first-feasible-solution
//!   behaviour.

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
pub mod club;
pub mod compiled;
pub mod counting;
pub mod grover;
pub mod layout;
pub mod oracle;
pub mod qmkp;
pub mod qtkp;

pub use club::{max_two_club, TwoClubOracle};
pub use compiled::{CompileFresh, CompiledOracle, GroverCircuits, OracleProvider};
pub use counting::{
    exact_solution_count, inverse_qft, qft, quantum_count, quantum_count_ctx, solutions,
};
pub use grover::{diffusion_circuit, optimal_iterations, GroverDriver, PhaseOracle};
pub use layout::OracleLayout;
pub use oracle::{Oracle, OracleSectionCost};
pub use qmkp::{
    qmkp, qmkp_ctx, qmkp_ctx_with, QmkpCall, QmkpCheckpoint, QmkpConfig, QmkpOutcome, QmkpProbe,
};
pub use qtkp::{
    qtkp, qtkp_ctx, qtkp_ctx_with, qtkp_probe_ctx_with, MEstimate, ProbeInterrupt, QtkpConfig,
    QtkpOutcome, SectionTimes,
};
