//! A general sparse QUBO model.
//!
//! `F(x) = offset + Σ_i linear[i]·x_i + Σ_{i<j} quadratic[(i,j)]·x_i·x_j`
//! over binary variables `x ∈ {0,1}^n`. All builders in this workspace
//! (the MKP formulation, chain-embedded problems) produce this type, and
//! all samplers (SA, SQA, hybrid, the MILP branch & bound) consume it.

use std::collections::BTreeMap;

/// A sparse QUBO: minimize `offset + Σ c_i x_i + Σ_{i<j} q_ij x_i x_j`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuboModel {
    offset: f64,
    linear: Vec<f64>,
    // Keyed (i, j) with i < j; BTreeMap keeps iteration deterministic.
    quadratic: BTreeMap<(usize, usize), f64>,
}

impl QuboModel {
    /// A zero objective over `n` variables.
    pub fn new(n: usize) -> Self {
        QuboModel {
            offset: 0.0,
            linear: vec![0.0; n],
            quadratic: BTreeMap::new(),
        }
    }

    /// Number of binary variables.
    pub fn num_vars(&self) -> usize {
        self.linear.len()
    }

    /// Number of nonzero quadratic interactions.
    pub fn num_interactions(&self) -> usize {
        self.quadratic.len()
    }

    /// The constant offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Adds to the constant offset.
    pub fn add_offset(&mut self, c: f64) {
        self.offset += c;
    }

    /// The linear coefficient of variable `i`.
    pub fn linear(&self, i: usize) -> f64 {
        self.linear[i]
    }

    /// All linear coefficients.
    pub fn linear_terms(&self) -> &[f64] {
        &self.linear
    }

    /// Adds to the linear coefficient of variable `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn add_linear(&mut self, i: usize, c: f64) {
        self.linear[i] += c;
    }

    /// The quadratic coefficient of the pair `{i, j}` (0 if absent).
    pub fn quadratic(&self, i: usize, j: usize) -> f64 {
        let key = (i.min(j), i.max(j));
        self.quadratic.get(&key).copied().unwrap_or(0.0)
    }

    /// Adds to the quadratic coefficient of the pair `{i, j}`. A
    /// diagonal pair (`i == j`) folds into the linear term (`x² = x` for
    /// binaries).
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn add_quadratic(&mut self, i: usize, j: usize, c: f64) {
        assert!(
            i < self.num_vars() && j < self.num_vars(),
            "variable out of range"
        );
        if i == j {
            self.linear[i] += c;
        } else {
            let key = (i.min(j), i.max(j));
            let entry = self.quadratic.entry(key).or_insert(0.0);
            *entry += c;
            if *entry == 0.0 {
                self.quadratic.remove(&key);
            }
        }
    }

    /// Iterates over the nonzero quadratic terms `((i, j), q)` with `i < j`,
    /// in deterministic order.
    pub fn interactions(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.quadratic.iter().map(|(&k, &v)| (k, v))
    }

    /// Evaluates the objective on an assignment given as a bit mask
    /// (bit `i` = `x_i`).
    pub fn energy_bits(&self, bits: u128) -> f64 {
        debug_assert!(self.num_vars() <= 128);
        let mut e = self.offset;
        for (i, &c) in self.linear.iter().enumerate() {
            if (bits >> i) & 1 == 1 {
                e += c;
            }
        }
        for (&(i, j), &q) in &self.quadratic {
            if (bits >> i) & 1 == 1 && (bits >> j) & 1 == 1 {
                e += q;
            }
        }
        e
    }

    /// Evaluates the objective on a boolean slice.
    ///
    /// # Panics
    /// Panics if the slice length differs from the variable count.
    pub fn energy(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.num_vars(), "assignment length mismatch");
        let mut e = self.offset;
        for (i, &c) in self.linear.iter().enumerate() {
            if x[i] {
                e += c;
            }
        }
        for (&(i, j), &q) in &self.quadratic {
            if x[i] && x[j] {
                e += q;
            }
        }
        e
    }

    /// The energy change from flipping variable `i` of assignment `x`
    /// (computed incrementally, `O(degree of i)`). Requires the adjacency
    /// prepared by [`QuboModel::neighbor_lists`] for hot loops; this
    /// convenience form scans all interactions.
    pub fn flip_delta(&self, x: &[bool], i: usize) -> f64 {
        let sign = if x[i] { -1.0 } else { 1.0 };
        let mut delta = sign * self.linear[i];
        for (&(a, b), &q) in &self.quadratic {
            if (a == i && x[b]) || (b == i && x[a]) {
                delta += sign * q;
            }
        }
        delta
    }

    /// Per-variable neighbour lists `(other, coefficient)` for incremental
    /// energy updates in samplers.
    pub fn neighbor_lists(&self) -> Vec<Vec<(usize, f64)>> {
        let mut adj = vec![Vec::new(); self.num_vars()];
        for (&(i, j), &q) in &self.quadratic {
            adj[i].push((j, q));
            adj[j].push((i, q));
        }
        adj
    }

    /// Exhaustively minimizes the objective (for tests / tiny models).
    ///
    /// Returns `(argmin bits, min energy)`.
    ///
    /// # Panics
    /// Panics if the model has more than 24 variables.
    pub fn brute_force_min(&self) -> (u128, f64) {
        let n = self.num_vars();
        assert!(n <= 24, "brute force limited to 24 variables");
        let mut best = (0u128, f64::INFINITY);
        for bits in 0..(1u128 << n) {
            let e = self.energy_bits(bits);
            if e < best.1 {
                best = (bits, e);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> QuboModel {
        // F = 1 - x0 - 2 x1 + 3 x0 x1
        let mut m = QuboModel::new(2);
        m.add_offset(1.0);
        m.add_linear(0, -1.0);
        m.add_linear(1, -2.0);
        m.add_quadratic(0, 1, 3.0);
        m
    }

    #[test]
    fn energy_evaluation() {
        let m = sample_model();
        assert_eq!(m.energy_bits(0b00), 1.0);
        assert_eq!(m.energy_bits(0b01), 0.0);
        assert_eq!(m.energy_bits(0b10), -1.0);
        assert_eq!(m.energy_bits(0b11), 1.0);
        assert_eq!(m.energy(&[true, true]), 1.0);
        assert_eq!(m.energy(&[false, true]), -1.0);
    }

    #[test]
    fn brute_force_finds_min() {
        let m = sample_model();
        let (bits, e) = m.brute_force_min();
        assert_eq!(bits, 0b10);
        assert_eq!(e, -1.0);
    }

    #[test]
    fn quadratic_is_symmetric_and_cancels() {
        let mut m = QuboModel::new(3);
        m.add_quadratic(2, 0, 1.5);
        assert_eq!(m.quadratic(0, 2), 1.5);
        assert_eq!(m.quadratic(2, 0), 1.5);
        m.add_quadratic(0, 2, -1.5);
        assert_eq!(m.num_interactions(), 0, "cancelled terms are removed");
    }

    #[test]
    fn diagonal_quadratic_folds_into_linear() {
        let mut m = QuboModel::new(2);
        m.add_quadratic(1, 1, 4.0);
        assert_eq!(m.linear(1), 4.0);
        assert_eq!(m.num_interactions(), 0);
    }

    #[test]
    fn flip_delta_matches_full_recompute() {
        let m = sample_model();
        for bits in 0..4u128 {
            let x = [(bits & 1) == 1, (bits >> 1) & 1 == 1];
            for i in 0..2 {
                let mut y = x;
                y[i] = !y[i];
                let expected = m.energy(&y) - m.energy(&x);
                assert!((m.flip_delta(&x, i) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn neighbor_lists_cover_interactions() {
        let mut m = QuboModel::new(4);
        m.add_quadratic(0, 1, 1.0);
        m.add_quadratic(1, 3, -2.0);
        let adj = m.neighbor_lists();
        assert_eq!(adj[0], vec![(1, 1.0)]);
        assert_eq!(adj[1], vec![(0, 1.0), (3, -2.0)]);
        assert!(adj[2].is_empty());
        assert_eq!(adj[3], vec![(1, -2.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_quadratic_panics() {
        let mut m = QuboModel::new(2);
        m.add_quadratic(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn energy_length_mismatch_panics() {
        let m = sample_model();
        let _ = m.energy(&[true]);
    }
}
