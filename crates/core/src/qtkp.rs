//! Algorithm 2 of the paper: **qTKP** — find a k-plex of size at least `T`.
//!
//! Builds the oracle, estimates the number of marked states `M`, runs
//! `⌊(π/4)√(2ⁿ/M)⌋` Grover iterations on the sparse simulator, measures
//! the vertex register, and *classically verifies* the measured set (the
//! standard Grover postprocessing — a wrong collapse is detected and
//! retried, which is how the paper's `π²/(4I)²ᶜ` error amplification
//! works).

use crate::compiled::{CompileFresh, OracleProvider};
use crate::counting::{exact_solution_count, quantum_count_ctx, solutions};
pub use crate::grover::SectionTimes;
use crate::grover::{optimal_iterations, GroverDriver};
use crate::oracle::OracleSectionCost;
use qmkp_graph::{Graph, VertexSet};
use qmkp_qsim::{BackendState, SimError, SparseState};
use qmkp_rt::{RtContext, RtError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Folds a simulator error into the runtime taxonomy: interruptions pass
/// through, anything else (compile/width errors on caller-built circuits)
/// is a configuration problem.
pub(crate) fn rt_from_sim(e: SimError) -> RtError {
    match e {
        SimError::Interrupted(rt) => rt,
        other => RtError::InvalidConfig(format!("simulator: {other}")),
    }
}

/// How qTKP obtains the marked-state count `M`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MEstimate {
    /// Exact classical census of the oracle predicate (free on a
    /// simulator; the default).
    Exact,
    /// A caller-provided value (e.g. from a prior census).
    Given(u64),
    /// Simulated Brassard-Høyer-Tapp quantum counting with the given
    /// number of counting qubits.
    QuantumCounting {
        /// Number of phase-estimation counting qubits (1..=20).
        precision: usize,
    },
    /// No estimate at all: the Boyer-Brassard-Høyer-Tapp exponential
    /// search — run a uniformly random number of iterations below a bound
    /// that grows by `lambda` each round, measure, verify classically.
    /// Finds a solution in expected `O(√(N/M))` oracle calls without ever
    /// knowing `M`.
    Unknown {
        /// Growth factor of the iteration bound, in `(1, 4/3]` per the
        /// original analysis (6/5 is the classic choice).
        lambda: f64,
    },
}

/// Configuration for a qTKP run.
#[derive(Debug, Clone)]
pub struct QtkpConfig {
    /// How to estimate `M`.
    pub m_estimate: MEstimate,
    /// RNG seed for measurement sampling (and quantum counting).
    pub seed: u64,
    /// Maximum number of measure-and-verify attempts before reporting `∅`.
    /// Each attempt corresponds to re-running the algorithm on hardware;
    /// the paper's error probability `π²/(4I)²` shrinks to
    /// `π²/(4I)^(2c)` with `c` attempts.
    pub max_attempts: usize,
}

impl Default for QtkpConfig {
    fn default() -> Self {
        QtkpConfig {
            m_estimate: MEstimate::Exact,
            seed: 0xC0FFEE,
            max_attempts: 3,
        }
    }
}

impl QtkpConfig {
    /// Validates the configuration, returning a structured error instead
    /// of clamping or panicking: `max_attempts` must be at least 1, a BBHT
    /// `lambda` must lie in `(1, 4/3]`, and a quantum-counting precision
    /// must lie in `1..=20`.
    ///
    /// # Errors
    /// [`RtError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), RtError> {
        if self.max_attempts == 0 {
            return Err(RtError::InvalidConfig(
                "max_attempts must be at least 1".into(),
            ));
        }
        match self.m_estimate {
            MEstimate::Unknown { lambda } if !(lambda > 1.0 && lambda <= 4.0 / 3.0) => Err(
                RtError::InvalidConfig(format!("lambda must be in (1, 4/3], got {lambda}")),
            ),
            MEstimate::QuantumCounting { precision } if !(1..=20).contains(&precision) => Err(
                RtError::InvalidConfig(format!("precision must be in 1..=20, got {precision}")),
            ),
            _ => Ok(()),
        }
    }
}

/// The result of a qTKP run.
#[derive(Debug, Clone)]
pub struct QtkpOutcome {
    /// A verified k-plex of size ≥ T, or `None` (the paper's `∅`).
    pub result: Option<VertexSet>,
    /// Raw measurements taken (last one is the accepted one on success).
    pub measured: Vec<VertexSet>,
    /// Grover iterations performed.
    pub iterations: usize,
    /// The `M` used to pick the iteration count.
    pub m: u64,
    /// Exact probability mass on solution states in the final state.
    pub success_probability: f64,
    /// Single-shot error probability `1 − success_probability`.
    pub error_probability: f64,
    /// Wall-time attribution per oracle section.
    pub times: SectionTimes,
    /// Static per-section elementary gate cost of one `U_check`.
    pub oracle_cost: OracleSectionCost,
    /// Total wall time of the run.
    pub elapsed: Duration,
    /// Total circuit width (qubits) used.
    pub qubits: usize,
}

/// Why a qTKP probe stopped, paired with how far its Grover phase got —
/// the intra-probe resolution [`crate::qmkp::QmkpCheckpoint`] records so
/// a resumed binary search replays completed iterations instead of
/// restarting the probe from iteration zero.
#[derive(Debug)]
pub struct ProbeInterrupt {
    /// The structured stop reason.
    pub error: RtError,
    /// Grover iterations completed before the stop (0 when the stop
    /// happened before or outside the iteration phase, and always 0 on
    /// the BBHT path, which stays probe-granular — its per-round
    /// iteration counts are drawn from the RNG, so a partial round is
    /// not replayable from a count alone).
    pub iterations_done: usize,
}

/// Runs qTKP: search for a k-plex of size at least `t` in `g`.
///
/// Legacy infallible surface on the sparse backend; budget-aware callers
/// use [`qtkp_ctx`].
///
/// # Panics
/// Panics on invalid `k` / `t` (see [`crate::layout::OracleLayout::new`])
/// and on an invalid configuration (see [`QtkpConfig::validate`]).
pub fn qtkp(g: &Graph, k: usize, t: usize, config: &QtkpConfig) -> QtkpOutcome {
    qtkp_ctx::<SparseState>(g, k, t, config, &RtContext::unlimited())
        .expect("unlimited context: only invalid configuration can fail")
}

/// Runs qTKP under an execution-runtime context, on an explicit backend
/// (the sparse default, or the dense statevector for the degradation
/// ladder's top rung). The configuration is validated up front; the
/// context is polled at Grover-iteration granularity and charged per
/// kernel section.
///
/// # Errors
/// [`RtError::InvalidConfig`] for a rejected configuration, or the
/// budget/cancellation/fault error that interrupted the run.
///
/// # Panics
/// Panics on invalid `k` / `t` (see [`crate::layout::OracleLayout::new`]).
pub fn qtkp_ctx<S: BackendState>(
    g: &Graph,
    k: usize,
    t: usize,
    config: &QtkpConfig,
    ctx: &RtContext,
) -> Result<QtkpOutcome, RtError> {
    qtkp_ctx_with::<S>(g, k, t, config, ctx, &CompileFresh)
}

/// As [`qtkp_ctx`], but obtaining the compiled oracle from an explicit
/// [`OracleProvider`] — the seam a cross-request oracle cache plugs into.
/// A cache hit skips oracle construction and circuit compilation
/// entirely; only the state is (budget-admitted and) allocated.
///
/// # Errors
/// As [`qtkp_ctx`], plus whatever the provider reports.
pub fn qtkp_ctx_with<S: BackendState>(
    g: &Graph,
    k: usize,
    t: usize,
    config: &QtkpConfig,
    ctx: &RtContext,
    provider: &dyn OracleProvider,
) -> Result<QtkpOutcome, RtError> {
    qtkp_probe_ctx_with::<S>(g, k, t, config, ctx, provider, 0).map_err(|pi| pi.error)
}

/// As [`qtkp_ctx_with`], with intra-probe resume: `replay` completed
/// Grover iterations from an earlier interrupted run of the *same*
/// `(g, k, t, config)` probe are re-executed without runtime polls
/// (deterministically rebuilding the pre-interrupt state, see
/// [`GroverDriver::iterate_n_ctx_resume`]) before live, budget-polled
/// iterations continue. On interruption the error carries how many
/// iterations had completed, so the caller's checkpoint can hand the
/// count back on the next resume.
///
/// # Errors
/// [`ProbeInterrupt`] pairing the [`RtError`] of [`qtkp_ctx_with`] with
/// the completed-iteration count.
pub fn qtkp_probe_ctx_with<S: BackendState>(
    g: &Graph,
    k: usize,
    t: usize,
    config: &QtkpConfig,
    ctx: &RtContext,
    provider: &dyn OracleProvider,
    replay: usize,
) -> Result<QtkpOutcome, ProbeInterrupt> {
    let probe_granular = |error: RtError| ProbeInterrupt {
        error,
        iterations_done: 0,
    };
    config.validate().map_err(probe_granular)?;
    if let MEstimate::Unknown { lambda } = config.m_estimate {
        return qtkp_unknown_m_ctx::<S>(g, k, t, config, lambda, ctx, provider)
            .map_err(probe_granular);
    }
    let span = qmkp_obs::span("core.qtkp.run");
    let result = qtkp_known_m_ctx::<S>(g, k, t, config, ctx, provider, replay);
    span.finish();
    result
}

#[allow(clippy::too_many_arguments)]
fn qtkp_known_m_ctx<S: BackendState>(
    g: &Graph,
    k: usize,
    t: usize,
    config: &QtkpConfig,
    ctx: &RtContext,
    provider: &dyn OracleProvider,
    replay: usize,
) -> Result<QtkpOutcome, ProbeInterrupt> {
    let probe_granular = |error: RtError| ProbeInterrupt {
        error,
        iterations_done: 0,
    };
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let compiled = provider
        .compiled_oracle(g, k, t, ctx)
        .map_err(probe_granular)?;
    let oracle = compiled.oracle_arc();
    let qubits = oracle.layout.width;
    let oracle_cost = oracle.section_cost();
    let n = oracle.layout.n;

    let true_m = exact_solution_count(&oracle);
    let m = match config.m_estimate {
        MEstimate::Given(m) => m,
        MEstimate::QuantumCounting { precision } => {
            quantum_count_ctx(n, true_m, precision, &mut rng, ctx).map_err(probe_granular)?
        }
        // Exact; Unknown was dispatched to the BBHT path by the caller.
        _ => true_m,
    };

    let iterations = optimal_iterations(n, m);
    let mut driver =
        GroverDriver::<_, S>::try_new_precompiled_ctx(oracle, compiled.circuits().clone(), ctx)
            .map_err(|e| probe_granular(rt_from_sim(e)))?;
    let live = driver.iterate_n_ctx_resume(iterations, replay, ctx);
    if let Err(e) = live {
        return Err(ProbeInterrupt {
            error: rt_from_sim(e),
            iterations_done: driver.iterations_done(),
        });
    }

    let sols = solutions(driver.oracle());
    let success_probability = if sols.is_empty() {
        0.0
    } else {
        driver.probability_of_sets(&sols)
    };

    let mut measured = Vec::new();
    let mut result = None;
    for _ in 0..config.max_attempts {
        let s = driver.measure(&mut rng);
        measured.push(s);
        qmkp_obs::counter("core.qtkp.attempts", 1);
        if driver.oracle().predicate(s) {
            result = Some(s);
            break;
        }
    }

    if qmkp_obs::enabled_for("core.qtkp") {
        qmkp_obs::gauge("core.qtkp.m", m as f64);
        qmkp_obs::gauge("core.qtkp.iterations", iterations as f64);
        qmkp_obs::gauge("core.qtkp.qubits", qubits as f64);
        qmkp_obs::gauge("core.qtkp.success_probability", success_probability);
    }
    Ok(QtkpOutcome {
        result,
        measured,
        iterations,
        m,
        success_probability,
        error_probability: 1.0 - success_probability,
        times: driver.times().clone(),
        oracle_cost,
        elapsed: start.elapsed(),
        qubits,
    })
}

/// The Boyer-Brassard-Høyer-Tapp search: no `M` required. Round `l` runs
/// `j ~ U[0, min(λ^l, √N))` Grover iterations, measures and verifies;
/// the total oracle budget is capped at `3·√N + n` iterations, past which
/// the instance is declared infeasible (`∅`). On a fault-free simulator
/// the only false-negative source is the probabilistic cutoff, whose
/// failure probability is exponentially small for feasible instances.
///
/// The context is polled once per BBHT round in addition to the
/// per-iteration polls inside the driver.
fn qtkp_unknown_m_ctx<S: BackendState>(
    g: &Graph,
    k: usize,
    t: usize,
    config: &QtkpConfig,
    lambda: f64,
    ctx: &RtContext,
    provider: &dyn OracleProvider,
) -> Result<QtkpOutcome, RtError> {
    let span = qmkp_obs::span("core.qtkp.run");
    let result = (|| {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let compiled = provider.compiled_oracle(g, k, t, ctx)?;
        let oracle = compiled.oracle_arc();
        let qubits = oracle.layout.width;
        let oracle_cost = oracle.section_cost();
        let n = oracle.layout.n;
        let sqrt_n = (1u128 << n) as f64;
        let sqrt_n = sqrt_n.sqrt();
        let budget = (3.0 * sqrt_n).ceil() as usize + n;

        let mut measured = Vec::new();
        let mut result = None;
        let mut spent = 0usize;
        let mut bound = 1.0f64;
        let mut iterations = 0usize;
        let mut times = SectionTimes::default();
        let mut success_probability = 0.0;

        while spent <= budget {
            ctx.check()?;
            let j = (rng.gen::<f64>() * bound.min(sqrt_n)).floor() as usize;
            let mut driver = GroverDriver::<_, S>::try_new_precompiled_ctx(
                Arc::clone(&oracle),
                compiled.circuits().clone(),
                ctx,
            )
            .map_err(rt_from_sim)?;
            driver.iterate_n_ctx(j, ctx).map_err(rt_from_sim)?;
            spent += j.max(1);
            iterations += j;
            let s = driver.measure(&mut rng);
            measured.push(s);
            qmkp_obs::counter("core.qtkp.attempts", 1);
            times.merge(driver.times());
            if oracle.predicate(s) {
                let sols = solutions(&oracle);
                success_probability = driver.probability_of_sets(&sols);
                result = Some(s);
                break;
            }
            bound *= lambda;
        }

        if qmkp_obs::enabled_for("core.qtkp") {
            qmkp_obs::gauge("core.qtkp.iterations", iterations as f64);
            qmkp_obs::gauge("core.qtkp.qubits", qubits as f64);
            qmkp_obs::gauge("core.qtkp.success_probability", success_probability);
        }
        Ok(QtkpOutcome {
            result,
            measured,
            iterations,
            m: 0, // unknown by construction
            success_probability,
            error_probability: 1.0 - success_probability,
            times,
            oracle_cost,
            elapsed: start.elapsed(),
            qubits,
        })
    })();
    span.finish();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_graph::gen::{gnm, paper_fig1_graph};
    use qmkp_graph::is_kplex;

    #[test]
    fn finds_the_unique_max_2plex_of_fig1() {
        let g = paper_fig1_graph();
        let out = qtkp(&g, 2, 4, &QtkpConfig::default());
        assert_eq!(out.result, Some(VertexSet::from_iter([0, 1, 3, 4])));
        assert_eq!(out.iterations, 6, "paper's Fig. 8 runs 6 iterations");
        assert_eq!(out.m, 1);
        assert!(out.success_probability > 0.99);
        assert!(out.error_probability < 0.01);
    }

    #[test]
    fn reports_empty_when_no_solution_exists() {
        let g = paper_fig1_graph();
        // No 2-plex of size 6 exists in the Fig. 1 graph.
        let out = qtkp(&g, 2, 6, &QtkpConfig::default());
        assert_eq!(out.result, None);
        assert_eq!(out.m, 0);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.success_probability, 0.0);
        assert_eq!(out.measured.len(), 3, "all attempts are used up");
    }

    #[test]
    fn result_is_always_a_verified_kplex() {
        for seed in 0..3 {
            let g = gnm(7, 10, seed).unwrap();
            for t in 2..=5 {
                let out = qtkp(&g, 2, t, &QtkpConfig::default());
                if let Some(p) = out.result {
                    assert!(is_kplex(&g, p, 2));
                    assert!(p.len() >= t);
                }
            }
        }
    }

    #[test]
    fn quantum_counting_mode_still_succeeds() {
        let g = paper_fig1_graph();
        let cfg = QtkpConfig {
            m_estimate: MEstimate::QuantumCounting { precision: 8 },
            ..QtkpConfig::default()
        };
        let out = qtkp(&g, 2, 4, &cfg);
        assert_eq!(out.result, Some(VertexSet::from_iter([0, 1, 3, 4])));
    }

    #[test]
    fn given_m_overrides_census() {
        let g = paper_fig1_graph();
        let cfg = QtkpConfig {
            m_estimate: MEstimate::Given(4),
            ..QtkpConfig::default()
        };
        let out = qtkp(&g, 2, 4, &cfg);
        assert_eq!(out.m, 4);
        // Wrong M means fewer iterations (3 instead of 6) — lower but
        // still substantial success probability; verification still
        // protects correctness.
        assert_eq!(out.iterations, 3);
        if let Some(p) = out.result {
            assert!(is_kplex(&g, p, 2) && p.len() >= 4);
        }
    }

    #[test]
    fn outcome_carries_instrumentation() {
        let g = paper_fig1_graph();
        let out = qtkp(&g, 2, 4, &QtkpConfig::default());
        assert!(out.oracle_cost.total() > 0);
        assert!(out.times.total() > Duration::ZERO);
        assert!(out.qubits > 6);
        assert!(out.elapsed > Duration::ZERO);
    }

    #[test]
    fn error_probability_matches_paper_bound() {
        // π²/(4I)² with I = 6 gives ≈ 0.017; the exact simulated error is
        // below that bound.
        let g = paper_fig1_graph();
        let out = qtkp(&g, 2, 4, &QtkpConfig::default());
        let bound = std::f64::consts::PI.powi(2) / (4.0 * 6.0f64).powi(2);
        assert!(
            out.error_probability <= bound,
            "{} > {bound}",
            out.error_probability
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let g = paper_fig1_graph();
        let a = qtkp(&g, 2, 3, &QtkpConfig::default());
        let b = qtkp(&g, 2, 3, &QtkpConfig::default());
        assert_eq!(a.result, b.result);
        assert_eq!(a.measured, b.measured);
    }

    #[test]
    fn unknown_m_mode_finds_solutions_without_a_census() {
        let g = paper_fig1_graph();
        let cfg = QtkpConfig {
            m_estimate: MEstimate::Unknown { lambda: 6.0 / 5.0 },
            ..QtkpConfig::default()
        };
        let out = qtkp(&g, 2, 4, &cfg);
        let p = out.result.expect("BBHT finds the unique solution");
        assert_eq!(p, VertexSet::from_iter([0, 1, 3, 4]));
        assert_eq!(out.m, 0, "M stays unknown");
    }

    #[test]
    fn unknown_m_mode_gives_up_on_infeasible_thresholds() {
        let g = paper_fig1_graph();
        let cfg = QtkpConfig {
            m_estimate: MEstimate::Unknown { lambda: 6.0 / 5.0 },
            ..QtkpConfig::default()
        };
        let out = qtkp(&g, 2, 6, &cfg);
        assert_eq!(out.result, None);
        assert!(!out.measured.is_empty(), "it did try");
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn unknown_m_rejects_bad_lambda() {
        let g = paper_fig1_graph();
        let cfg = QtkpConfig {
            m_estimate: MEstimate::Unknown { lambda: 2.0 },
            ..QtkpConfig::default()
        };
        let _ = qtkp(&g, 2, 4, &cfg);
    }
}
