//! Figure 9 — objective cost vs runtime for qaMKP / SA / MILP / haMKP on
//! D_{20,100} (k = 3, R = 2, Δt = 1 µs).

use qmkp_bench::cost_runtime::{default_runtimes, print_cost_runtime, run_cost_vs_runtime};
use qmkp_bench::{quick_mode, Provenance};

fn main() {
    let mut prov = Provenance::start("fig9_cost_runtime");
    let (n, m) = if quick_mode() { (10, 40) } else { (20, 100) };
    prov.config("n", n);
    prov.config("m", m);
    prov.config("k", 3);
    prov.config("r", 2.0);
    prov.config("dt_us", 1.0);
    prov.config("seed", 17);
    let cr = run_cost_vs_runtime(n, m, 3, 2.0, 1.0, &default_runtimes(quick_mode()), 17);
    print_cost_runtime(
        &format!("Fig. 9 — cost vs runtime on D_{{{n},{m}}} (k = 3, R = 2, Δt = 1 µs)"),
        &cr,
    );
    prov.finish();
}
