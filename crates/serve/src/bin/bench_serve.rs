//! In-process guard that the compiled-oracle cache actually short-
//! circuits compilation: solves the paper's fig-1 instance twice through
//! one [`OracleCache`] and asserts, via the `qsim.compile.gates` event
//! counter *and* the cache's own compile count, that the warm solve
//! compiled **zero** gates. Exits non-zero (failing the CI `serve` job)
//! if a cache hit ever re-enters the compiler.
//!
//! Usage: `cargo run --release -p qmkp-serve --bin bench_serve`

use qmkp::graph::{gen::paper_fig1_graph, is_kplex};
use qmkp::{solve_with, SolveConfig};
use qmkp_obs::{RunReport, Session};
use qmkp_rt::RtContext;
use qmkp_serve::OracleCache;

fn main() {
    let session = Session::builder("bench_serve").collect().build();
    let collector = session
        .collector()
        .expect("builder().collect() installs a collector")
        .clone();

    let g = paper_fig1_graph();
    let cache = OracleCache::new(64 << 20);
    // Sequential ladder only: this guard measures compiles per solve,
    // and a portfolio race could let a classical racer win before the
    // sparse racer ever reaches the compiler.
    let config = SolveConfig {
        portfolio: Some(false),
        ..SolveConfig::default()
    };
    let ctx = RtContext::unlimited();

    let cold = solve_with(&g, 2, &config, &ctx, &cache).expect("cold solve");
    let cold_gates = collector.counter_total("qsim.compile.gates");
    let cold_compiles = cache.stats().compiles;

    let warm = solve_with(&g, 2, &config, &ctx, &cache).expect("warm solve");
    let warm_gates = collector.counter_total("qsim.compile.gates") - cold_gates;
    let warm_compiles = cache.stats().compiles - cold_compiles;
    let stats = cache.stats();

    let mut failures = Vec::new();
    if cold_gates == 0 {
        failures.push("cold solve compiled no gates (guard is not measuring)".to_string());
    }
    if warm_gates != 0 {
        failures.push(format!(
            "cache-hit solve re-entered the compiler: {warm_gates} gates compiled on the warm run"
        ));
    }
    if warm_compiles != 0 {
        failures.push(format!(
            "cache reported {warm_compiles} compiles on the warm run (expected 0)"
        ));
    }
    if stats.hits == 0 {
        failures.push("warm solve produced no cache hits".to_string());
    }
    if warm.best != cold.best {
        failures.push(format!(
            "warm and cold answers diverge: {:?} vs {:?}",
            warm.best, cold.best
        ));
    }
    if !is_kplex(&g, cold.best, 2) {
        failures.push("cold answer is not a 2-plex".to_string());
    }

    let report = RunReport::new("bench_serve")
        .config("instance", "paper_fig1")
        .config("k", 2)
        .outcome("cold_gates", cold_gates)
        .outcome("warm_gates", warm_gates)
        .outcome("cache_hits", stats.hits)
        .outcome("cache_misses", stats.misses)
        .outcome("cache_compiles", stats.compiles)
        .outcome("guard", if failures.is_empty() { "pass" } else { "fail" });
    println!("{}", report.to_json());
    session.finish_with(
        RunReport::new("bench_serve")
            .outcome("cold_gates", cold_gates)
            .outcome("warm_gates", warm_gates),
    );

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_serve guard FAILED: {f}");
        }
        std::process::exit(1);
    }
}
