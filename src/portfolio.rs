//! Solver-portfolio racing: concurrent rungs under one
//! [`CancelToken`](qmkp_rt::CancelToken).
//!
//! The degradation ladder in [`crate::solve()`] tries rungs *sequentially*
//! — a rung must fail before the next one starts, so a flaky quantum
//! rung spends its full retry budget before the classical floor gets a
//! look. The portfolio inverts that: every lane that preflights under
//! the budget is staked a private [`RtContext`] slice and raced on its
//! own thread under one shared token ([`qmkp_rt::race()`]); the **first
//! racer to return a verified k-plex wins** and cancels the rest.
//!
//! * **Fault containment** — a panicking racer becomes
//!   [`RtError::Faulted`] (`race.{name}.panic`) without touching its
//!   siblings; a racer that dies on its budget slice just loses.
//! * **Warm-start handoffs** — losers still help: the classical racer's
//!   quick GRASP best seeds the SQA racer's shot-0 replicas, and SQA's
//!   running incumbent is polled by branch & bound as a candidate lower
//!   bound while both are mid-flight. Handoffs land on the
//!   `solve.race.warm_start` counter.
//! * **Aggregate failure** — when every racer fails the caller gets
//!   [`RtError::AllRacersFailed`] naming each racer's error, in staking
//!   order. Never a panic, never silence.
//!
//! The race is accounted in the metrics registry (`solve.race.launched`
//! / `won` / `cancelled` / `faulted`, labelled per racer, plus the
//! `solve.race.win_margin_ms` gauge) and summarised on
//! [`SolveOutcome::race`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use qmkp_annealer::{sqa_qubo_ctx_observed, SqaConfig, SqaHooks};
use qmkp_classical::bnb::max_kplex_bnb_ctx;
use qmkp_classical::grasp::grasp_kplex_ctx;
use qmkp_core::{qmkp_ctx_with, OracleProvider, QmkpOutcome};
use qmkp_graph::{is_kplex, Graph, VertexSet};
use qmkp_qsim::{DenseState, SparseState};
use qmkp_rt::{race, Budget, Racer, RacerOutcome, RtContext, RtError};

use crate::solve::{SolveBackend, SolveConfig, SolveOutcome};

/// Restarts of the quick GRASP pass the exact-classical racer runs
/// before branch & bound: enough to seed the warm-start bus, cheap
/// enough not to delay the bound search.
const QUICK_GRASP_ITERATIONS: usize = 8;

/// The greedy/random balance both GRASP passes use — the same value the
/// ladder's classical floor uses.
const GRASP_ALPHA: f64 = 0.3;

/// How one [`solve`](crate::solve::solve) race went, carried on
/// [`SolveOutcome::race`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceSummary {
    /// The racer that produced the answer (`dense`, `sparse`, `sqa`,
    /// `classical`).
    pub winner: String,
    /// Every racer staked, in staking (preflight-cost) order.
    pub launched: Vec<&'static str>,
    /// Losers cancelled by the win.
    pub cancelled: usize,
    /// Losers that failed (budget slice, fault, contained panic) before
    /// the win.
    pub faulted: usize,
    /// Wall-clock gap between the winner and the next racer to finish,
    /// when a runner-up finished at all.
    pub win_margin: Option<Duration>,
    /// Warm-start handoffs that occurred (GRASP→SQA seed plus SQA→BnB
    /// incumbent adoptions).
    pub warm_starts: u64,
}

/// Locks a mutex, recovering the data from a poisoned lock: a racer
/// panic between lock and unlock is already contained by the race
/// supervisor, and a half-updated warm-start hint is still just a hint.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The warm-start bus shared by the racers: best-so-far slots written by
/// the heuristic racers and read by the others. Slots only ever grow
/// (a smaller candidate never replaces a larger one), so a late read is
/// at worst conservative.
#[derive(Default)]
struct WarmStarts {
    /// Best k-plex any GRASP restart has published.
    grasp: Mutex<Option<VertexSet>>,
    /// Best verified k-plex decoded from an SQA incumbent.
    sqa: Mutex<Option<VertexSet>>,
    /// GRASP→SQA seed handoffs (0 or 1: SQA reads once at start).
    grasp_to_sqa: AtomicU64,
    /// SQA→BnB incumbent handoffs (counted once, on the first poll that
    /// finds a candidate).
    sqa_to_bnb: AtomicU64,
}

impl WarmStarts {
    fn offer(slot: &Mutex<Option<VertexSet>>, p: VertexSet) {
        let mut best = lock_recover(slot);
        if best.is_none_or(|cur| p.len() > cur.len()) {
            *best = Some(p);
        }
    }

    /// The GRASP slot, read once by the SQA racer at startup; a hit is
    /// a GRASP→SQA handoff.
    fn take_grasp_for_sqa(&self) -> Option<VertexSet> {
        let got = *lock_recover(&self.grasp);
        if got.is_some() {
            self.grasp_to_sqa.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// The SQA slot, polled by branch & bound; the first poll that
    /// finds a candidate is an SQA→BnB handoff.
    fn sqa_incumbent_for_bnb(&self) -> Option<VertexSet> {
        let got = *lock_recover(&self.sqa);
        if got.is_some() && self.sqa_to_bnb.load(Ordering::Relaxed) == 0 {
            self.sqa_to_bnb.fetch_add(1, Ordering::Relaxed);
        }
        got
    }
}

/// What a racer hands the supervisor when it finishes first.
struct RacerFinish {
    best: VertexSet,
    backend: SolveBackend,
    quantum: Option<QmkpOutcome>,
}

/// The low 128 assignment bits as a basis-state mask — the vertex bits
/// of a QUBO assignment (slack variables beyond bit 127 are irrelevant
/// to decoding, which masks to the vertex register anyway).
fn head_bits(bools: &[bool]) -> u128 {
    bools
        .iter()
        .take(128)
        .enumerate()
        .fold(0u128, |acc, (i, &b)| acc | (u128::from(b)) << i)
}

/// Test-only scripted handoff: when `QMKP_PORTFOLIO_HANDOFF_SYNC` is
/// set, the exact-classical racer skips its own quick GRASP pass and
/// holds its branch & bound until the SQA racer has published an
/// incumbent, which then becomes the *only* initial lower bound. That
/// makes the SQA→BnB handoff deterministic (the SQA racer is never
/// seeded, because nothing publishes to the GRASP slot) and its pruning
/// effect directly measurable against a control run whose SQA racer was
/// killed by a failpoint. The variable's value is the hold cap in
/// milliseconds (default 2000) so a control run with a dead SQA racer
/// does not stall. Unset in production: the handoff is then purely
/// opportunistic.
fn scripted_handoff_cap() -> Option<Duration> {
    let raw = std::env::var("QMKP_PORTFOLIO_HANDOFF_SYNC").ok()?;
    Some(Duration::from_millis(raw.parse().unwrap_or(2000)))
}

/// The budget slice staked to one racer: the shared wall-clock deadline,
/// a private byte ceiling for the quantum racers (their preflight
/// estimate, carved greedily out of the caller's ceiling in staking
/// order), and an even split of the op ceiling across the quantum
/// racers. The SQA and classical racers' footprints are negligible next
/// to a statevector, so they ride on the deadline alone.
fn slice(deadline: Option<Duration>, max_bytes: Option<usize>, max_ops: Option<u64>) -> Budget {
    Budget {
        deadline,
        max_bytes,
        max_ops,
    }
}

/// Races every staked lane concurrently and returns the first verified
/// k-plex. See the module docs for the protocol; `rungs` is the
/// preflight's quantum-rung selection (backend, projected bytes) in
/// ladder order, which doubles as the staking order.
pub(crate) fn race_rungs(
    g: &Graph,
    k: usize,
    config: &SolveConfig,
    ctx: &RtContext,
    provider: &dyn OracleProvider,
    rungs: &[(SolveBackend, usize)],
) -> Result<SolveOutcome, RtError> {
    // A cancelled caller must not spend threads; an invalid quantum
    // configuration must surface as an error even if a heuristic racer
    // could have masked it by winning.
    ctx.check()?;
    config.qmkp.qtkp.validate()?;

    let budget = ctx.budget();
    let seed = config.qmkp.qtkp.seed;
    let warm = WarmStarts::default();

    // Stake the quantum racers: each gets its own preflight estimate as
    // a private byte ceiling, carved greedily out of the caller's
    // ceiling so concurrent statevectors cannot jointly exceed it. A
    // rung that no longer fits what is left is not launched.
    let mut staked: Vec<(SolveBackend, Option<usize>)> = Vec::new();
    let mut remaining = budget.max_bytes;
    for &(backend, projected) in rungs {
        match remaining {
            None => staked.push((backend, None)),
            Some(rem) if projected <= rem => {
                remaining = Some(rem - projected);
                staked.push((backend, Some(projected)));
            }
            Some(_) => {}
        }
    }
    let ops_each = budget
        .max_ops
        .map(|total| (total / staked.len().max(1) as u64).max(1));

    let mut racers: Vec<Racer<'_, RacerFinish>> = Vec::new();
    let mut launched: Vec<&'static str> = Vec::new();

    for &(backend, bytes) in &staked {
        launched.push(backend.name());
        racers.push(Racer::new(
            backend.name(),
            slice(budget.deadline, bytes, ops_each),
            move |rctx: &RtContext| {
                // Single attempt, no retry loop: inside a race the
                // sibling racers *are* the recovery mechanism, so a
                // faulting rung loses its lane immediately (and is
                // accounted `solve.race.faulted`) instead of spending
                // its slice on backoff while the others already run.
                let attempt = match backend {
                    SolveBackend::Dense => {
                        qmkp_ctx_with::<DenseState>(g, k, &config.qmkp, rctx, None, provider)
                    }
                    _ => qmkp_ctx_with::<SparseState>(g, k, &config.qmkp, rctx, None, provider),
                };
                let out = attempt.map_err(|interrupted| interrupted.error)?;
                if !is_kplex(g, out.best, k) {
                    return Err(RtError::Faulted {
                        site: format!("race.{}.verify", backend.name()),
                    });
                }
                Ok(RacerFinish {
                    best: out.best,
                    backend,
                    quantum: Some(out),
                })
            },
        ));
    }

    launched.push(SolveBackend::Sqa.name());
    let warm_ref = &warm;
    racers.push(Racer::new(
        SolveBackend::Sqa.name(),
        slice(budget.deadline, None, None),
        move |rctx: &RtContext| run_sqa_racer(g, k, config, seed, warm_ref, rctx),
    ));

    launched.push("classical");
    racers.push(Racer::new(
        "classical",
        slice(budget.deadline, None, None),
        move |rctx: &RtContext| run_classical_racer(g, k, config, seed, warm_ref, rctx),
    ));

    for name in &launched {
        qmkp_obs::metrics::counter("solve.race.launched", &[("racer", name)], 1);
    }
    qmkp_obs::counter("solve.race.runs", 1);

    match race(racers, ctx.token()) {
        Ok(win) => {
            let mut cancelled = 0;
            let mut faulted = 0;
            for report in &win.reports {
                let racer = report.name.as_str();
                match &report.outcome {
                    RacerOutcome::Won => {
                        qmkp_obs::metrics::counter("solve.race.won", &[("racer", racer)], 1);
                    }
                    RacerOutcome::Cancelled => {
                        cancelled += 1;
                        qmkp_obs::metrics::counter("solve.race.cancelled", &[("racer", racer)], 1);
                    }
                    RacerOutcome::Failed(_) => {
                        faulted += 1;
                        qmkp_obs::metrics::counter("solve.race.faulted", &[("racer", racer)], 1);
                    }
                }
            }
            let grasp_to_sqa = warm.grasp_to_sqa.load(Ordering::Relaxed);
            let sqa_to_bnb = warm.sqa_to_bnb.load(Ordering::Relaxed);
            if grasp_to_sqa > 0 {
                qmkp_obs::metrics::counter(
                    "solve.race.warm_start",
                    &[("handoff", "grasp-to-sqa")],
                    grasp_to_sqa,
                );
            }
            if sqa_to_bnb > 0 {
                qmkp_obs::metrics::counter(
                    "solve.race.warm_start",
                    &[("handoff", "sqa-to-bnb")],
                    sqa_to_bnb,
                );
            }
            if let Some(margin) = win.win_margin {
                qmkp_obs::metrics::gauge(
                    "solve.race.win_margin_ms",
                    &[],
                    margin.as_secs_f64() * 1e3,
                );
            }
            qmkp_obs::counter("solve.race.won", 1);
            let finish = win.value;
            debug_assert!(is_kplex(g, finish.best, k));
            Ok(SolveOutcome {
                best: finish.best,
                backend: finish.backend,
                degraded: false,
                degraded_because: None,
                quantum: finish.quantum,
                race: Some(RaceSummary {
                    winner: win.winner,
                    launched,
                    cancelled,
                    faulted,
                    win_margin: win.win_margin,
                    warm_starts: grasp_to_sqa + sqa_to_bnb,
                }),
            })
        }
        Err(RtError::AllRacersFailed { failures }) => {
            for (racer, _) in &failures {
                qmkp_obs::metrics::counter("solve.race.faulted", &[("racer", racer.as_str())], 1);
            }
            qmkp_obs::counter("solve.race.all_failed", 1);
            Err(RtError::AllRacersFailed { failures })
        }
        Err(e) => Err(e),
    }
}

/// The SQA racer: QUBO-encode the instance, seed shot 0 from the GRASP
/// slot when one is already published, publish every decoded-and-
/// verified incumbent to the SQA slot, and return the polished final
/// sample — verified, like every racer's answer.
fn run_sqa_racer(
    g: &Graph,
    k: usize,
    config: &SolveConfig,
    seed: u64,
    warm: &WarmStarts,
    rctx: &RtContext,
) -> Result<RacerFinish, RtError> {
    let qubo = qmkp_qubo::MkpQubo::new(g, qmkp_qubo::MkpQuboParams { k, r: 2.0 });
    let sqa_config = config.sqa.clone().unwrap_or_else(|| SqaConfig {
        seed,
        ..SqaConfig::default()
    });
    // The slack registers sit above the vertex bits; encoding a seed
    // needs the whole assignment to fit the u128 the encoder works in.
    let warm_bits: Option<Vec<bool>> = if qubo.num_vars() <= 128 {
        warm.take_grasp_for_sqa().map(|p| {
            let bits = qubo.encode_feasible(p);
            (0..qubo.num_vars()).map(|i| (bits >> i) & 1 == 1).collect()
        })
    } else {
        None
    };
    let mut publish = |bits: &[bool], _energy: f64| {
        let polished = qubo.decode_polished(head_bits(bits));
        if !polished.is_empty() && is_kplex(g, polished, k) {
            WarmStarts::offer(&warm.sqa, polished);
        }
    };
    let hooks = SqaHooks {
        warm_start: warm_bits.as_deref(),
        on_incumbent: Some(&mut publish),
    };
    match sqa_qubo_ctx_observed(&qubo.model, &sqa_config, rctx, None, hooks) {
        Ok(out) => {
            let best = qubo.decode_polished(head_bits(&out.best));
            if !best.is_empty() && is_kplex(g, best, k) {
                Ok(RacerFinish {
                    best,
                    backend: SolveBackend::Sqa,
                    quantum: None,
                })
            } else {
                Err(RtError::Faulted {
                    site: "race.sqa.verify".into(),
                })
            }
        }
        Err(interrupted) => Err(interrupted.error),
    }
}

/// The classical racer. Small graphs: a quick GRASP pass (published to
/// the warm-start bus for the SQA racer) seeds an exact branch & bound
/// that polls the SQA slot for tighter lower bounds while it searches.
/// Large graphs: the full GRASP run, still publishing improvements.
fn run_classical_racer(
    g: &Graph,
    k: usize,
    config: &SolveConfig,
    seed: u64,
    warm: &WarmStarts,
    rctx: &RtContext,
) -> Result<RacerFinish, RtError> {
    if g.n() <= config.exact_threshold() {
        let lower = if let Some(cap) = scripted_handoff_cap() {
            // Scripted race (tests): the SQA slot is the sole bound
            // source; a dead SQA racer leaves branch & bound unbounded.
            let start = std::time::Instant::now();
            while lock_recover(&warm.sqa).is_none() && start.elapsed() < cap {
                rctx.check()?;
                std::thread::sleep(Duration::from_millis(1));
            }
            warm.sqa_incumbent_for_bnb()
        } else {
            let mut publish = |p: VertexSet| WarmStarts::offer(&warm.grasp, p);
            let quick = grasp_kplex_ctx(
                g,
                k,
                QUICK_GRASP_ITERATIONS,
                GRASP_ALPHA,
                seed,
                rctx,
                Some(&mut publish),
            )?;
            Some(match warm.sqa_incumbent_for_bnb() {
                Some(hint) if hint.len() > quick.len() => hint,
                _ => quick,
            })
        };
        let poll = || warm.sqa_incumbent_for_bnb();
        let out = max_kplex_bnb_ctx(g, k, rctx, lower, Some(&poll))?;
        qmkp_obs::metrics::gauge("solve.race.bnb_nodes", &[], out.nodes as f64);
        Ok(RacerFinish {
            best: out.best,
            backend: SolveBackend::ClassicalExact,
            quantum: None,
        })
    } else {
        let mut publish = |p: VertexSet| WarmStarts::offer(&warm.grasp, p);
        let best = grasp_kplex_ctx(
            g,
            k,
            config.grasp_iterations(),
            GRASP_ALPHA,
            seed,
            rctx,
            Some(&mut publish),
        )?;
        Ok(RacerFinish {
            best,
            backend: SolveBackend::ClassicalHeuristic,
            quantum: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_bits_folds_the_low_bits_and_ignores_the_tail() {
        assert_eq!(head_bits(&[]), 0);
        assert_eq!(head_bits(&[true, false, true]), 0b101);
        let mut long = vec![false; 200];
        long[0] = true;
        long[127] = true;
        long[150] = true; // beyond u128: ignored
        assert_eq!(head_bits(&long), 1 | (1u128 << 127));
    }

    #[test]
    fn warm_start_slots_only_grow() {
        let warm = WarmStarts::default();
        WarmStarts::offer(&warm.grasp, VertexSet::from_iter([1, 2, 3]));
        WarmStarts::offer(&warm.grasp, VertexSet::from_iter([4]));
        assert_eq!(lock_recover(&warm.grasp).unwrap().len(), 3);
        WarmStarts::offer(&warm.grasp, VertexSet::from_iter([0, 1, 2, 3]));
        assert_eq!(lock_recover(&warm.grasp).unwrap().len(), 4);
    }

    #[test]
    fn handoff_counters_fire_once_per_direction() {
        let warm = WarmStarts::default();
        assert!(warm.take_grasp_for_sqa().is_none());
        assert!(warm.sqa_incumbent_for_bnb().is_none());
        assert_eq!(warm.grasp_to_sqa.load(Ordering::Relaxed), 0);
        assert_eq!(warm.sqa_to_bnb.load(Ordering::Relaxed), 0);

        WarmStarts::offer(&warm.grasp, VertexSet::from_iter([0, 1]));
        WarmStarts::offer(&warm.sqa, VertexSet::from_iter([2, 3]));
        assert!(warm.take_grasp_for_sqa().is_some());
        assert_eq!(warm.grasp_to_sqa.load(Ordering::Relaxed), 1);
        assert!(warm.sqa_incumbent_for_bnb().is_some());
        assert!(warm.sqa_incumbent_for_bnb().is_some());
        assert_eq!(
            warm.sqa_to_bnb.load(Ordering::Relaxed),
            1,
            "repeated polls count one handoff"
        );
    }
}
