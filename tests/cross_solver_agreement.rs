//! Cross-solver agreement: every exact solver in the workspace — naive
//! enumeration, branch & bound, BS branch-and-search, the gate-based qMKP,
//! the QUBO brute force and the MILP branch & bound — must find maximum
//! k-plexes of identical size, and the heuristics must never beat them.

use qmkp::annealer::{anneal_qubo, hybrid_solve, sqa_qubo, HybridConfig, SaConfig, SqaConfig};
use qmkp::classical::{grasp_kplex, max_kplex_bnb, max_kplex_bs, max_kplex_naive};
use qmkp::core::{qmkp as run_qmkp, QmkpConfig};
use qmkp::graph::gen::gnm;
use qmkp::graph::is_kplex;
use qmkp::milp::{minimize_qubo, BnbConfig};
use qmkp::qubo::{MkpQubo, MkpQuboParams};
use std::time::Duration;

#[test]
fn all_exact_solvers_agree_on_random_instances() {
    for seed in 0..4 {
        let g = gnm(8, 13, seed).unwrap();
        for k in 1..=3 {
            let naive = max_kplex_naive(&g, k);
            let bnb = max_kplex_bnb(&g, k);
            let (bs, _) = max_kplex_bs(&g, k);
            let quantum = run_qmkp(&g, k, &QmkpConfig::default());
            assert_eq!(naive.len(), bnb.len(), "seed={seed} k={k} (bnb)");
            assert_eq!(naive.len(), bs.len(), "seed={seed} k={k} (bs)");
            assert_eq!(naive.len(), quantum.best.len(), "seed={seed} k={k} (qmkp)");
            assert!(is_kplex(&g, quantum.best, k));
        }
    }
}

#[test]
fn qubo_milp_and_annealers_reach_the_same_optimum() {
    let g = gnm(8, 16, 9).unwrap();
    let k = 2;
    let opt = max_kplex_naive(&g, k).len() as f64;
    let mq = MkpQubo::new(&g, MkpQuboParams { k, r: 2.0 });

    // MILP branch & bound proves the optimum.
    let milp = minimize_qubo(&mq.model, &BnbConfig::default());
    assert!(milp.proven_optimal);
    assert!(
        (milp.best_energy + opt).abs() < 1e-9,
        "MILP energy {}",
        milp.best_energy
    );

    // SA reaches it with a modest budget.
    let sa = anneal_qubo(
        &mq.model,
        &SaConfig {
            shots: 300,
            sweeps: 25,
            ..SaConfig::default()
        },
    );
    assert!(
        (sa.best_energy + opt).abs() < 1e-9,
        "SA energy {}",
        sa.best_energy
    );

    // SQA reaches it as well.
    let sqa = sqa_qubo(
        &mq.model,
        &SqaConfig {
            shots: 100,
            sweeps: 40,
            ..SqaConfig::default()
        },
    );
    assert!(
        (sqa.best_energy + opt).abs() < 1e-9,
        "SQA energy {}",
        sqa.best_energy
    );

    // The hybrid's contract: (near-)optimal within its minimum runtime.
    let hy = hybrid_solve(
        &mq.model,
        &HybridConfig {
            min_runtime: Duration::from_millis(60),
            seed: 4,
        },
    );
    assert!(
        (hy.best_energy + opt).abs() < 1e-9,
        "hybrid energy {}",
        hy.best_energy
    );
}

#[test]
fn heuristics_never_exceed_the_optimum_and_stay_feasible() {
    for seed in 0..3 {
        let g = gnm(10, 24, seed).unwrap();
        for k in 1..=3 {
            let opt = max_kplex_bnb(&g, k).len();
            let h = grasp_kplex(&g, k, 15, 0.3, seed);
            assert!(is_kplex(&g, h, k));
            assert!(h.len() <= opt);
        }
    }
}

#[test]
fn reduction_preserves_optimality_end_to_end() {
    for seed in 0..3 {
        let g = gnm(9, 17, seed + 50).unwrap();
        let plain = run_qmkp(&g, 2, &QmkpConfig::default());
        let reduced = run_qmkp(
            &g,
            2,
            &QmkpConfig {
                use_reduction: true,
                ..QmkpConfig::default()
            },
        );
        assert_eq!(plain.best.len(), reduced.best.len(), "seed={seed}");
        assert!(is_kplex(&g, reduced.best, 2));
    }
}
