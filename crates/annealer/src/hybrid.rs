//! A classical portfolio solver standing in for the D-Wave **Hybrid**
//! BQM service (the paper's "haMKP").
//!
//! The hybrid service's observable contract, per the paper: it requires a
//! minimum runtime (3 seconds) and "almost always finds a solution within
//! this period". We reproduce that contract with a portfolio: steepest-
//! descent multi-starts, simulated annealing at several temperature
//! ladders, and a tabu-flavoured kick, looping until the runtime budget
//! is spent and returning the best incumbent.

use crate::result::AnnealOutcome;
use crate::sa::{anneal_qubo, SaConfig};
use qmkp_qubo::QuboModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration for [`hybrid_solve`].
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Minimum runtime; the solver keeps refining until this elapses.
    /// (The real service enforces ≥ 3 s; tests use milliseconds.)
    pub min_runtime: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            min_runtime: Duration::from_secs(3),
            seed: 0,
        }
    }
}

/// Runs the hybrid portfolio on a QUBO.
pub fn hybrid_solve(q: &QuboModel, config: &HybridConfig) -> AnnealOutcome {
    let start = Instant::now();
    let n = q.num_vars();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best: Vec<bool> = vec![false; n];
    let mut best_energy = q.energy(&best);
    let mut shot_energies = Vec::new();
    let mut trace = vec![(Duration::ZERO, best_energy)];

    let mut round = 0u64;
    loop {
        // Leg 1: steepest descent from a random start.
        let mut x: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        descend(q, &mut x);
        let e = q.energy(&x);
        shot_energies.push(e);
        if e < best_energy {
            best_energy = e;
            best = x.clone();
            trace.push((start.elapsed(), e));
        }

        // Leg 2: SA burst seeded differently each round, temperature
        // ladder widening with the round number.
        let sa = anneal_qubo(
            q,
            &SaConfig {
                shots: 4,
                sweeps: 10 + (round as usize % 4) * 10,
                beta_hot: 0.05,
                beta_cold: 20.0,
                seed: config.seed ^ (round.wrapping_mul(0x9e37_79b9)),
            },
        );
        shot_energies.push(sa.best_energy);
        if sa.best_energy < best_energy {
            best_energy = sa.best_energy;
            best = sa.best.clone();
            trace.push((start.elapsed(), sa.best_energy));
        }

        // Leg 3: tabu-flavoured kick of the incumbent — flip a random
        // small subset, then descend.
        let mut kicked = best.clone();
        let kicks = 1 + (rng.gen::<usize>() % 3.max(n / 8 + 1));
        for _ in 0..kicks {
            let i = rng.gen_range(0..n);
            kicked[i] = !kicked[i];
        }
        descend(q, &mut kicked);
        let e = q.energy(&kicked);
        shot_energies.push(e);
        if e < best_energy {
            best_energy = e;
            best = kicked;
            trace.push((start.elapsed(), e));
        }

        round += 1;
        if start.elapsed() >= config.min_runtime {
            break;
        }
    }

    AnnealOutcome {
        best,
        best_energy,
        shot_energies,
        trace,
        elapsed: start.elapsed(),
    }
}

/// Steepest single-flip descent to a local minimum.
fn descend(q: &QuboModel, x: &mut [bool]) {
    let adj = q.neighbor_lists();
    let mut field: Vec<f64> = (0..x.len())
        .map(|i| {
            q.linear(i)
                + adj[i]
                    .iter()
                    .filter(|&&(j, _)| x[j])
                    .map(|&(_, c)| c)
                    .sum::<f64>()
        })
        .collect();
    loop {
        let mut best_move: Option<(usize, f64)> = None;
        for i in 0..x.len() {
            let delta = if x[i] { -field[i] } else { field[i] };
            if delta < -1e-12 && best_move.is_none_or(|(_, d)| delta < d) {
                best_move = Some((i, delta));
            }
        }
        let Some((i, _)) = best_move else { return };
        x[i] = !x[i];
        let sign = if x[i] { 1.0 } else { -1.0 };
        for &(j, c) in &adj[i] {
            field[j] += sign * c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_qubo::{MkpQubo, MkpQuboParams};

    fn quick(seed: u64) -> HybridConfig {
        HybridConfig {
            min_runtime: Duration::from_millis(30),
            seed,
        }
    }

    #[test]
    fn finds_optimum_of_small_models_fast() {
        let g = qmkp_graph::gen::paper_fig1_graph();
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 2, r: 2.0 });
        let out = hybrid_solve(&mq.model, &quick(1));
        assert!(
            (out.best_energy + 4.0).abs() < 1e-9,
            "got {}",
            out.best_energy
        );
    }

    #[test]
    fn respects_minimum_runtime() {
        let g = qmkp_graph::gen::gnm(8, 12, 0).unwrap();
        let mq = MkpQubo::new(&g, MkpQuboParams::default());
        let budget = Duration::from_millis(50);
        let out = hybrid_solve(
            &mq.model,
            &HybridConfig {
                min_runtime: budget,
                seed: 2,
            },
        );
        assert!(out.elapsed >= budget);
    }

    #[test]
    fn trace_is_improving_and_ends_at_best() {
        let g = qmkp_graph::gen::gnm(10, 22, 1).unwrap();
        let mq = MkpQubo::new(&g, MkpQuboParams::default());
        let out = hybrid_solve(&mq.model, &quick(3));
        for w in out.trace.windows(2) {
            assert!(w[1].1 < w[0].1);
        }
        assert_eq!(out.trace.last().unwrap().1, out.best_energy);
    }

    #[test]
    fn descend_reaches_a_local_minimum() {
        let g = qmkp_graph::gen::gnm(8, 14, 4).unwrap();
        let mq = MkpQubo::new(&g, MkpQuboParams::default());
        let q = &mq.model;
        let mut x = vec![false; q.num_vars()];
        descend(q, &mut x);
        for i in 0..q.num_vars() {
            assert!(q.flip_delta(&x, i) >= -1e-9, "flip {i} still improves");
        }
    }
}
