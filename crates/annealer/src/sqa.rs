//! Simulated quantum annealing (path-integral Monte Carlo).
//!
//! The stand-in for the D-Wave QPU: the transverse-field Ising Hamiltonian
//!
//! ```text
//! H(t) = A(t)·Σ σ_i^x  +  B(t)·( Σ h_i σ_i^z + Σ J_ij σ_i^z σ_j^z )
//! ```
//!
//! is simulated by the standard Suzuki-Trotter mapping onto `P` coupled
//! classical replicas ("imaginary-time slices"): slice `p` carries the
//! problem couplings scaled by `1/P`, and consecutive slices are coupled
//! ferromagnetically with
//!
//! ```text
//! J⊥(Γ) = (1/2β) · ln coth(β·Γ/P)
//! ```
//!
//! which strengthens as the transverse field `Γ` anneals to zero, freezing
//! the replicas into one classical configuration. The per-shot annealing
//! time `Δt` of the paper maps to PIMC sweeps ([`SqaConfig::from_anneal_time`]);
//! shots are restarts, so total runtime is `t = Δt · s` exactly as in
//! Section "Annealing time Δt of qaMKP".

use crate::result::AnnealOutcome;
use crate::sa::SweepMeter;
use qmkp_qubo::{IsingModel, QuboModel};
use qmkp_rt::checkpoint::{
    bools_to_json, f64_to_json, f64s_to_json, parse_object, require, require_bools,
    require_f64_bits, require_f64s, require_u64,
};
use qmkp_rt::{derive_seed, Checkpoint, Interrupted, RtContext, RtError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// PIMC sweeps that stand in for one microsecond of annealing time.
pub const SWEEPS_PER_MICROSECOND: usize = 8;

/// Configuration for [`sqa_qubo`].
#[derive(Debug, Clone)]
pub struct SqaConfig {
    /// Independent anneals (the shot count `s`).
    pub shots: usize,
    /// PIMC sweeps per shot (the annealing time `Δt`).
    pub sweeps: usize,
    /// Trotter slices `P`.
    pub trotter_slices: usize,
    /// Inverse temperature of the PIMC.
    pub beta: f64,
    /// Initial transverse field `Γ₀`.
    pub gamma_start: f64,
    /// Final transverse field `Γ₁` (> 0).
    pub gamma_end: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SqaConfig {
    fn default() -> Self {
        SqaConfig {
            shots: 50,
            sweeps: 8,
            trotter_slices: 16,
            beta: 8.0,
            gamma_start: 3.0,
            gamma_end: 0.05,
            seed: 0,
        }
    }
}

impl SqaConfig {
    /// The paper's runtime accounting: a per-shot annealing time in
    /// microseconds plus a shot count.
    pub fn from_anneal_time(dt_microseconds: f64, shots: usize) -> Self {
        SqaConfig {
            shots,
            sweeps: ((dt_microseconds * SWEEPS_PER_MICROSECOND as f64).round() as usize).max(1),
            ..SqaConfig::default()
        }
    }
}

/// The transverse field at sweep `sweep` and the slice coupling `J⊥` it
/// induces (the slice-coupling energy term is −J⊥·s·s′, J⊥ > 0).
fn transverse_schedule(config: &SqaConfig, sweep: usize) -> (f64, f64) {
    let f = if config.sweeps == 1 {
        1.0
    } else {
        sweep as f64 / (config.sweeps - 1) as f64
    };
    let gamma = config.gamma_start + f * (config.gamma_end - config.gamma_start);
    let x = (config.beta * gamma / config.trotter_slices as f64).tanh();
    (gamma, -(0.5 / config.beta) * x.ln())
}

/// One PIMC sweep over every slice and spin.
fn pimc_sweep(
    h: &[f64],
    adj: &[Vec<(usize, f64)>],
    beta: f64,
    inv_p: f64,
    j_perp: f64,
    replicas: &mut [Vec<i8>],
    rng: &mut StdRng,
) {
    let p = replicas.len();
    let n = h.len();
    for slice in 0..p {
        let up = (slice + 1) % p;
        let down = (slice + p - 1) % p;
        for i in 0..n {
            let s = replicas[slice][i] as f64;
            let mut local = h[i];
            for &(j, c) in &adj[i] {
                local += c * replicas[slice][j] as f64;
            }
            let time_nbrs = (replicas[up][i] + replicas[down][i]) as f64;
            // The classical energy carries s·[(1/P)·local − J⊥·tn];
            // flipping s → −s changes it by −2s·[…].
            let delta = -2.0 * s * (inv_p * local - j_perp * time_nbrs);
            if delta <= 0.0 || rng.gen::<f64>() < (-beta * delta).exp() {
                replicas[slice][i] = -replicas[slice][i];
            }
        }
    }
}

/// The best classical solution among the Trotter slices.
fn best_slice(q: &QuboModel, replicas: &[Vec<i8>]) -> (f64, Vec<bool>) {
    let mut shot_best = f64::INFINITY;
    let mut shot_best_x: Vec<bool> = Vec::new();
    for slice in replicas {
        let x: Vec<bool> = slice.iter().map(|&s| s > 0).collect();
        let e = q.energy(&x);
        if e < shot_best {
            shot_best = e;
            shot_best_x = x;
        }
    }
    (shot_best, shot_best_x)
}

/// Runs simulated quantum annealing on a QUBO (converted to Ising
/// internally); energies reported are logical QUBO energies.
///
/// # Panics
/// Panics on zero shots/sweeps/slices or a non-positive field schedule.
pub fn sqa_qubo(q: &QuboModel, config: &SqaConfig) -> AnnealOutcome {
    assert!(
        config.shots > 0 && config.sweeps > 0,
        "need shots and sweeps"
    );
    assert!(config.trotter_slices >= 2, "need at least 2 Trotter slices");
    assert!(
        config.gamma_start > config.gamma_end && config.gamma_end > 0.0,
        "transverse field must anneal downward to a positive value"
    );
    let span = qmkp_obs::span("anneal.sqa.run");
    let traced = qmkp_obs::enabled_for("anneal.sqa");
    let meter = SweepMeter::new("sqa");
    let ising = IsingModel::from_qubo(q);
    let n = ising.num_spins();
    let p = config.trotter_slices;
    let adj = ising.neighbor_lists();
    let inv_p = 1.0 / p as f64;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start = Instant::now();

    let mut best: Vec<bool> = vec![false; n];
    let mut best_energy = f64::INFINITY;
    let mut shot_energies = Vec::with_capacity(config.shots);
    let mut trace = Vec::new();

    for _ in 0..config.shots {
        // replicas[p][i] ∈ {−1, +1}
        let mut replicas: Vec<Vec<i8>> = (0..p)
            .map(|_| (0..n).map(|_| if rng.gen() { 1i8 } else { -1 }).collect())
            .collect();

        for sweep in 0..config.sweeps {
            let (gamma, j_perp) = transverse_schedule(config, sweep);
            let sweep_start = meter.on().then(Instant::now);
            pimc_sweep(
                &ising.h,
                &adj,
                config.beta,
                inv_p,
                j_perp,
                &mut replicas,
                &mut rng,
            );
            if let Some(t0) = sweep_start {
                meter.time(t0.elapsed());
            }
            if traced {
                qmkp_obs::gauge("anneal.sqa.gamma", gamma);
            }
        }

        // Each slice is a candidate classical solution; keep the best.
        let (shot_best, shot_best_x) = best_slice(q, &replicas);
        // PIMC sweeps carry no scalar energy, so the delta is recorded
        // at shot granularity: this shot's best against the running best.
        meter.delta(best_energy, shot_best);
        if traced {
            qmkp_obs::counter("anneal.sqa.shots", 1);
            qmkp_obs::gauge("anneal.sqa.shot_energy", shot_best);
        }
        shot_energies.push(shot_best);
        if shot_best < best_energy {
            best_energy = shot_best;
            best = shot_best_x;
            trace.push((start.elapsed(), shot_best));
        }
    }

    qmkp_obs::gauge("anneal.sqa.best_energy", best_energy);
    span.finish();
    AnnealOutcome {
        best,
        best_energy,
        shot_energies,
        trace,
        elapsed: start.elapsed(),
    }
}

/// A resumable position inside a budgeted SQA run, taken at PIMC-sweep
/// boundaries. The Trotter replicas fully determine the Markov state, and
/// [`sqa_qubo_ctx`] derives each sweep's RNG from `(seed, shot, sweep)`,
/// so resuming replays the remaining sweeps exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SqaCheckpoint {
    /// Shot being annealed when the run was interrupted.
    pub shot: usize,
    /// Next sweep to run within that shot.
    pub sweep: usize,
    /// Trotter slices of the interrupted shot (`true` ⇔ spin +1).
    pub replicas: Vec<Vec<bool>>,
    /// Best assignment over completed shots.
    pub best: Vec<bool>,
    /// Energy of `best` (`f64::INFINITY` before the first completed shot).
    pub best_energy: f64,
    /// Final energies of completed shots.
    pub shot_energies: Vec<f64>,
}

impl Checkpoint for SqaCheckpoint {
    fn to_json(&self) -> String {
        let mut replicas = String::from("[");
        for (i, slice) in self.replicas.iter().enumerate() {
            if i > 0 {
                replicas.push_str(", ");
            }
            replicas.push_str(&bools_to_json(slice));
        }
        replicas.push(']');
        format!(
            "{{\"shot\": {}, \"sweep\": {}, \"replicas\": {}, \"best\": {}, \
             \"best_energy\": {}, \"shot_energies\": {}}}",
            self.shot,
            self.sweep,
            replicas,
            bools_to_json(&self.best),
            f64_to_json(self.best_energy),
            f64s_to_json(&self.shot_energies),
        )
    }

    fn from_json(s: &str) -> Result<Self, RtError> {
        let obj = parse_object(s)?;
        let slices = require(&obj, "replicas")?
            .as_array()
            .ok_or_else(|| RtError::InvalidConfig("checkpoint: replicas is not an array".into()))?;
        let mut replicas = Vec::with_capacity(slices.len());
        for slice in slices {
            let raw = slice.as_str().ok_or_else(|| {
                RtError::InvalidConfig("checkpoint: replica slice is not a string".into())
            })?;
            replicas.push(
                raw.chars()
                    .map(|c| match c {
                        '0' => Ok(false),
                        '1' => Ok(true),
                        _ => Err(RtError::InvalidConfig(
                            "checkpoint: replica slice is not a 0/1 string".into(),
                        )),
                    })
                    .collect::<Result<Vec<bool>, RtError>>()?,
            );
        }
        Ok(SqaCheckpoint {
            shot: require_u64(&obj, "shot")? as usize,
            sweep: require_u64(&obj, "sweep")? as usize,
            replicas,
            best: require_bools(&obj, "best")?,
            best_energy: require_f64_bits(&obj, "best_energy")?,
            shot_energies: require_f64s(&obj, "shot_energies")?,
        })
    }
}

fn validate_sqa(config: &SqaConfig) -> Result<(), RtError> {
    if config.shots == 0 || config.sweeps == 0 {
        return Err(RtError::InvalidConfig("sqa: need shots and sweeps".into()));
    }
    if config.trotter_slices < 2 {
        return Err(RtError::InvalidConfig(
            "sqa: need at least 2 Trotter slices".into(),
        ));
    }
    if !(config.gamma_start > config.gamma_end && config.gamma_end > 0.0) {
        return Err(RtError::InvalidConfig(
            "sqa: transverse field must anneal downward to a positive value".into(),
        ));
    }
    Ok(())
}

/// Runs simulated quantum annealing under an execution-runtime context.
///
/// Cancellation and the budget are polled at PIMC-sweep granularity (plus
/// the `annealer.sqa.sweep` failpoint). Shot `s` draws its starting
/// replicas from `derive_seed(seed, s, u64::MAX)` and sweep `w` of shot
/// `s` from `derive_seed(seed, s, w)`, so an interrupted run resumes from
/// its [`SqaCheckpoint`] bit-identically (trace timestamps aside).
///
/// Fresh-start runs under a deadline pace their sweep schedule from one
/// probe PIMC sweep (see [`crate::pacing`]), reported via the
/// `anneal.sqa.paced_sweeps` gauge.
///
/// # Errors
/// [`Interrupted`] pairing the [`RtError`] with the sweep-boundary
/// checkpoint; for a rejected configuration the checkpoint is empty.
pub fn sqa_qubo_ctx(
    q: &QuboModel,
    config: &SqaConfig,
    ctx: &RtContext,
    resume: Option<&SqaCheckpoint>,
) -> Result<AnnealOutcome, Interrupted<SqaCheckpoint>> {
    sqa_qubo_ctx_observed(q, config, ctx, resume, SqaHooks::default())
}

/// An incumbent callback: `(assignment, energy)` of a new running best.
pub type IncumbentSink<'a> = &'a mut dyn FnMut(&[bool], f64);

/// Warm-start and incumbent-export hooks for a portfolio SQA run.
///
/// Both default to off, in which case [`sqa_qubo_ctx_observed`] is
/// bit-identical to [`sqa_qubo_ctx`].
#[derive(Default)]
pub struct SqaHooks<'a> {
    /// Seeds every Trotter slice of shot 0 with this assignment instead
    /// of the derived random init (fresh starts only — a resumed run
    /// keeps its checkpointed replicas; ignored when the length does not
    /// match the model). The portfolio feeds GRASP's best solution in
    /// here.
    pub warm_start: Option<&'a [bool]>,
    /// Called with `(assignment, energy)` every time the running best
    /// strictly improves, including improvements restored from a resume
    /// checkpoint's completed shots. The portfolio forwards these to
    /// BnB as candidate lower bounds while both racers are running.
    pub on_incumbent: Option<IncumbentSink<'a>>,
}

impl std::fmt::Debug for SqaHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SqaHooks")
            .field("warm_start", &self.warm_start)
            .field("on_incumbent", &self.on_incumbent.is_some())
            .finish()
    }
}

/// [`sqa_qubo_ctx`] with portfolio hooks: a warm-start seed for shot 0
/// and an incumbent-export callback. See [`SqaHooks`].
///
/// # Errors
/// [`Interrupted`] pairing the [`RtError`] with the sweep-boundary
/// checkpoint; for a rejected configuration the checkpoint is empty.
pub fn sqa_qubo_ctx_observed(
    q: &QuboModel,
    config: &SqaConfig,
    ctx: &RtContext,
    resume: Option<&SqaCheckpoint>,
    mut hooks: SqaHooks<'_>,
) -> Result<AnnealOutcome, Interrupted<SqaCheckpoint>> {
    let empty = || SqaCheckpoint {
        shot: 0,
        sweep: 0,
        replicas: Vec::new(),
        best: Vec::new(),
        best_energy: f64::INFINITY,
        shot_energies: Vec::new(),
    };
    if let Err(e) = validate_sqa(config) {
        return Err(Interrupted::new(e, empty()));
    }
    let span = qmkp_obs::span("anneal.sqa.run");
    let traced = qmkp_obs::enabled_for("anneal.sqa");
    let meter = SweepMeter::new("sqa");
    let ising = IsingModel::from_qubo(q);
    let n = ising.num_spins();
    let p = config.trotter_slices;
    let adj = ising.neighbor_lists();
    let inv_p = 1.0 / p as f64;
    let start = Instant::now();

    let mut paced = config.clone();
    if resume.is_none() {
        if let Some(remaining) = crate::pacing::remaining_deadline(ctx) {
            // Probe one PIMC sweep on a clone of the shot-0 replicas; the
            // real shot 0 re-derives the same init, so the probe leaves
            // no trace in the results beyond the effective sweep count.
            let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, 0, u64::MAX));
            let mut replicas: Vec<Vec<i8>> = (0..p)
                .map(|_| (0..n).map(|_| if rng.gen() { 1i8 } else { -1 }).collect())
                .collect();
            let (_, j_perp) = transverse_schedule(config, 0);
            let probe = Instant::now();
            pimc_sweep(
                &ising.h,
                &adj,
                config.beta,
                inv_p,
                j_perp,
                &mut replicas,
                &mut rng,
            );
            let per_sweep = probe.elapsed();
            paced.sweeps = crate::pacing::paced_sweeps(
                remaining.saturating_sub(per_sweep),
                per_sweep,
                config.shots,
                config.sweeps,
            );
            qmkp_obs::gauge("anneal.sqa.paced_sweeps", paced.sweeps as f64);
        }
    }
    let config = &paced;

    let mut best: Vec<bool> = vec![false; n];
    let mut best_energy = f64::INFINITY;
    let mut shot_energies = Vec::with_capacity(config.shots);
    let mut trace = Vec::new();
    let mut start_shot = 0;
    let mut start_sweep = 0;
    let mut resumed_replicas: Option<Vec<Vec<i8>>> = None;

    if let Some(cp) = resume {
        let shape_ok = cp.shot < config.shots
            && cp.sweep < config.sweeps
            && cp.replicas.len() == p
            && cp.replicas.iter().all(|s| s.len() == n);
        if !shape_ok {
            span.finish();
            return Err(Interrupted::new(
                RtError::InvalidConfig(
                    "sqa: checkpoint does not match the model or schedule".into(),
                ),
                cp.clone(),
            ));
        }
        start_shot = cp.shot;
        start_sweep = cp.sweep;
        resumed_replicas = Some(
            cp.replicas
                .iter()
                .map(|s| s.iter().map(|&b| if b { 1i8 } else { -1 }).collect())
                .collect(),
        );
        best = cp.best.clone();
        best_energy = cp.best_energy;
        shot_energies = cp.shot_energies.clone();
    }

    let warm = hooks
        .warm_start
        .filter(|w| w.len() == n && resume.is_none());
    for shot in start_shot..config.shots {
        let mut replicas: Vec<Vec<i8>> = match resumed_replicas.take() {
            Some(r) => r,
            None => match warm.filter(|_| shot == 0) {
                Some(w) => {
                    let slice: Vec<i8> = w.iter().map(|&b| if b { 1i8 } else { -1 }).collect();
                    (0..p).map(|_| slice.clone()).collect()
                }
                None => {
                    let mut init =
                        StdRng::seed_from_u64(derive_seed(config.seed, shot as u64, u64::MAX));
                    (0..p)
                        .map(|_| (0..n).map(|_| if init.gen() { 1i8 } else { -1 }).collect())
                        .collect()
                }
            },
        };

        let first_sweep = if shot == start_shot { start_sweep } else { 0 };
        for sweep in first_sweep..config.sweeps {
            let interrupted = qmkp_rt::failpoint::check("annealer.sqa.sweep")
                .and_then(|()| ctx.check())
                .err();
            if let Some(e) = interrupted {
                span.finish();
                return Err(Interrupted::new(
                    e,
                    SqaCheckpoint {
                        shot,
                        sweep,
                        replicas: replicas
                            .iter()
                            .map(|s| s.iter().map(|&v| v > 0).collect())
                            .collect(),
                        best,
                        best_energy,
                        shot_energies,
                    },
                ));
            }
            let mut rng =
                StdRng::seed_from_u64(derive_seed(config.seed, shot as u64, sweep as u64));
            let (gamma, j_perp) = transverse_schedule(config, sweep);
            let sweep_start = meter.on().then(Instant::now);
            pimc_sweep(
                &ising.h,
                &adj,
                config.beta,
                inv_p,
                j_perp,
                &mut replicas,
                &mut rng,
            );
            if let Some(t0) = sweep_start {
                meter.time(t0.elapsed());
            }
            if traced {
                qmkp_obs::gauge("anneal.sqa.gamma", gamma);
            }
        }

        let (shot_best, shot_best_x) = best_slice(q, &replicas);
        meter.delta(best_energy, shot_best);
        if traced {
            qmkp_obs::counter("anneal.sqa.shots", 1);
            qmkp_obs::gauge("anneal.sqa.shot_energy", shot_best);
        }
        shot_energies.push(shot_best);
        if shot_best < best_energy {
            best_energy = shot_best;
            best = shot_best_x;
            trace.push((start.elapsed(), shot_best));
            if let Some(publish) = hooks.on_incumbent.as_mut() {
                publish(&best, best_energy);
            }
        }
    }

    qmkp_obs::gauge("anneal.sqa.best_energy", best_energy);
    span.finish();
    Ok(AnnealOutcome {
        best,
        best_energy,
        shot_energies,
        trace,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_qubo::{MkpQubo, MkpQuboParams};

    fn small_model() -> QuboModel {
        let mut q = QuboModel::new(4);
        q.add_linear(0, -3.0);
        q.add_linear(1, -1.0);
        q.add_linear(2, 2.0);
        q.add_quadratic(0, 1, 2.0);
        q.add_quadratic(0, 3, -1.5);
        q.add_quadratic(2, 3, 1.0);
        q
    }

    #[test]
    fn finds_global_minimum_of_small_models() {
        let q = small_model();
        let (_, brute) = q.brute_force_min();
        let out = sqa_qubo(
            &q,
            &SqaConfig {
                shots: 40,
                sweeps: 30,
                ..SqaConfig::default()
            },
        );
        assert!(
            (out.best_energy - brute).abs() < 1e-9,
            "{} vs {brute}",
            out.best_energy
        );
    }

    #[test]
    fn solves_the_fig1_mkp_qubo() {
        let g = qmkp_graph::gen::paper_fig1_graph();
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 2, r: 2.0 });
        let out = sqa_qubo(
            &mq.model,
            &SqaConfig {
                shots: 60,
                sweeps: 40,
                ..SqaConfig::default()
            },
        );
        assert!(
            out.best_energy <= -3.0,
            "should find a near-optimal plex, got {}",
            out.best_energy
        );
        let p = mq.decode_repaired(
            out.best
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .fold(0u128, |acc, (i, _)| acc | (1 << i)),
        );
        assert!(qmkp_graph::is_kplex(&g, p, 2));
    }

    #[test]
    fn anneal_time_mapping() {
        let c = SqaConfig::from_anneal_time(1.0, 10);
        assert_eq!(c.sweeps, SWEEPS_PER_MICROSECOND);
        assert_eq!(c.shots, 10);
        let c = SqaConfig::from_anneal_time(0.01, 1);
        assert_eq!(c.sweeps, 1, "tiny Δt still does one sweep");
    }

    #[test]
    fn longer_anneals_do_not_hurt_on_average() {
        // Statistical, but with enough shots the ordering is stable.
        let q = small_model();
        let (_, brute) = q.brute_force_min();
        let short = sqa_qubo(
            &q,
            &SqaConfig {
                shots: 60,
                sweeps: 1,
                seed: 5,
                ..SqaConfig::default()
            },
        );
        let long = sqa_qubo(
            &q,
            &SqaConfig {
                shots: 60,
                sweeps: 40,
                seed: 5,
                ..SqaConfig::default()
            },
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&long.shot_energies) <= mean(&short.shot_energies) + 1e-9,
            "longer anneals should improve mean energy"
        );
        assert!((long.best_energy - brute).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let q = small_model();
        let a = sqa_qubo(
            &q,
            &SqaConfig {
                seed: 3,
                ..SqaConfig::default()
            },
        );
        let b = sqa_qubo(
            &q,
            &SqaConfig {
                seed: 3,
                ..SqaConfig::default()
            },
        );
        assert_eq!(a.shot_energies, b.shot_energies);
    }

    #[test]
    #[should_panic(expected = "Trotter")]
    fn one_slice_rejected() {
        let q = small_model();
        let _ = sqa_qubo(
            &q,
            &SqaConfig {
                trotter_slices: 1,
                ..SqaConfig::default()
            },
        );
    }

    #[test]
    fn ctx_variant_finds_the_same_optimum() {
        let q = small_model();
        let (_, brute) = q.brute_force_min();
        let config = SqaConfig {
            shots: 40,
            sweeps: 30,
            ..SqaConfig::default()
        };
        let out = sqa_qubo_ctx(&q, &config, &RtContext::unlimited(), None).unwrap();
        assert!((out.best_energy - brute).abs() < 1e-9);
    }

    #[test]
    fn ctx_variant_rejects_invalid_configs_without_panicking() {
        let q = small_model();
        let err = sqa_qubo_ctx(
            &q,
            &SqaConfig {
                trotter_slices: 1,
                ..SqaConfig::default()
            },
            &RtContext::unlimited(),
            None,
        )
        .expect_err("one slice");
        assert!(matches!(err.error, RtError::InvalidConfig(_)));
    }

    #[test]
    fn default_hooks_are_bit_identical_to_the_plain_ctx_run() {
        let q = small_model();
        let config = SqaConfig {
            shots: 8,
            sweeps: 6,
            trotter_slices: 4,
            seed: 9,
            ..SqaConfig::default()
        };
        let plain = sqa_qubo_ctx(&q, &config, &RtContext::unlimited(), None).unwrap();
        let hooked = sqa_qubo_ctx_observed(
            &q,
            &config,
            &RtContext::unlimited(),
            None,
            SqaHooks::default(),
        )
        .unwrap();
        let a: Vec<u64> = plain.shot_energies.iter().map(|e| e.to_bits()).collect();
        let b: Vec<u64> = hooked.shot_energies.iter().map(|e| e.to_bits()).collect();
        assert_eq!(a, b);
        assert_eq!(plain.best, hooked.best);
    }

    #[test]
    fn incumbents_are_published_in_strictly_improving_order() {
        let q = small_model();
        let config = SqaConfig {
            shots: 20,
            sweeps: 8,
            trotter_slices: 4,
            seed: 2,
            ..SqaConfig::default()
        };
        let mut seen: Vec<f64> = Vec::new();
        let mut publish = |_x: &[bool], e: f64| seen.push(e);
        let out = sqa_qubo_ctx_observed(
            &q,
            &config,
            &RtContext::unlimited(),
            None,
            SqaHooks {
                warm_start: None,
                on_incumbent: Some(&mut publish),
            },
        )
        .unwrap();
        assert!(!seen.is_empty());
        assert!(seen.windows(2).all(|w| w[1] < w[0]), "{seen:?}");
        assert_eq!(*seen.last().unwrap(), out.best_energy);
    }

    #[test]
    fn warm_start_seeds_shot_zero() {
        let q = small_model();
        let (bits, brute) = q.brute_force_min();
        let warm: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
        // One shot, one sweep: a cold start from this seed rarely lands
        // on the optimum, but a warm start from the optimum can only
        // anneal away from it between slices — the best slice stays at
        // or near the seed and the first published incumbent must match
        // the seeded energy or better.
        let config = SqaConfig {
            shots: 1,
            sweeps: 1,
            trotter_slices: 4,
            seed: 0,
            ..SqaConfig::default()
        };
        let mut first: Option<f64> = None;
        let mut publish = |_x: &[bool], e: f64| {
            if first.is_none() {
                first = Some(e);
            }
        };
        let out = sqa_qubo_ctx_observed(
            &q,
            &config,
            &RtContext::unlimited(),
            None,
            SqaHooks {
                warm_start: Some(&warm),
                on_incumbent: Some(&mut publish),
            },
        )
        .unwrap();
        // With β = 8 a single sweep essentially never accepts an
        // uphill move on every slice, so the optimum survives.
        assert!(
            (out.best_energy - brute).abs() < 1e-9,
            "warm-seeded best {} vs brute {brute}",
            out.best_energy
        );
        // Mismatched warm-start lengths are ignored, not panicked on.
        let bad = vec![true; 9];
        let ok = sqa_qubo_ctx_observed(
            &q,
            &config,
            &RtContext::unlimited(),
            None,
            SqaHooks {
                warm_start: Some(&bad),
                on_incumbent: None,
            },
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn generous_deadline_leaves_results_identical() {
        use qmkp_rt::Budget;
        use std::time::Duration;
        let q = small_model();
        let config = SqaConfig {
            shots: 6,
            sweeps: 5,
            trotter_slices: 4,
            ..SqaConfig::default()
        };
        let plain = sqa_qubo_ctx(&q, &config, &RtContext::unlimited(), None).unwrap();
        let ctx =
            RtContext::with_budget(Budget::unlimited().with_deadline(Duration::from_secs(3600)));
        let paced = sqa_qubo_ctx(&q, &config, &ctx, None).unwrap();
        assert_eq!(paced.best, plain.best);
        assert_eq!(paced.best_energy.to_bits(), plain.best_energy.to_bits());
        let a: Vec<u64> = paced.shot_energies.iter().map(|e| e.to_bits()).collect();
        let b: Vec<u64> = plain.shot_energies.iter().map(|e| e.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn cancelled_run_resumes_bit_identically() {
        use qmkp_rt::{Budget, CancelToken};
        let q = small_model();
        let config = SqaConfig {
            shots: 6,
            sweeps: 5,
            trotter_slices: 4,
            seed: 11,
            ..SqaConfig::default()
        };
        let straight = sqa_qubo_ctx(&q, &config, &RtContext::unlimited(), None).unwrap();

        // One runtime poll per sweep: fuse f interrupts before sweep f.
        for fuse in [0u64, 1, 7, 13, 29] {
            let ctx = RtContext::new(Budget::unlimited(), CancelToken::cancel_after_checks(fuse));
            let err = sqa_qubo_ctx(&q, &config, &ctx, None).expect_err("fuse inside schedule");
            assert_eq!(err.error, RtError::Cancelled, "fuse={fuse}");

            let cp = SqaCheckpoint::from_json(&err.checkpoint.to_json()).unwrap();
            assert_eq!(cp, *err.checkpoint, "serialization must be lossless");
            let resumed = sqa_qubo_ctx(&q, &config, &RtContext::unlimited(), Some(&cp)).unwrap();
            assert_eq!(resumed.best, straight.best, "fuse={fuse}");
            assert_eq!(
                resumed.best_energy.to_bits(),
                straight.best_energy.to_bits()
            );
            let a: Vec<u64> = resumed.shot_energies.iter().map(|e| e.to_bits()).collect();
            let b: Vec<u64> = straight.shot_energies.iter().map(|e| e.to_bits()).collect();
            assert_eq!(a, b, "fuse={fuse}");
        }
    }
}
