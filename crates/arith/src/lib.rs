//! # qmkp-arith — reversible arithmetic circuits
//!
//! The building blocks of the paper's qTKP oracle, implemented as gate
//! sequences over [`qmkp_qsim::Circuit`]:
//!
//! * [`adder`] — the paper's one-qubit full-adder cell (Figure 7: five
//!   gates, two ancillas) and the ripple-carry multi-qubit adder chained
//!   from it (Figure 8).
//! * [`counter`] — ancilla-free controlled increment and popcount, the
//!   workhorses behind degree counting (oracle part 1) and size
//!   determination (oracle part 3).
//! * [`comparator`] — the lexicographic comparison circuit of Figure 10 /
//!   Equations 6-7 (`x < y`, `x ≤ y`, `x = y`), in register-register and
//!   register-constant forms.
//! * [`eval`] — a classical evaluator for permutation-only circuits, used
//!   pervasively in tests to check every circuit against its integer
//!   semantics.
//!
//! All circuits here are built from X / CNOT / Toffoli / CᵏNOT only, so
//! they are basis-state permutations: cheap on the sparse backend and
//! exactly invertible with [`qmkp_qsim::Circuit::inverse`].

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
pub mod adder;
pub mod comparator;
pub mod counter;
pub mod eval;

pub use adder::{full_adder_cell, ripple_add, AdderWires};
pub use comparator::{
    compare_eq, compare_le, compare_le_clean, compare_le_const, compare_le_const_clean, compare_lt,
    ComparatorScratch,
};
pub use counter::{controlled_increment, counter_width, load_const, popcount_into};
pub use eval::classical_eval;
