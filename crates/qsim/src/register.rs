//! Named qubit registers and a linear allocator.
//!
//! The paper's circuits juggle many ancilla groups — vertex qubits, edge
//! qubits, per-vertex degree counters `|c_i⟩`, comparison flags `|d_i⟩`,
//! adder scratch, the `|cplex⟩`, `|size⟩` and oracle qubits. A
//! [`QubitAllocator`] hands out contiguous [`Register`]s so oracle builders
//! can name their wires instead of arithmetic on raw indices.

/// A contiguous block of qubits `[start, start + len)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    /// Human-readable name (used in debug output).
    pub name: String,
    /// First qubit index.
    pub start: usize,
    /// Number of qubits.
    pub len: usize,
}

impl Register {
    /// The `i`-th qubit of the register.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn qubit(&self, i: usize) -> usize {
        assert!(
            i < self.len,
            "register {} has {} qubits, asked for {i}",
            self.name,
            self.len
        );
        self.start + i
    }

    /// Iterates over the register's qubit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.start..self.start + self.len
    }

    /// All qubit indices as a vector.
    pub fn qubits(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Whether the register is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Extracts the register's value from a basis state, interpreting the
    /// register's qubit `i` as bit `i` (LSB first).
    #[inline]
    pub fn extract(&self, basis: u128) -> u128 {
        if self.len == 0 {
            return 0;
        }
        let mask = if self.len >= 128 {
            u128::MAX
        } else {
            (1u128 << self.len) - 1
        };
        (basis >> self.start) & mask
    }
}

/// Allocates consecutive registers from qubit 0 upward.
#[derive(Debug, Default)]
pub struct QubitAllocator {
    next: usize,
}

impl QubitAllocator {
    /// New allocator starting at qubit 0.
    pub fn new() -> Self {
        QubitAllocator { next: 0 }
    }

    /// Allocates a register of `len` qubits.
    pub fn alloc(&mut self, name: &str, len: usize) -> Register {
        let reg = Register {
            name: name.to_string(),
            start: self.next,
            len,
        };
        self.next += len;
        reg
    }

    /// Allocates a single qubit, returned as its index.
    pub fn alloc_one(&mut self, name: &str) -> usize {
        self.alloc(name, 1).start
    }

    /// Total number of qubits allocated so far (the circuit width).
    pub fn width(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_contiguous() {
        let mut a = QubitAllocator::new();
        let v = a.alloc("v", 6);
        let e = a.alloc("e", 8);
        let o = a.alloc_one("O");
        assert_eq!((v.start, v.len), (0, 6));
        assert_eq!((e.start, e.len), (6, 8));
        assert_eq!(o, 14);
        assert_eq!(a.width(), 15);
    }

    #[test]
    fn register_indexing_and_iteration() {
        let r = Register {
            name: "c".into(),
            start: 3,
            len: 4,
        };
        assert_eq!(r.qubit(0), 3);
        assert_eq!(r.qubit(3), 6);
        assert_eq!(r.qubits(), vec![3, 4, 5, 6]);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "has 4 qubits")]
    fn register_index_out_of_range_panics() {
        let r = Register {
            name: "c".into(),
            start: 3,
            len: 4,
        };
        let _ = r.qubit(4);
    }

    #[test]
    fn extract_register_value() {
        let r = Register {
            name: "c".into(),
            start: 2,
            len: 3,
        };
        // basis = …10110 ⇒ bits 2..5 are 101 ⇒ value 5
        assert_eq!(r.extract(0b10110), 0b101);
        let empty = Register {
            name: "z".into(),
            start: 0,
            len: 0,
        };
        assert_eq!(empty.extract(u128::MAX), 0);
    }
}
