//! Plain-text graph I/O: simple edge lists and the DIMACS `.col`-style
//! format used by most maximum-clique / k-plex benchmark suites.

use crate::error::GraphError;
use crate::graph::Graph;

/// Parses a simple edge-list format:
///
/// ```text
/// # comment
/// 6 7        <- header: n m (m is advisory, used only for validation)
/// 0 1
/// 0 2
/// ...
/// ```
///
/// Lines starting with `#` and blank lines are ignored. Vertices are
/// 0-indexed.
///
/// # Errors
/// Fails on malformed lines, out-of-range endpoints, self-loops, or an edge
/// count that contradicts the header.
pub fn parse_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut g: Option<Graph> = None;
    let mut declared_m: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let a: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(lineno, "expected an integer"))?;
        let b: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(lineno, "expected two integers"))?;
        if it.next().is_some() {
            return Err(parse_err(lineno, "trailing tokens"));
        }
        match &mut g {
            None => {
                declared_m = Some(b);
                g = Some(Graph::new(a)?);
            }
            Some(g) => {
                g.add_edge(a, b)?;
            }
        }
    }
    let g = g.ok_or_else(|| parse_err(0, "missing header line"))?;
    if let Some(m) = declared_m {
        if g.m() != m {
            return Err(parse_err(
                0,
                &format!("header declared {m} edges but {} were parsed", g.m()),
            ));
        }
    }
    Ok(g)
}

/// Writes the edge-list format accepted by [`parse_edge_list`].
pub fn write_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} {}\n", g.n(), g.m()));
    for (u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Parses DIMACS format (`c` comments, `p edge n m` header, `e u v` edges,
/// 1-indexed vertices).
///
/// # Errors
/// Fails on malformed lines or edges before the `p` line.
pub fn parse_dimacs(text: &str) -> Result<Graph, GraphError> {
    let mut g: Option<Graph> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            let mut it = rest.split_whitespace();
            let kind = it.next().ok_or_else(|| parse_err(lineno, "bad p line"))?;
            if kind != "edge" && kind != "col" {
                return Err(parse_err(lineno, "expected 'p edge n m'"));
            }
            let n: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad vertex count"))?;
            g = Some(Graph::new(n)?);
        } else if let Some(rest) = line.strip_prefix("e ") {
            let g = g
                .as_mut()
                .ok_or_else(|| parse_err(lineno, "edge before p line"))?;
            let mut it = rest.split_whitespace();
            let u: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad endpoint"))?;
            let v: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad endpoint"))?;
            if u == 0 || v == 0 {
                return Err(parse_err(lineno, "DIMACS vertices are 1-indexed"));
            }
            g.add_edge(u - 1, v - 1)?;
        } else {
            return Err(parse_err(lineno, "unrecognized line"));
        }
    }
    g.ok_or_else(|| parse_err(0, "missing p line"))
}

/// Writes DIMACS format.
pub fn write_dimacs(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("p edge {} {}\n", g.n(), g.m()));
    for (u, v) in g.edges() {
        out.push_str(&format!("e {} {}\n", u + 1, v + 1));
    }
    out
}

fn parse_err(line: usize, message: &str) -> GraphError {
    GraphError::Parse {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::paper_fig1_graph;

    #[test]
    fn edge_list_roundtrip() {
        let g = paper_fig1_graph();
        let text = write_edge_list(&g);
        let h = parse_edge_list(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn edge_list_with_comments_and_blanks() {
        let text = "# a graph\n\n3 2\n0 1\n\n1 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_header_mismatch_is_rejected() {
        let text = "3 5\n0 1\n";
        assert!(matches!(
            parse_edge_list(text),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn edge_list_malformed_lines() {
        assert!(parse_edge_list("3 0\nxyz 1\n").is_err());
        assert!(parse_edge_list("3 0\n0\n").is_err());
        assert!(parse_edge_list("3 1\n0 1 9\n").is_err());
        assert!(parse_edge_list("").is_err());
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = paper_fig1_graph();
        let text = write_dimacs(&g);
        let h = parse_dimacs(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn dimacs_parses_comments_and_validates() {
        let text = "c hello\np edge 3 1\ne 1 2\n";
        let g = parse_dimacs(text).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(parse_dimacs("e 1 2\n").is_err(), "edge before p line");
        assert!(
            parse_dimacs("p edge 3 1\ne 0 2\n").is_err(),
            "0-indexed edge"
        );
        assert!(parse_dimacs("p tree 3 1\n").is_err(), "bad problem kind");
        assert!(parse_dimacs("hello\n").is_err());
        assert!(parse_dimacs("").is_err());
    }
}
