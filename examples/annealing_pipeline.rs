//! The full qaMKP annealing pipeline, end to end:
//!
//! graph → QUBO (Eq. 12) → Ising → minor embedding into a Chimera
//! hardware graph → annealing on the *physical* model → majority-vote
//! unembedding → decode + greedy repair → verified k-plex.
//!
//! This mirrors what actually happens when a problem is submitted to a
//! D-Wave machine, including chain strength and chain-break accounting.
//!
//! ```sh
//! cargo run --release --example annealing_pipeline
//! ```

use qmkp::annealer::{
    anneal_qubo, embed_ising, find_embedding, hybrid_solve, sqa_qubo, unembed, Chimera,
    HybridConfig, SaConfig, SqaConfig,
};
use qmkp::classical::max_kplex_bnb;
use qmkp::graph::gen::paper_anneal_dataset;
use qmkp::qubo::{IsingModel, MkpQubo, MkpQuboParams, QuboModel};
use std::time::Duration;

fn main() {
    let g = paper_anneal_dataset(10, 40);
    let k = 3;
    let opt = max_kplex_bnb(&g, k);
    println!(
        "dataset D_{{10,40}}: maximum {k}-plex = {opt:?} (size {})",
        opt.len()
    );

    // 1. QUBO formulation (Equation 12).
    let mq = MkpQubo::new(&g, MkpQuboParams { k, r: 2.0 });
    println!(
        "QUBO: {} variables ({} vertex + {} slack), {} interactions",
        mq.num_vars(),
        mq.n(),
        mq.num_slack_vars(),
        mq.model.num_interactions()
    );

    // 2. Logical annealing (what the paper calls qaMKP).
    let logical = sqa_qubo(&mq.model, &SqaConfig::from_anneal_time(2.0, 200));
    println!("logical SQA: best energy {}", logical.best_energy);

    // 3. Minor embedding into hardware.
    let edges: Vec<(usize, usize)> = mq.model.interactions().map(|(p, _)| p).collect();
    let hw = Chimera::new(12, 12, 4);
    let emb = find_embedding(&edges, mq.num_vars(), &hw, 1, 8).expect("instance embeds");
    let stats = emb.stats();
    println!(
        "embedding: {} logical vars → {} physical qubits (avg chain {:.2}, max {})",
        stats.num_logical, stats.num_physical, stats.avg_chain_len, stats.max_chain_len
    );

    // 4. Build and anneal the physical Ising model.
    let chain_strength = 6.0;
    let ising = IsingModel::from_qubo(&mq.model);
    let phys = embed_ising(&ising, &emb, &hw, chain_strength);
    // Convert the physical Ising back to QUBO space to reuse the SA engine.
    let mut phys_qubo = QuboModel::new(phys.num_spins());
    phys_qubo.add_offset(phys.offset);
    for (i, &h) in phys.h.iter().enumerate() {
        // h·s with s = 2x − 1  →  2h·x − h.
        phys_qubo.add_linear(i, 2.0 * h);
        phys_qubo.add_offset(-h);
    }
    for (&(i, j), &jij) in &phys.j {
        // J·s_i·s_j = 4J·x_i·x_j − 2J·x_i − 2J·x_j + J.
        phys_qubo.add_quadratic(i, j, 4.0 * jij);
        phys_qubo.add_linear(i, -2.0 * jij);
        phys_qubo.add_linear(j, -2.0 * jij);
        phys_qubo.add_offset(jij);
    }
    let phys_out = anneal_qubo(
        &phys_qubo,
        &SaConfig {
            shots: 200,
            sweeps: 40,
            ..SaConfig::default()
        },
    );

    // 5. Unembed by majority vote and account for chain breaks.
    let spins: Vec<i8> = phys_out
        .best
        .iter()
        .map(|&b| if b { 1 } else { -1 })
        .collect();
    let (logical_x, broken) = unembed(&spins, &emb);
    let bits = logical_x
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .fold(0u128, |acc, (i, _)| acc | (1 << i));
    println!(
        "physical anneal: logical energy after unembedding = {}, broken chains = {broken}",
        mq.model.energy_bits(bits)
    );

    // 6. Decode + repair into a feasible k-plex.
    let plex = mq.decode_repaired(bits);
    println!(
        "decoded {k}-plex: {plex:?} (size {}, optimum {})",
        plex.len(),
        opt.len()
    );
    assert!(qmkp::graph::is_kplex(&g, plex, k));

    // 7. The hybrid solver (haMKP) for reference.
    let hy = hybrid_solve(
        &mq.model,
        &HybridConfig {
            min_runtime: Duration::from_millis(100),
            seed: 0,
        },
    );
    println!(
        "hybrid (haMKP): best energy {} in {:?}",
        hy.best_energy, hy.elapsed
    );
}
