//! The multi-tenant solve service.
//!
//! [`SolveService`] pushes each [`SolveRequest`] through four stages:
//!
//! 1. **Admission** — [`SolveService::submit`] validates the request,
//!    classifies it with the ladder's own preflight cost model
//!    ([`qmkp::preflight_lane`]), and `try_send`s it onto that lane's
//!    bounded queue. A full queue rejects with
//!    [`ServeError::QueueFull`] immediately — admission never blocks
//!    the submitting thread, mirroring how
//!    [`qmkp_rt::RtContext::admit_bytes`] rejects rather than waits.
//! 2. **Sharding** — each lane (`dense` / `sparse` / `classical`) has
//!    its own worker pool, so cheap classical floors never queue
//!    behind multi-second statevector runs.
//! 3. **Execution** — a worker builds a per-request
//!    [`RtContext`] from the request's [`Budget`] and the ticket's
//!    [`CancelToken`], then runs [`qmkp::solve_with`] against the
//!    shared [`OracleCache`]. When the ladder's portfolio gate engages
//!    (the default for quantum-feasible requests), the racers all pull
//!    their oracles from that same cache, so a race costs no extra
//!    compilation. Cancelling a ticket cancels exactly that request.
//!    The solve runs inside a panic boundary: a worker panic becomes a
//!    structured [`RtError::Faulted`] (`serve.worker.panic`) response —
//!    the tenant gets an envelope, not a dead ticket, and the worker
//!    thread survives to take the next job (`serve.worker.panics`
//!    counter, labelled by lane).
//! 4. **Reply** — the worker sends a [`SolveResponse`] — the ladder
//!    outcome wrapped in a [`RunReport`] envelope — down the ticket's
//!    private channel; [`SolveTicket::wait`] collects it.
//!
//! `serve.queue_depth` gauges (labelled by lane) and the
//! `serve.requests.{submitted,completed,rejected}` counters land in the
//! metrics registry alongside the cache's `serve.cache.*` series.

use crate::cache::OracleCache;
use qmkp::{preflight_lane, solve_with, PreflightLane, SolveConfig, SolveOutcome};
use qmkp_core::OracleProvider;
use qmkp_graph::Graph;
use qmkp_obs::RunReport;
use qmkp_rt::{Budget, CancelToken, RtContext, RtError};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Sizing for a [`SolveService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound of each lane's admission queue; a lane holding this many
    /// waiting requests rejects further submissions.
    pub queue_capacity: usize,
    /// Workers on the dense-statevector lane.
    pub dense_workers: usize,
    /// Workers on the sparse-statevector lane.
    pub sparse_workers: usize,
    /// Workers on the classical lane.
    pub classical_workers: usize,
    /// Byte ceiling of the shared compiled-oracle cache.
    pub cache_bytes: usize,
}

impl Default for ServiceConfig {
    /// Splits the machine's parallelism across the three lanes (at
    /// least one worker each) with a 64 MiB oracle cache.
    fn default() -> Self {
        let per_lane = (rayon::current_num_threads() / 3).clamp(1, 8);
        ServiceConfig {
            queue_capacity: 64,
            dense_workers: per_lane,
            sparse_workers: per_lane,
            classical_workers: per_lane,
            cache_bytes: 64 << 20,
        }
    }
}

/// One tenant's solve request.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// The instance graph.
    pub graph: Graph,
    /// The plex slack `k`.
    pub k: usize,
    /// Ladder configuration (quantum seed, classical floor tuning).
    pub config: SolveConfig,
    /// This request's private resource budget; [`Budget::unlimited`]
    /// by default.
    pub budget: Budget,
}

impl SolveRequest {
    /// A request for the maximum `k`-plex of `graph` with default
    /// configuration and no budget limits.
    pub fn new(graph: Graph, k: usize) -> Self {
        SolveRequest {
            graph,
            k,
            config: SolveConfig::default(),
            budget: Budget::unlimited(),
        }
    }

    /// Replaces the budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the ladder configuration.
    #[must_use]
    pub fn with_config(mut self, config: SolveConfig) -> Self {
        self.config = config;
        self
    }
}

/// Why the service could not produce a [`SolveOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request's lane queue was at capacity; admission rejects
    /// instead of blocking. Resubmit later or widen
    /// [`ServiceConfig::queue_capacity`].
    QueueFull {
        /// The lane that was full.
        lane: PreflightLane,
        /// Its configured capacity.
        capacity: usize,
    },
    /// The solve itself failed — cancelled, over budget after every
    /// rung including the classical floor, or invalid configuration.
    Rt(RtError),
    /// The service shut down before the request completed.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { lane, capacity } => write!(
                f,
                "{} lane queue full (capacity {capacity}); request rejected",
                lane.name()
            ),
            ServeError::Rt(e) => write!(f, "solve failed: {e}"),
            ServeError::Shutdown => write!(f, "service shut down before the request completed"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RtError> for ServeError {
    fn from(e: RtError) -> Self {
        ServeError::Rt(e)
    }
}

/// The reply to one [`SolveRequest`].
#[derive(Debug)]
pub struct SolveResponse {
    /// The id [`SolveService::submit`] assigned.
    pub id: u64,
    /// The lane that executed the request.
    pub lane: PreflightLane,
    /// The ladder outcome, or a structured error.
    pub outcome: Result<SolveOutcome, ServeError>,
    /// A per-request report fragment: lane, instance key, elapsed time,
    /// and the ladder fields on success.
    pub report: RunReport,
}

/// A claim check for a submitted request: cancel it or wait for the
/// response.
#[derive(Debug)]
pub struct SolveTicket {
    id: u64,
    lane: PreflightLane,
    cancel: CancelToken,
    rx: Receiver<SolveResponse>,
}

impl SolveTicket {
    /// The request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The lane admission routed the request to.
    pub fn lane(&self) -> PreflightLane {
        self.lane
    }

    /// Cancels this request — and only this request. A queued request
    /// resolves to [`RtError::Cancelled`] without running; a running
    /// one stops at its next cooperative checkpoint.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the response arrives. Returns a
    /// [`ServeError::Shutdown`] response if the service dropped the
    /// request on the floor (it never does while alive).
    pub fn wait(self) -> SolveResponse {
        self.rx.recv().unwrap_or_else(|_| SolveResponse {
            id: self.id,
            lane: self.lane,
            outcome: Err(ServeError::Shutdown),
            report: RunReport::new("serve.request").outcome("error", ServeError::Shutdown),
        })
    }
}

/// One queued unit of work.
struct Job {
    id: u64,
    lane: PreflightLane,
    request: SolveRequest,
    cancel: CancelToken,
    reply: mpsc::Sender<SolveResponse>,
}

/// State shared between the service handle and its workers.
struct Shared {
    cache: Arc<OracleCache>,
    completed: AtomicU64,
    /// Signed: a worker can dequeue (and decrement) before the
    /// submitting thread increments, so the count transiently dips
    /// below zero. The gauge clamps at zero.
    depths: [AtomicI64; 3],
}

impl Shared {
    fn lane_index(lane: PreflightLane) -> usize {
        match lane {
            PreflightLane::Dense => 0,
            PreflightLane::Sparse => 1,
            PreflightLane::Classical => 2,
        }
    }

    fn depth_changed(&self, lane: PreflightLane, delta: i64) {
        let idx = Self::lane_index(lane);
        let depth = (self.depths[idx].fetch_add(delta, Ordering::Relaxed) + delta).max(0);
        qmkp_obs::gauge("serve.queue_depth", depth as f64);
        qmkp_obs::metrics::gauge("serve.queue_depth", &[("lane", lane.name())], depth as f64);
    }
}

/// A lane's submission side.
struct Lane {
    tx: SyncSender<Job>,
    lane: PreflightLane,
}

/// The service: admission, lane-sharded workers, shared oracle cache.
///
/// Dropping the service closes the queues and joins every worker;
/// requests already admitted still complete, and outstanding tickets
/// for them resolve normally.
pub struct SolveService {
    lanes: Vec<Lane>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    config: ServiceConfig,
    next_id: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
}

impl SolveService {
    /// Starts the worker pools and the shared cache.
    pub fn new(config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            cache: Arc::new(OracleCache::new(config.cache_bytes)),
            completed: AtomicU64::new(0),
            depths: [AtomicI64::new(0), AtomicI64::new(0), AtomicI64::new(0)],
        });
        let mut lanes = Vec::new();
        let mut workers = Vec::new();
        let pools = [
            (PreflightLane::Dense, config.dense_workers),
            (PreflightLane::Sparse, config.sparse_workers),
            (PreflightLane::Classical, config.classical_workers),
        ];
        for (lane, pool) in pools {
            let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
            let rx = Arc::new(Mutex::new(rx));
            for worker in 0..pool.max(1) {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("qmkp-serve-{}-{worker}", lane.name()))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn worker thread");
                workers.push(handle);
            }
            lanes.push(Lane { tx, lane });
        }
        SolveService {
            lanes,
            workers,
            shared,
            config,
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The shared compiled-oracle cache (for direct inspection).
    pub fn cache(&self) -> &OracleCache {
        &self.shared.cache
    }

    /// Validates, classifies, and enqueues a request.
    ///
    /// # Errors
    /// * [`ServeError::Rt`] with [`RtError::InvalidConfig`] for an
    ///   empty graph or `k == 0` (the ladder's panicking preconditions,
    ///   turned into a structured rejection at the service boundary).
    /// * [`ServeError::QueueFull`] when the target lane is at capacity.
    ///   The submitter is never blocked.
    pub fn submit(&self, request: SolveRequest) -> Result<SolveTicket, ServeError> {
        if request.graph.n() == 0 {
            return Err(ServeError::Rt(RtError::InvalidConfig(
                "graph must be non-empty".into(),
            )));
        }
        if request.k == 0 {
            return Err(ServeError::Rt(RtError::InvalidConfig(
                "k must be ≥ 1".into(),
            )));
        }
        if let Err(e) = request.config.qmkp.qtkp.validate() {
            return Err(ServeError::Rt(e));
        }
        let lane = preflight_lane(&request.graph, request.k, &request.budget);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        let (reply, rx) = mpsc::channel();
        let job = Job {
            id,
            lane,
            request,
            cancel: cancel.clone(),
            reply,
        };
        let slot = self
            .lanes
            .iter()
            .find(|l| l.lane == lane)
            .expect("every lane has a queue");
        match slot.tx.try_send(job) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                qmkp_obs::counter("serve.requests.submitted", 1);
                qmkp_obs::metrics::counter("serve.requests.submitted", &[("lane", lane.name())], 1);
                self.shared.depth_changed(lane, 1);
                Ok(SolveTicket {
                    id,
                    lane,
                    cancel,
                    rx,
                })
            }
            Err(TrySendError::Full(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                qmkp_obs::counter("serve.requests.rejected", 1);
                qmkp_obs::metrics::counter("serve.requests.rejected", &[("lane", lane.name())], 1);
                Err(ServeError::QueueFull {
                    lane,
                    capacity: self.config.queue_capacity.max(1),
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Shutdown),
        }
    }

    /// A service-level report: request counters, cache statistics, and
    /// the current metrics registry snapshot — the envelope
    /// `obs_validate --report` checks in CI.
    pub fn report(&self, name: &str) -> RunReport {
        let stats = self.shared.cache.stats();
        RunReport::new(name)
            .config("queue_capacity", self.config.queue_capacity)
            .config(
                "workers",
                format!(
                    "dense={} sparse={} classical={}",
                    self.config.dense_workers.max(1),
                    self.config.sparse_workers.max(1),
                    self.config.classical_workers.max(1)
                ),
            )
            .config("cache_bytes", self.config.cache_bytes)
            .outcome("submitted", self.submitted.load(Ordering::Relaxed))
            .outcome("completed", self.shared.completed.load(Ordering::Relaxed))
            .outcome("rejected", self.rejected.load(Ordering::Relaxed))
            .outcome("cache_hits", stats.hits)
            .outcome("cache_misses", stats.misses)
            .outcome("cache_evictions", stats.evictions)
            .outcome("cache_compiles", stats.compiles)
            .outcome("cache_bytes", stats.bytes)
            .metrics(qmkp_obs::metrics::snapshot())
    }

    /// Closes the admission queues and joins every worker. Admitted
    /// requests finish first; this blocks until they have.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.lanes.clear(); // drop the senders: workers drain and exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, shared: &Arc<Shared>) {
    loop {
        // Hold the lane lock only for the dequeue itself.
        let job = {
            let guard = rx.lock().expect("lane queue lock");
            guard.recv()
        };
        let Ok(job) = job else {
            return; // all senders dropped: service shut down
        };
        shared.depth_changed(job.lane, -1);
        let lane = job.lane;
        execute(job, shared);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        qmkp_obs::counter("serve.requests.completed", 1);
        qmkp_obs::metrics::counter("serve.requests.completed", &[("lane", lane.name())], 1);
    }
}

/// Runs one admitted job under its own [`RtContext`] and sends the
/// enveloped response down the ticket's channel. A dropped ticket just
/// discards the response.
fn execute(job: Job, shared: &Arc<Shared>) {
    let Job {
        id,
        lane,
        request,
        cancel,
        reply,
    } = job;
    let started = Instant::now();
    let ctx = RtContext::new(request.budget.clone(), cancel);
    let outcome = match ctx.check() {
        Ok(()) => run_contained(&request, &ctx, shared.cache.as_ref()),
        Err(e) => Err(ServeError::Rt(e)),
    };
    if matches!(
        &outcome,
        Err(ServeError::Rt(RtError::Faulted { site })) if site == WORKER_PANIC_SITE
    ) {
        qmkp_obs::counter("serve.worker.panics", 1);
        qmkp_obs::metrics::counter("serve.worker.panics", &[("lane", lane.name())], 1);
    }
    let elapsed = started.elapsed();
    let report = match &outcome {
        Ok(out) => out.report("serve.request"),
        Err(e) => RunReport::new("serve.request").outcome("error", e),
    };
    let report = report
        .config("lane", lane.name())
        .config("k", request.k)
        .config("n", request.graph.n())
        .config("graph_digest", format!("{:016x}", request.graph.digest()))
        .outcome("elapsed_ms", elapsed.as_millis());
    qmkp_obs::metrics::observe_duration("serve.request_seconds", &[("lane", lane.name())], elapsed);
    let _ = reply.send(SolveResponse {
        id,
        lane,
        outcome,
        report,
    });
}

/// The failure site a contained worker panic reports.
const WORKER_PANIC_SITE: &str = "serve.worker.panic";

/// Runs the solve inside a panic boundary. The race supervisor already
/// contains panics *per racer*; this is the last-resort net for panics
/// outside any race (the sequential ladder, preflight, a panicking
/// provider on a non-portfolio path), mapping them to the same
/// structured [`RtError::Faulted`] shape instead of killing the worker
/// thread and stranding the ticket. The reply channel is outside the
/// boundary, so the envelope is always delivered.
fn run_contained(
    request: &SolveRequest,
    ctx: &RtContext,
    provider: &dyn OracleProvider,
) -> Result<SolveOutcome, ServeError> {
    catch_unwind(AssertUnwindSafe(|| {
        solve_with(&request.graph, request.k, &request.config, ctx, provider)
    }))
    .unwrap_or_else(|_| {
        Err(RtError::Faulted {
            site: WORKER_PANIC_SITE.into(),
        })
    })
    .map_err(ServeError::Rt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp::graph::gen::paper_fig1_graph;
    use qmkp::SolveConfig;
    use qmkp_core::CompiledOracle;

    /// An [`OracleProvider`] that panics on every compile — the
    /// deterministic stand-in for a worker hitting a bug mid-solve.
    struct PanickingProvider;

    impl OracleProvider for PanickingProvider {
        fn compiled_oracle(
            &self,
            _g: &Graph,
            _k: usize,
            _t: usize,
            _ctx: &RtContext,
        ) -> Result<std::sync::Arc<CompiledOracle>, RtError> {
            panic!("injected provider panic");
        }
    }

    #[test]
    fn worker_panics_map_to_structured_faulted() {
        // Portfolio pinned off: the sequential ladder calls the
        // provider with no per-racer containment, so the panic reaches
        // the worker boundary and must come back as an envelope.
        let request = SolveRequest::new(paper_fig1_graph(), 2).with_config(SolveConfig {
            portfolio: Some(false),
            ..SolveConfig::default()
        });
        let err = run_contained(&request, &RtContext::unlimited(), &PanickingProvider)
            .expect_err("the ladder cannot survive a panicking provider");
        assert_eq!(
            err,
            ServeError::Rt(RtError::Faulted {
                site: WORKER_PANIC_SITE.into()
            })
        );
    }

    #[test]
    fn portfolio_contains_provider_panics_per_racer() {
        // Same panicking provider, portfolio on (the default for this
        // instance): only the quantum racers die — the panic is
        // contained per racer, a survivor still answers, and the race
        // summary records the loss.
        let request = SolveRequest::new(paper_fig1_graph(), 2);
        let out = run_contained(&request, &RtContext::unlimited(), &PanickingProvider)
            .expect("a surviving racer must still answer");
        assert!(qmkp::graph::is_kplex(&request.graph, out.best, 2));
        let race = out.race.expect("the portfolio ran");
        assert!(race.faulted >= 1, "the panicking quantum racer lost");
    }
}
