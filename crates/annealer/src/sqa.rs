//! Simulated quantum annealing (path-integral Monte Carlo).
//!
//! The stand-in for the D-Wave QPU: the transverse-field Ising Hamiltonian
//!
//! ```text
//! H(t) = A(t)·Σ σ_i^x  +  B(t)·( Σ h_i σ_i^z + Σ J_ij σ_i^z σ_j^z )
//! ```
//!
//! is simulated by the standard Suzuki-Trotter mapping onto `P` coupled
//! classical replicas ("imaginary-time slices"): slice `p` carries the
//! problem couplings scaled by `1/P`, and consecutive slices are coupled
//! ferromagnetically with
//!
//! ```text
//! J⊥(Γ) = (1/2β) · ln coth(β·Γ/P)
//! ```
//!
//! which strengthens as the transverse field `Γ` anneals to zero, freezing
//! the replicas into one classical configuration. The per-shot annealing
//! time `Δt` of the paper maps to PIMC sweeps ([`SqaConfig::from_anneal_time`]);
//! shots are restarts, so total runtime is `t = Δt · s` exactly as in
//! Section "Annealing time Δt of qaMKP".

use crate::result::AnnealOutcome;
use qmkp_qubo::{IsingModel, QuboModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// PIMC sweeps that stand in for one microsecond of annealing time.
pub const SWEEPS_PER_MICROSECOND: usize = 8;

/// Configuration for [`sqa_qubo`].
#[derive(Debug, Clone)]
pub struct SqaConfig {
    /// Independent anneals (the shot count `s`).
    pub shots: usize,
    /// PIMC sweeps per shot (the annealing time `Δt`).
    pub sweeps: usize,
    /// Trotter slices `P`.
    pub trotter_slices: usize,
    /// Inverse temperature of the PIMC.
    pub beta: f64,
    /// Initial transverse field `Γ₀`.
    pub gamma_start: f64,
    /// Final transverse field `Γ₁` (> 0).
    pub gamma_end: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SqaConfig {
    fn default() -> Self {
        SqaConfig {
            shots: 50,
            sweeps: 8,
            trotter_slices: 16,
            beta: 8.0,
            gamma_start: 3.0,
            gamma_end: 0.05,
            seed: 0,
        }
    }
}

impl SqaConfig {
    /// The paper's runtime accounting: a per-shot annealing time in
    /// microseconds plus a shot count.
    pub fn from_anneal_time(dt_microseconds: f64, shots: usize) -> Self {
        SqaConfig {
            shots,
            sweeps: ((dt_microseconds * SWEEPS_PER_MICROSECOND as f64).round() as usize).max(1),
            ..SqaConfig::default()
        }
    }
}

/// Runs simulated quantum annealing on a QUBO (converted to Ising
/// internally); energies reported are logical QUBO energies.
///
/// # Panics
/// Panics on zero shots/sweeps/slices or a non-positive field schedule.
pub fn sqa_qubo(q: &QuboModel, config: &SqaConfig) -> AnnealOutcome {
    assert!(
        config.shots > 0 && config.sweeps > 0,
        "need shots and sweeps"
    );
    assert!(config.trotter_slices >= 2, "need at least 2 Trotter slices");
    assert!(
        config.gamma_start > config.gamma_end && config.gamma_end > 0.0,
        "transverse field must anneal downward to a positive value"
    );
    let span = qmkp_obs::span("anneal.sqa.run");
    let traced = qmkp_obs::enabled_for("anneal.sqa");
    let ising = IsingModel::from_qubo(q);
    let n = ising.num_spins();
    let p = config.trotter_slices;
    let adj = ising.neighbor_lists();
    let inv_p = 1.0 / p as f64;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start = Instant::now();

    let mut best: Vec<bool> = vec![false; n];
    let mut best_energy = f64::INFINITY;
    let mut shot_energies = Vec::with_capacity(config.shots);
    let mut trace = Vec::new();

    for _ in 0..config.shots {
        // replicas[p][i] ∈ {−1, +1}
        let mut replicas: Vec<Vec<i8>> = (0..p)
            .map(|_| (0..n).map(|_| if rng.gen() { 1i8 } else { -1 }).collect())
            .collect();

        for sweep in 0..config.sweeps {
            let f = if config.sweeps == 1 {
                1.0
            } else {
                sweep as f64 / (config.sweeps - 1) as f64
            };
            let gamma = config.gamma_start + f * (config.gamma_end - config.gamma_start);
            let x = (config.beta * gamma * inv_p).tanh();
            // J⊥ > 0; the slice-coupling energy term is −J⊥·s·s'.
            let j_perp = -(0.5 / config.beta) * x.ln();

            for slice in 0..p {
                let up = (slice + 1) % p;
                let down = (slice + p - 1) % p;
                for i in 0..n {
                    let s = replicas[slice][i] as f64;
                    let mut local = ising.h[i];
                    for &(j, c) in &adj[i] {
                        local += c * replicas[slice][j] as f64;
                    }
                    let time_nbrs = (replicas[up][i] + replicas[down][i]) as f64;
                    // The classical energy carries s·[(1/P)·local − J⊥·tn];
                    // flipping s → −s changes it by −2s·[…].
                    let delta = -2.0 * s * (inv_p * local - j_perp * time_nbrs);
                    if delta <= 0.0 || rng.gen::<f64>() < (-config.beta * delta).exp() {
                        replicas[slice][i] = -replicas[slice][i];
                    }
                }
            }
            if traced {
                qmkp_obs::gauge("anneal.sqa.gamma", gamma);
            }
        }

        // Each slice is a candidate classical solution; keep the best.
        let mut shot_best = f64::INFINITY;
        let mut shot_best_x: Vec<bool> = vec![false; n];
        for slice in &replicas {
            let x: Vec<bool> = slice.iter().map(|&s| s > 0).collect();
            let e = q.energy(&x);
            if e < shot_best {
                shot_best = e;
                shot_best_x = x;
            }
        }
        if traced {
            qmkp_obs::counter("anneal.sqa.shots", 1);
            qmkp_obs::gauge("anneal.sqa.shot_energy", shot_best);
        }
        shot_energies.push(shot_best);
        if shot_best < best_energy {
            best_energy = shot_best;
            best = shot_best_x;
            trace.push((start.elapsed(), shot_best));
        }
    }

    qmkp_obs::gauge("anneal.sqa.best_energy", best_energy);
    span.finish();
    AnnealOutcome {
        best,
        best_energy,
        shot_energies,
        trace,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_qubo::{MkpQubo, MkpQuboParams};

    fn small_model() -> QuboModel {
        let mut q = QuboModel::new(4);
        q.add_linear(0, -3.0);
        q.add_linear(1, -1.0);
        q.add_linear(2, 2.0);
        q.add_quadratic(0, 1, 2.0);
        q.add_quadratic(0, 3, -1.5);
        q.add_quadratic(2, 3, 1.0);
        q
    }

    #[test]
    fn finds_global_minimum_of_small_models() {
        let q = small_model();
        let (_, brute) = q.brute_force_min();
        let out = sqa_qubo(
            &q,
            &SqaConfig {
                shots: 40,
                sweeps: 30,
                ..SqaConfig::default()
            },
        );
        assert!(
            (out.best_energy - brute).abs() < 1e-9,
            "{} vs {brute}",
            out.best_energy
        );
    }

    #[test]
    fn solves_the_fig1_mkp_qubo() {
        let g = qmkp_graph::gen::paper_fig1_graph();
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 2, r: 2.0 });
        let out = sqa_qubo(
            &mq.model,
            &SqaConfig {
                shots: 60,
                sweeps: 40,
                ..SqaConfig::default()
            },
        );
        assert!(
            out.best_energy <= -3.0,
            "should find a near-optimal plex, got {}",
            out.best_energy
        );
        let p = mq.decode_repaired(
            out.best
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .fold(0u128, |acc, (i, _)| acc | (1 << i)),
        );
        assert!(qmkp_graph::is_kplex(&g, p, 2));
    }

    #[test]
    fn anneal_time_mapping() {
        let c = SqaConfig::from_anneal_time(1.0, 10);
        assert_eq!(c.sweeps, SWEEPS_PER_MICROSECOND);
        assert_eq!(c.shots, 10);
        let c = SqaConfig::from_anneal_time(0.01, 1);
        assert_eq!(c.sweeps, 1, "tiny Δt still does one sweep");
    }

    #[test]
    fn longer_anneals_do_not_hurt_on_average() {
        // Statistical, but with enough shots the ordering is stable.
        let q = small_model();
        let (_, brute) = q.brute_force_min();
        let short = sqa_qubo(
            &q,
            &SqaConfig {
                shots: 60,
                sweeps: 1,
                seed: 5,
                ..SqaConfig::default()
            },
        );
        let long = sqa_qubo(
            &q,
            &SqaConfig {
                shots: 60,
                sweeps: 40,
                seed: 5,
                ..SqaConfig::default()
            },
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&long.shot_energies) <= mean(&short.shot_energies) + 1e-9,
            "longer anneals should improve mean energy"
        );
        assert!((long.best_energy - brute).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let q = small_model();
        let a = sqa_qubo(
            &q,
            &SqaConfig {
                seed: 3,
                ..SqaConfig::default()
            },
        );
        let b = sqa_qubo(
            &q,
            &SqaConfig {
                seed: 3,
                ..SqaConfig::default()
            },
        );
        assert_eq!(a.shot_energies, b.shot_energies);
    }

    #[test]
    #[should_panic(expected = "Trotter")]
    fn one_slice_rejected() {
        let q = small_model();
        let _ = sqa_qubo(
            &q,
            &SqaConfig {
                trotter_slices: 1,
                ..SqaConfig::default()
            },
        );
    }
}
