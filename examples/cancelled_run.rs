//! A budgeted, cancelled, degraded qMKP run — the runtime quickstart.
//!
//! ```sh
//! cargo run --example cancelled_run                          # plain
//! QMKP_OBS=1 cargo run --example cancelled_run               # + summary
//! QMKP_OBS_JSON=trace.jsonl cargo run --example cancelled_run
//! QMKP_RT_MAX_OPS=50 cargo run --example cancelled_run       # tighter still
//! ```
//!
//! Three runs over the Figure 1 graph:
//! 1. a run cancelled from a clone of its token mid-search, showing the
//!    checkpoint that survives;
//! 2. the same search resumed from that checkpoint to completion;
//! 3. a byte-budgeted `solve` that degrades to the classical floor.
//!
//! CI runs this with `QMKP_OBS_JSON` set and validates the emitted trace
//! with the `obs_validate` bin.

use qmkp::core::{qmkp_ctx, QmkpCheckpoint, QmkpConfig};
use qmkp::obs::Session;
use qmkp::qsim::SparseState;
use qmkp::rt::{Budget, CancelToken, Checkpoint, RtContext};
use qmkp::solve::{solve, SolveConfig};

fn main() {
    let session = Session::from_env("cancelled_run");
    let g = qmkp::graph::gen::paper_fig1_graph();
    let k = 2;
    let config = QmkpConfig::default();

    // 1. Cancel mid-search. The deterministic fuse stands in for a user
    //    pressing ^C from another thread via a clone of the token.
    let token = CancelToken::cancel_after_checks(25);
    let ctx = RtContext::new(Budget::from_env(), token);
    let interrupted = qmkp_ctx::<SparseState>(&g, k, &config, &ctx, None)
        .expect_err("the fuse fires inside the search");
    println!(
        "cancelled: {} after {} probes; checkpoint: {} bytes of JSON",
        interrupted.error,
        interrupted.checkpoint.calls.len(),
        interrupted.checkpoint.to_json().len()
    );

    // 2. Resume from the serialized checkpoint; the result is identical
    //    to an uninterrupted run because each probe reseeds from config.
    let restored = QmkpCheckpoint::from_json(&interrupted.checkpoint.to_json())
        .expect("round-trip of our own checkpoint");
    let resumed = qmkp_ctx::<SparseState>(&g, k, &config, &RtContext::unlimited(), Some(&restored))
        .expect("unlimited context cannot be interrupted");
    println!(
        "resumed:   max {k}-plex {:?} (size {})",
        resumed.best.iter().collect::<Vec<_>>(),
        resumed.best.len()
    );

    // 3. A byte budget far below the sparse state's needs: the ladder
    //    degrades to the classical floor and still answers.
    let tight = RtContext::with_budget(Budget::unlimited().with_max_bytes(1024));
    let degraded =
        solve(&g, k, &SolveConfig::default(), &tight).expect("degradation absorbs budget errors");
    println!(
        "degraded:  backend {} found size {} (degraded = {})",
        degraded.backend.name(),
        degraded.best.len(),
        degraded.degraded
    );

    session.finish_with(
        degraded
            .report("cancelled_run")
            .config("graph", "paper_fig1_graph")
            .config("n", g.n())
            .config("k", k)
            .outcome("resumed_best_size", resumed.best.len())
            .outcome("cancelled_probes", interrupted.checkpoint.calls.len()),
    );
}
