//! Benchmarks of the classical exact baselines (the BS rows of
//! Tables II-III) and the reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmkp_classical::{max_kplex_bnb, max_kplex_bs, max_kplex_naive};
use qmkp_graph::gen::{paper_gate_dataset, GATE_DATASETS};
use qmkp_graph::reduce::auto_reduce;

fn bench_exact_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_mkp");
    for &(n, m) in &GATE_DATASETS {
        let g = paper_gate_dataset(n, m);
        group.bench_with_input(
            BenchmarkId::new("naive", format!("G_{n}_{m}")),
            &g,
            |b, g| {
                b.iter(|| max_kplex_naive(g, 2));
            },
        );
        group.bench_with_input(BenchmarkId::new("bnb", format!("G_{n}_{m}")), &g, |b, g| {
            b.iter(|| max_kplex_bnb(g, 2));
        });
        group.bench_with_input(BenchmarkId::new("bs", format!("G_{n}_{m}")), &g, |b, g| {
            b.iter(|| max_kplex_bs(g, 2));
        });
    }
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let g = paper_gate_dataset(10, 23);
    c.bench_function("auto_reduce_G10_23", |b| b.iter(|| auto_reduce(&g, 2)));
}

criterion_group!(benches, bench_exact_solvers, bench_reduction);
criterion_main!(benches);
