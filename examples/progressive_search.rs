//! qMKP's progressive behaviour (the paper's "Progression" paragraph):
//! the binary search emits a feasible k-plex after its first successful
//! qTKP probe — within the first O(1/log n) of the runtime — and that
//! first answer is at least half the optimum.
//!
//! ```sh
//! cargo run --release --example progressive_search
//! ```

use qmkp::core::{qmkp as run_qmkp, QmkpConfig};
use qmkp::graph::gen::paper_gate_dataset;

fn main() {
    let g = paper_gate_dataset(9, 15);
    let k = 2;
    let out = run_qmkp(&g, k, &QmkpConfig::default());

    println!("binary search trace on G_{{9,15}} (k = {k}):\n");
    println!(
        "{:>5} {:>7} {:>12} {:>10} {:>14}",
        "probe", "T", "iterations", "M", "result"
    );
    for (i, call) in out.calls.iter().enumerate() {
        println!(
            "{:>5} {:>7} {:>12} {:>10} {:>14}",
            i + 1,
            call.t,
            call.iterations,
            call.m,
            match call.found {
                Some(p) => format!("size {}", p.len()),
                None => "∅".to_string(),
            }
        );
    }

    let (first, first_at) = out.first_result.expect("some k-plex always exists");
    println!(
        "\nmaximum {k}-plex: size {} in {:?}",
        out.best.len(),
        out.total_elapsed
    );
    println!(
        "first feasible : size {} after {:?} ({:.0}% of total time)",
        first.len(),
        first_at,
        100.0 * first_at.as_secs_f64() / out.total_elapsed.as_secs_f64()
    );
    assert!(
        2 * first.len() >= out.best.len(),
        "the paper's guarantee: first result ≥ half of optimal"
    );
}
