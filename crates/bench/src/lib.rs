//! # qmkp-bench — experiment drivers and benchmarks
//!
//! One binary per table/figure of the paper's evaluation (Section VI);
//! run them with `cargo run --release -p qmkp-bench --bin <name>`:
//!
//! | binary                  | paper artifact |
//! |-------------------------|----------------|
//! | `table1_scale`          | Table I — problem scale vs prior quantum works |
//! | `fig8_amplitude`        | Fig. 8 — qTKP amplitude convergence |
//! | `table2_qmkp_vs_bs`     | Table II — qMKP vs BS across dataset sizes |
//! | `table3_qmkp_k`         | Table III — qMKP across k |
//! | `table4_oracle_share`   | Table IV — oracle component runtime shares |
//! | `table5_annealing_time` | Table V — qaMKP cost vs annealing time Δt |
//! | `table6_penalty_r`      | Table VI — qaMKP cost vs penalty weight R |
//! | `fig9_cost_runtime`     | Fig. 9 — cost vs runtime on D_{20,100} |
//! | `fig10_cost_runtime`    | Fig. 10 — cost vs runtime on D_{30,300} |
//! | `table7_qamkp_k`        | Table VII — qaMKP across k |
//! | `fig11_chain`           | Fig. 11 — variables / qubits / chain size vs n |
//!
//! Set `QMKP_QUICK=1` to run cheap, reduced-size variants (used by the
//! integration tests; full runs regenerate EXPERIMENTS.md numbers).

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo)]
pub mod cost_runtime;

use std::fmt::Display;

/// Whether the quick (reduced-size) experiment variants were requested.
pub fn quick_mode() -> bool {
    std::env::var_os("QMKP_QUICK").is_some()
}

/// Renders an aligned markdown-ish table to stdout.
///
/// # Panics
/// Panics if a row's arity differs from the header's.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n## {title}\n");
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for r in &rows {
        assert_eq!(r.len(), cols, "row arity mismatch");
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers);
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    line(&sep);
    for r in &rows {
        line(r);
    }
}

/// Formats a `Duration` in microseconds with 1 decimal.
pub fn us(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Formats a probability like the paper's error rows: `<1e-k` when tiny,
/// plain decimal otherwise.
pub fn error_prob(p: f64) -> String {
    if p <= 1e-12 {
        "<1e-12".to_string()
    } else if p < 1e-3 {
        format!("<1e-{}", (-p.log10()).floor() as i32)
    } else {
        format!("{p:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_prob_formatting() {
        assert_eq!(error_prob(0.0), "<1e-12");
        assert_eq!(error_prob(0.5), "0.5000");
        assert_eq!(error_prob(3e-7), "<1e-6");
    }

    #[test]
    fn us_formatting() {
        assert_eq!(us(std::time::Duration::from_micros(1500)), "1500.0");
    }
}
