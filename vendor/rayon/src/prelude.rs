//! The glob-importable surface: `use rayon::prelude::*;`.

pub use crate::ParallelSliceMut;
