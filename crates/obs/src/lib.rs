//! `qmkp-obs`: zero-dependency structured tracing, metrics, and run
//! reports for the qMKP workspace.
//!
//! The crate is a small global facade: instrumentation points call
//! [`span`], [`counter`], [`gauge`], [`observe`], or [`message`]; events
//! flow to whatever [`Sink`]s are currently attached ([`Collector`] for
//! tests and reports, [`JsonlSink`] for machine-readable traces). With no
//! sink attached — the default — every entry point reduces to one relaxed
//! atomic load and returns immediately, so instrumented hot paths carry
//! no measurable overhead (see DESIGN.md §9 for the measurement).
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//!
//! let collector = Arc::new(qmkp_obs::Collector::new());
//! let _guard = qmkp_obs::attach(collector.clone());
//! {
//!     let _outer = qmkp_obs::span("demo.run");
//!     let inner = qmkp_obs::span("demo.step");
//!     qmkp_obs::counter("demo.items", 3);
//!     inner.finish();
//! }
//! assert_eq!(collector.counter_total("demo.items"), 3);
//! assert_eq!(collector.finished_spans().len(), 2);
//! ```
//!
//! Binaries normally don't attach sinks by hand; they build a
//! [`Session`] from the `QMKP_OBS*` environment variables and call
//! [`Session::finish`] at the end of the run.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo)]
pub mod event;
pub mod json;
pub mod metrics;
pub mod report;
pub mod session;
pub mod sink;
pub mod summary;

pub use event::Event;
pub use metrics::MetricsSnapshot;
pub use report::RunReport;
pub use session::Session;
pub use sink::{Collector, JsonlSink, Sink};
pub use summary::Summary;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

struct Registry {
    sinks: RwLock<Vec<(u64, Arc<dyn Sink>)>>,
    filter: RwLock<Option<Vec<String>>>,
    /// Mirrors "any sink attached" so the disabled fast path is one load.
    enabled: AtomicBool,
    next_span: AtomicU64,
    next_sink: AtomicU64,
    next_thread: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        sinks: RwLock::new(Vec::new()),
        filter: RwLock::new(None),
        enabled: AtomicBool::new(false),
        next_span: AtomicU64::new(1),
        next_sink: AtomicU64::new(1),
        next_thread: AtomicU64::new(1),
    })
}

thread_local! {
    static THREAD_ID: u64 = registry().next_thread.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A small process-unique id for the calling thread (not the OS id);
/// stable for the thread's lifetime.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Whether any sink is attached. The entire facade is a no-op when this
/// is `false`; instrumentation may use it to skip preparing expensive
/// event payloads.
#[inline]
pub fn enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Whether events with this name would currently be recorded: a sink is
/// attached *and* the name passes the prefix filter (if one is set).
#[inline]
pub fn enabled_for(name: &str) -> bool {
    enabled() && passes_filter(name)
}

fn passes_filter(name: &str) -> bool {
    match &*registry().filter.read().expect("filter lock") {
        None => true,
        Some(prefixes) => prefixes.iter().any(|p| name.starts_with(p)),
    }
}

/// Restricts recording to events whose name starts with one of the given
/// prefixes (`None` records everything). Messages are never filtered.
pub fn set_filter(prefixes: Option<Vec<String>>) {
    *registry().filter.write().expect("filter lock") = prefixes;
}

/// Detaches its sink when dropped.
#[must_use = "the sink detaches when this handle drops"]
pub struct SinkHandle {
    id: u64,
}

/// Attaches a sink; it receives every subsequent event that passes the
/// filter, until the returned handle is dropped.
pub fn attach(sink: Arc<dyn Sink>) -> SinkHandle {
    let reg = registry();
    let id = reg.next_sink.fetch_add(1, Ordering::Relaxed);
    let mut sinks = reg.sinks.write().expect("sink lock");
    sinks.push((id, sink));
    reg.enabled.store(true, Ordering::Relaxed);
    SinkHandle { id }
}

impl Drop for SinkHandle {
    fn drop(&mut self) {
        let reg = registry();
        let mut sinks = reg.sinks.write().expect("sink lock");
        sinks.retain(|(id, _)| *id != self.id);
        if sinks.is_empty() {
            reg.enabled.store(false, Ordering::Relaxed);
        }
    }
}

fn emit(event: &Event) {
    for (_, sink) in registry().sinks.read().expect("sink lock").iter() {
        sink.record(event);
    }
}

/// An open span. Close it explicitly with [`Span::finish`] to get the
/// measured duration, or let it drop.
///
/// Spans created while recording is off are *disarmed*: they still
/// measure wall time (so [`Span::finish`] can be used for ordinary
/// timing) but emit nothing and never touch the parent stack.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    id: u64,
    name: Option<String>,
    start: Instant,
}

impl Span {
    fn disarmed() -> Span {
        Span {
            id: 0,
            name: None,
            start: Instant::now(),
        }
    }

    fn armed(name: String) -> Span {
        let id = registry().next_span.fetch_add(1, Ordering::Relaxed);
        let thread = thread_id();
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        emit(&Event::SpanStart {
            id,
            parent,
            thread,
            name: name.clone(),
        });
        Span {
            id,
            name: Some(name),
            start: Instant::now(),
        }
    }

    fn close(&mut self) -> Duration {
        let duration = self.start.elapsed();
        if let Some(name) = self.name.take() {
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                // rposition: tolerate out-of-order closes without
                // corrupting unrelated spans' parents.
                if let Some(pos) = s.iter().rposition(|&id| id == self.id) {
                    s.remove(pos);
                }
            });
            emit(&Event::SpanEnd {
                id: self.id,
                thread: thread_id(),
                name,
                duration,
            });
        }
        duration
    }

    /// Closes the span now and returns its measured duration.
    pub fn finish(mut self) -> Duration {
        self.close()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Opens a span named `name`, parented to the innermost open span on this
/// thread.
pub fn span(name: &str) -> Span {
    if enabled_for(name) {
        Span::armed(name.to_string())
    } else {
        Span::disarmed()
    }
}

/// Like [`span`], but the name is built lazily — the closure only runs
/// when recording is on, so dynamic names (e.g. `probe[t=7]`) cost
/// nothing on the disabled path.
pub fn span_dyn(name: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span::disarmed();
    }
    let name = name();
    if passes_filter(&name) {
        Span::armed(name)
    } else {
        Span::disarmed()
    }
}

/// Records a span that was timed externally: emits a start/end pair with
/// exactly the given duration, parented to the innermost open span.
///
/// This exists so code that already measures sections itself (e.g. the
/// Grover driver's `SectionTimes`) can report *the same* `Duration` it
/// accounts internally, keeping the two paths bit-identical.
pub fn span_closed(name: &str, duration: Duration) {
    if !enabled_for(name) {
        return;
    }
    let id = registry().next_span.fetch_add(1, Ordering::Relaxed);
    let thread = thread_id();
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    emit(&Event::SpanStart {
        id,
        parent,
        thread,
        name: name.to_string(),
    });
    emit(&Event::SpanEnd {
        id,
        thread,
        name: name.to_string(),
        duration,
    });
}

/// Increments a monotonic counter.
pub fn counter(name: &str, delta: u64) {
    if !enabled_for(name) {
        return;
    }
    emit(&Event::Counter {
        thread: thread_id(),
        name: name.to_string(),
        delta,
    });
}

/// Sets a gauge to a new value.
pub fn gauge(name: &str, value: f64) {
    if !enabled_for(name) {
        return;
    }
    emit(&Event::Gauge {
        thread: thread_id(),
        name: name.to_string(),
        value,
    });
}

/// Records one observation in a duration histogram.
pub fn observe(name: &str, duration: Duration) {
    if !enabled_for(name) {
        return;
    }
    emit(&Event::Observe {
        thread: thread_id(),
        name: name.to_string(),
        duration,
    });
}

/// Prints a progress message to stderr and, when recording is on, also
/// records it as a [`Event::Message`]. Messages bypass the name filter.
pub fn message(text: &str) {
    eprintln!("{text}");
    if enabled() {
        emit(&Event::Message {
            thread: thread_id(),
            text: text.to_string(),
        });
    }
}

/// Like [`message`], but the text is built lazily and nothing is printed
/// when recording is off — for progress lines that should only appear
/// when tracing is active.
pub fn message_if_enabled(text: impl FnOnce() -> String) {
    if enabled() {
        let text = text();
        eprintln!("{text}");
        emit(&Event::Message {
            thread: thread_id(),
            text,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; emitting tests serialize on this so
    /// their sinks never see each other's events. (Collector's own thread
    /// filter covers cross-thread noise; this covers the filter state.)
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_facade_emits_nothing_and_still_times() {
        let _l = locked();
        assert!(!enabled());
        let s = span("off.path");
        counter("off.c", 1);
        gauge("off.g", 1.0);
        observe("off.d", Duration::from_nanos(1));
        span_closed("off.closed", Duration::from_nanos(1));
        let d = s.finish();
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn spans_nest_by_thread_stack() {
        let _l = locked();
        let c = Arc::new(Collector::for_current_thread());
        let g = attach(c.clone());
        let outer = span("t.outer");
        let inner = span("t.inner");
        span_closed("t.section", Duration::from_nanos(5));
        inner.finish();
        outer.finish();
        drop(g);

        let events = c.events();
        let mut parents = std::collections::HashMap::new();
        let mut ids = std::collections::HashMap::new();
        for ev in &events {
            if let Event::SpanStart {
                id, parent, name, ..
            } = ev
            {
                ids.insert(name.clone(), *id);
                parents.insert(name.clone(), *parent);
            }
        }
        assert_eq!(parents["t.outer"], 0);
        assert_eq!(parents["t.inner"], ids["t.outer"]);
        assert_eq!(parents["t.section"], ids["t.inner"]);
        assert_eq!(c.span_total("t.section"), Duration::from_nanos(5));
        assert_eq!(c.finished_spans().len(), 3);
    }

    #[test]
    fn filter_limits_recording_by_prefix() {
        let _l = locked();
        let c = Arc::new(Collector::for_current_thread());
        let g = attach(c.clone());
        set_filter(Some(vec!["keep.".to_string()]));
        counter("keep.a", 1);
        counter("drop.b", 1);
        assert!(enabled_for("keep.x"));
        assert!(!enabled_for("drop.x"));
        let s = span_dyn(|| "drop.dynamic".to_string());
        s.finish();
        set_filter(None);
        drop(g);
        assert_eq!(c.counter_total("keep.a"), 1);
        assert_eq!(c.counter_total("drop.b"), 0);
        assert!(c.finished_spans().is_empty());
    }

    #[test]
    fn detaching_last_sink_disables_facade() {
        let _l = locked();
        let c = Arc::new(Collector::for_current_thread());
        let g = attach(c.clone());
        assert!(enabled());
        drop(g);
        assert!(!enabled());
        counter("after.detach", 1);
        assert_eq!(c.counter_total("after.detach"), 0);
    }

    #[test]
    fn finish_returns_elapsed_and_drop_does_not_double_emit() {
        let _l = locked();
        let c = Arc::new(Collector::for_current_thread());
        let g = attach(c.clone());
        {
            let s = span("once.only");
            let d = s.finish();
            assert!(d >= Duration::ZERO);
        } // drop of the already-finished span must not emit again
        drop(g);
        assert_eq!(c.finished_spans().len(), 1);
    }
}
