//! End-to-end checks of the annealing pipeline: QUBO construction →
//! Ising → minor embedding → physical annealing → unembedding → decode →
//! a verified k-plex, plus the chain statistics the Figure-11 experiment
//! relies on.

use qmkp::annealer::{anneal_qubo, embed_ising, find_embedding, unembed, Chimera, SaConfig};
use qmkp::classical::max_kplex_bnb;
use qmkp::graph::gen::paper_anneal_dataset;
use qmkp::graph::is_kplex;
use qmkp::qubo::{IsingModel, MkpQubo, MkpQuboParams, QuboModel};

/// Ising round trip: converting the embedded physical model back to QUBO
/// must preserve energies (the examples and tests rely on this identity).
fn ising_to_qubo(ising: &IsingModel) -> QuboModel {
    let mut q = QuboModel::new(ising.num_spins());
    q.add_offset(ising.offset);
    for (i, &h) in ising.h.iter().enumerate() {
        q.add_linear(i, 2.0 * h);
        q.add_offset(-h);
    }
    for (&(i, j), &jij) in &ising.j {
        q.add_quadratic(i, j, 4.0 * jij);
        q.add_linear(i, -2.0 * jij);
        q.add_linear(j, -2.0 * jij);
        q.add_offset(jij);
    }
    q
}

#[test]
fn ising_qubo_roundtrip_preserves_energy() {
    let g = paper_anneal_dataset(10, 40);
    let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
    let ising = IsingModel::from_qubo(&mq.model);
    let back = ising_to_qubo(&ising);
    for step in 0..512u128 {
        let bits = step.wrapping_mul(0x9e37_79b9) % (1u128 << mq.num_vars().min(127));
        assert!(
            (mq.model.energy_bits(bits) - back.energy_bits(bits)).abs() < 1e-9,
            "bits {bits:b}"
        );
    }
}

#[test]
fn full_hardware_pipeline_recovers_a_maximum_kplex() {
    let g = paper_anneal_dataset(10, 40);
    let k = 3;
    let opt = max_kplex_bnb(&g, k).len();
    let mq = MkpQubo::new(&g, MkpQuboParams { k, r: 2.0 });

    let edges: Vec<(usize, usize)> = mq.model.interactions().map(|(p, _)| p).collect();
    let hw = Chimera::new(12, 12, 4);
    let emb = find_embedding(&edges, mq.num_vars(), &hw, 2, 8).expect("instance embeds");
    assert!(emb.is_valid(&edges, &hw));

    // Chain strength scaled to the strongest logical coupling — the
    // standard D-Wave heuristic (too weak: chains shatter; too strong:
    // the problem signal is drowned).
    let logical_ising = IsingModel::from_qubo(&mq.model);
    let max_j = logical_ising
        .j
        .values()
        .fold(0.0f64, |acc, &j| acc.max(j.abs()))
        .max(
            logical_ising
                .h
                .iter()
                .fold(0.0f64, |acc, &h| acc.max(h.abs())),
        );
    let phys = embed_ising(&logical_ising, &emb, &hw, 1.5 * max_j);
    let phys_qubo = ising_to_qubo(&phys);
    let out = anneal_qubo(
        &phys_qubo,
        &SaConfig {
            shots: 400,
            sweeps: 80,
            ..SaConfig::default()
        },
    );

    let spins: Vec<i8> = out.best.iter().map(|&b| if b { 1 } else { -1 }).collect();
    let (logical, _broken) = unembed(&spins, &emb);
    let bits = logical
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .fold(0u128, |acc, (i, _)| acc | (1 << i));
    let plex = mq.decode_polished(bits);
    assert!(is_kplex(&g, plex, k));
    assert!(
        plex.len() + 1 >= opt,
        "hardware pipeline found {} vs optimum {opt}",
        plex.len()
    );
}

#[test]
fn chain_strength_controls_chain_breaks() {
    // With a vanishing chain strength, chains shatter; with a strong one
    // they hold. This is the mechanism behind the paper's chain-size
    // discussion (Fig. 11 / "larger chains impede cost reduction").
    let g = paper_anneal_dataset(10, 40);
    let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
    let edges: Vec<(usize, usize)> = mq.model.interactions().map(|(p, _)| p).collect();
    let hw = Chimera::new(12, 12, 4);
    let emb = find_embedding(&edges, mq.num_vars(), &hw, 4, 8).expect("instance embeds");

    let breaks_at = |strength: f64| -> usize {
        let phys = embed_ising(&IsingModel::from_qubo(&mq.model), &emb, &hw, strength);
        let phys_qubo = ising_to_qubo(&phys);
        let out = anneal_qubo(
            &phys_qubo,
            &SaConfig {
                shots: 30,
                sweeps: 12,
                seed: 8,
                ..SaConfig::default()
            },
        );
        let spins: Vec<i8> = out.best.iter().map(|&b| if b { 1 } else { -1 }).collect();
        unembed(&spins, &emb).1
    };
    let weak = breaks_at(0.01);
    let strong = breaks_at(8.0);
    assert!(
        strong <= weak,
        "strong chains ({strong}) should break no more than weak ({weak})"
    );
    assert_eq!(strong, 0, "strong coupling should hold every chain");
}

#[test]
fn qubo_variable_count_matches_paper_formula() {
    // n + Σ L_i with L_i = ⌈log₂(max(d̄_i, k−1)+1)⌉.
    for (n, m) in [(10, 40), (15, 70)] {
        let g = paper_anneal_dataset(n, m);
        let gc = g.complement();
        let k = 3;
        let mq = MkpQubo::new(&g, MkpQuboParams { k, r: 2.0 });
        let expected: usize = n
            + (0..n)
                .map(|v| {
                    let smax = gc.degree(v).max(k - 1);
                    usize::BITS as usize - smax.leading_zeros() as usize
                })
                .sum::<usize>();
        assert_eq!(mq.num_vars(), expected, "D_{{{n},{m}}}");
    }
}
