//! Ancilla-lifecycle (uncompute) verification.
//!
//! The qTKP oracle's `U_check` / flip / `U_check†` sandwich is built from
//! X / CNOT / Toffoli / CᵏNOT only, so it is a *permutation of basis
//! states* — its action is fully determined by classical bit-set
//! evaluation, no amplitudes required. This pass exploits that to prove
//! that every ancilla qubit is restored to `|0⟩` (and every free input
//! qubit preserved) at the phase-kickback boundary, for *every* reachable
//! input. A dirty ancilla here is exactly the failure mode that silently
//! corrupts amplitude amplification in the maximal-clique Grover
//! literature (Chang et al., arXiv:1803.11356; Sanyal, arXiv:2004.10596):
//! the diffusion step then interferes branches that should be identical
//! outside the search register.
//!
//! Proofs come from a ladder of three methods, recorded in the report's
//! [`ProofMethod`]:
//!
//! 1. **Symbolic** ([`crate::symbolic`]) — the default: an XOR-affine
//!    abstract interpretation that is exact at any free width and any
//!    circuit width (chunked bitsets, no 128-qubit cap). Residuals it
//!    cannot decide within the case-split budget demote the run to…
//! 2. **Enumerated** — concrete evaluation of all `2^|free|` inputs over
//!    chunked bitset states, exact while `|free|` is small enough; else…
//! 3. **Sampled** — deterministic pseudo-random inputs only, and the
//!    verdict is *downgraded*: a clean run is reported with a
//!    `sampled-proof-only` warning, never silently presented as exact.
//!
//! Violations are attributed by concrete replay either way: the
//! diagnostic names the violating free-register input and the gate that
//! last flipped the offending qubit — the gate whose uncompute partner
//! is missing or wrong.

use crate::diagnostic::{Diagnostic, Severity, Span};
use crate::symbolic::{analyze_symbolic, SymbolicOutcome};
use qmkp_qsim::bits::BitVec;
use qmkp_qsim::{Circuit, Gate};

/// What the ancilla pass should assume and check.
#[derive(Debug, Clone)]
pub struct AncillaSpec {
    /// Qubits holding the superposed search register (the oracle's vertex
    /// qubits). They take every value; the pass proves they are preserved.
    pub free: Vec<usize>,
    /// Qubits allowed to differ from their input at the end (the oracle
    /// qubit `|O⟩`, or a comparator's result bit). Every other non-free
    /// qubit starts `|0⟩` and must end `|0⟩`.
    pub dirty_ok: Vec<usize>,
    /// When the symbolic pass demurs: enumerate exhaustively while
    /// `|free| ≤ max_exhaustive_bits`; beyond that, sample. Default 16
    /// (65 536 inputs).
    pub max_exhaustive_bits: usize,
    /// Number of sampled inputs in the fallback mode. Default 512.
    pub samples: usize,
    /// Try the symbolic XOR-affine proof first (default). Disable to
    /// force the enumerative path — differential tests do.
    pub symbolic: bool,
    /// Widest residual input cone (in bits) the symbolic pass may
    /// case-split exhaustively before giving up. Default 20 (≤ ~1M
    /// assignments per undecided residual).
    pub split_budget: usize,
}

impl AncillaSpec {
    /// A spec with the default proof ladder and enumeration limits.
    pub fn new(free: Vec<usize>, dirty_ok: Vec<usize>) -> Self {
        AncillaSpec {
            free,
            dirty_ok,
            max_exhaustive_bits: 16,
            samples: 512,
            symbolic: true,
            split_budget: 20,
        }
    }
}

/// How a verdict was established, strongest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofMethod {
    /// XOR-affine symbolic proof: exact for every input, at any width.
    Symbolic,
    /// Concrete evaluation of every free-register assignment.
    Enumerated,
    /// Concrete evaluation of sampled assignments only — not a proof.
    Sampled,
}

impl ProofMethod {
    /// Stable lowercase label, used in rendered and JSON reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProofMethod::Symbolic => "symbolic",
            ProofMethod::Enumerated => "enumerated",
            ProofMethod::Sampled => "sampled",
        }
    }
}

/// The outcome of one ancilla-lifecycle verification.
#[derive(Debug, Clone)]
pub struct AncillaReport {
    /// Findings, if any. Clean circuits produce none (exact modes) or
    /// a single sampling warning (fallback mode).
    pub diagnostics: Vec<Diagnostic>,
    /// Whether the verdict covers *every* free-register assignment
    /// (symbolic proof or full enumeration).
    pub exhaustive: bool,
    /// The method that established the verdict.
    pub proof: ProofMethod,
    /// Concrete inputs evaluated: enumerated/sampled assignments,
    /// case-split cases inside the symbolic pass, and witness replays. A
    /// purely syntactic symbolic proof legitimately reports 0.
    pub inputs_checked: u64,
    /// `live_gates[i]` is true when gate `i` fired (flipped its target)
    /// on at least one reachable input. Exact under a symbolic proof
    /// with all liveness cones within budget, or a full enumeration;
    /// used by the dead-gate note and by mutation tests to seed only
    /// detectable mutations.
    pub live_gates: Vec<bool>,
}

impl AncillaReport {
    /// Whether the pass proved (or, in sampling mode, failed to refute)
    /// cleanliness.
    pub fn is_clean(&self) -> bool {
        !crate::diagnostic::has_errors(&self.diagnostics)
    }
}

/// The section (if any) a gate index falls into, for span enrichment.
fn section_of(circuit: &Circuit, gate: usize) -> Option<String> {
    circuit
        .sections()
        .iter()
        .find(|s| s.range.contains(&gate))
        .map(|s| s.name.clone())
}

/// Splitmix64: deterministic sampling without a rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Renders a free-register assignment for diagnostics: binary like the
/// historical `u128` formatting when it fits, hex words beyond that.
fn fmt_assignment(assignment: &BitVec) -> String {
    match assignment.as_u128() {
        Some(v) => format!("{v:#b}"),
        None => {
            let mut s = String::from("0x");
            for w in assignment.words().iter().rev() {
                s.push_str(&format!("{w:016x}"));
            }
            s
        }
    }
}

/// Concretely evaluates the permutation on one input, tracking which
/// gates fired and which gate last flipped each qubit (for violation
/// attribution). Chunked state: no width limit.
fn eval_circuit(
    circuit: &Circuit,
    input: &BitVec,
    live: &mut [bool],
    last_flip: &mut [Option<usize>],
) -> BitVec {
    let mut state = input.clone();
    for (i, gate) in circuit.gates().iter().enumerate() {
        match gate {
            Gate::X(q) => {
                state.toggle(*q);
                live[i] = true;
                last_flip[*q] = Some(i);
            }
            Gate::Mcx { controls, target }
                if controls.iter().all(|c| state.get(c.qubit) == c.positive) =>
            {
                state.toggle(*target);
                live[i] = true;
                last_flip[*target] = Some(i);
            }
            // Unreachable: non-permutation gates error out before
            // evaluation starts.
            _ => {}
        }
    }
    state
}

/// Emits one violation diagnostic for a qubit left in the wrong state.
fn push_violation(
    circuit: &Circuit,
    spec: &AncillaSpec,
    q: usize,
    gate: Option<usize>,
    assignment: &BitVec,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let (role, code) = if spec.free.contains(&q) {
        ("free (search-register) qubit", "free-qubit-corrupted")
    } else {
        ("ancilla qubit", "ancilla-dirty")
    };
    diagnostics.push(Diagnostic::error(
        code,
        Span {
            gate,
            qubit: Some(q),
            section: gate.and_then(|g| section_of(circuit, g)),
        },
        format!(
            "{role} {q} is not restored on free-register input {}; last flipped by gate {}",
            fmt_assignment(assignment),
            gate.map_or_else(|| "<none>".to_string(), |g| format!("#{g}")),
        ),
    ));
}

/// Dead gates are only decidable after an exact liveness analysis. Cap
/// the individual notes (constant registers routinely strand whole
/// comparator cascades) — `live_gates` always has the full picture.
fn push_dead_gate_notes(circuit: &Circuit, live: &[bool], diagnostics: &mut Vec<Diagnostic>) {
    const MAX_DEAD_GATE_NOTES: usize = 8;
    let dead: Vec<usize> = live
        .iter()
        .enumerate()
        .filter(|(_, l)| !**l)
        .map(|(i, _)| i)
        .collect();
    for &i in dead.iter().take(MAX_DEAD_GATE_NOTES) {
        diagnostics.push(Diagnostic::note(
            "dead-gate",
            Span {
                gate: Some(i),
                qubit: circuit.gates()[i].qubits().last().copied(),
                section: section_of(circuit, i),
            },
            format!(
                "gate #{i} never fires on any reachable input \
                 (controls unsatisfiable given the |0⟩-initialized ancillas)"
            ),
        ));
    }
    if dead.len() > MAX_DEAD_GATE_NOTES {
        diagnostics.push(Diagnostic::note(
            "dead-gate",
            Span::default(),
            format!(
                "…and {} more gates that never fire ({} dead of {} total)",
                dead.len() - MAX_DEAD_GATE_NOTES,
                dead.len(),
                circuit.len()
            ),
        ));
    }
}

/// Statically verifies ancilla cleanliness: for every assignment of the
/// free register (proven symbolically, enumerated, or sampled — see the
/// module docs for the ladder), with all other qubits starting `|0⟩`,
/// the circuit must restore every qubit outside `spec.dirty_ok` to its
/// input value. Violations are reported with the gate index that last
/// flipped the offending qubit — the gate whose uncompute partner is
/// missing or wrong.
///
/// Non-permutation gates (`H`, `Z`, `Phase`, `Ry`, `CPhase`, `MCZ`) make
/// the property undecidable by bit-set evaluation and are reported as
/// errors: the paper's `U_check` is classical-reversible by construction,
/// so their presence is itself a structural defect.
pub fn verify_ancillas(circuit: &Circuit, spec: &AncillaSpec) -> AncillaReport {
    let mut diagnostics = Vec::new();
    let width = circuit.width();

    // Spec sanity: free/dirty_ok qubits must exist and be distinct.
    let mut seen = vec![false; width.max(1)];
    for &q in spec.free.iter().chain(&spec.dirty_ok) {
        if q >= width {
            diagnostics.push(Diagnostic::error(
                "spec-qubit-out-of-range",
                Span::at_qubit(q),
                format!("spec references qubit {q}, but the circuit has width {width}"),
            ));
        } else if std::mem::replace(&mut seen[q], true) {
            diagnostics.push(Diagnostic::error(
                "spec-qubit-duplicated",
                Span::at_qubit(q),
                format!("qubit {q} appears more than once across `free`/`dirty_ok`"),
            ));
        }
    }
    // Permutation-only precondition.
    for (i, gate) in circuit.gates().iter().enumerate() {
        if !gate.is_permutation() {
            diagnostics.push(Diagnostic::error(
                "non-permutation-gate",
                Span {
                    gate: Some(i),
                    qubit: gate.qubits().first().copied(),
                    section: section_of(circuit, i),
                },
                format!(
                    "ancilla verification requires a classical-reversible circuit, \
                     but gate #{i} is {gate:?}"
                ),
            ));
        }
    }
    if crate::diagnostic::has_errors(&diagnostics) {
        return AncillaReport {
            diagnostics,
            exhaustive: false,
            proof: ProofMethod::Enumerated,
            inputs_checked: 0,
            live_gates: vec![false; circuit.len()],
        };
    }

    let dirty_ok = {
        let mut v = vec![false; width.max(1)];
        for &q in &spec.dirty_ok {
            v[q] = true;
        }
        v
    };

    // Rung 1: the symbolic XOR-affine proof, exact at any width.
    if spec.symbolic {
        let analysis = analyze_symbolic(circuit, &spec.free, &spec.dirty_ok, spec.split_budget);
        match analysis.outcome {
            SymbolicOutcome::Clean => {
                if analysis.liveness_exact {
                    push_dead_gate_notes(circuit, &analysis.live_gates, &mut diagnostics);
                }
                return AncillaReport {
                    diagnostics,
                    exhaustive: true,
                    proof: ProofMethod::Symbolic,
                    inputs_checked: analysis.cases_evaluated,
                    live_gates: analysis.live_gates,
                };
            }
            SymbolicOutcome::Dirty(witnesses) => {
                // Ground every finding in a concrete replay: the
                // symbolic engine supplies candidate inputs, evaluation
                // supplies the dirt and the last-flip attribution.
                let mut inputs_checked = analysis.cases_evaluated;
                let mut reported = vec![false; width.max(1)];
                let mut found = 0usize;
                for w in &witnesses {
                    if reported[w.qubit] {
                        continue;
                    }
                    let mut input = BitVec::new();
                    for (bit, &q) in spec.free.iter().enumerate() {
                        if w.assignment.get(bit) {
                            input.set(q, true);
                        }
                    }
                    let mut live = vec![false; circuit.len()];
                    let mut last_flip: Vec<Option<usize>> = vec![None; width.max(1)];
                    let state = eval_circuit(circuit, &input, &mut live, &mut last_flip);
                    inputs_checked += 1;
                    let mut dirt = state;
                    dirt.xor_with(&input);
                    for q in dirt.ones().filter(|&q| !dirty_ok[q]) {
                        if !std::mem::replace(&mut reported[q], true) {
                            push_violation(
                                circuit,
                                spec,
                                q,
                                last_flip[q],
                                &w.assignment,
                                &mut diagnostics,
                            );
                            found += 1;
                        }
                    }
                }
                if found > 0 {
                    return AncillaReport {
                        diagnostics,
                        exhaustive: true,
                        proof: ProofMethod::Symbolic,
                        inputs_checked,
                        live_gates: analysis.live_gates,
                    };
                }
                // A witness that does not replay means the symbolic
                // model disagrees with concrete evaluation — never
                // trust it; fall through to enumeration.
                diagnostics.push(Diagnostic::warning(
                    "symbolic-witness-mismatch",
                    Span::default(),
                    "a symbolic witness did not reproduce under concrete evaluation; \
                     falling back to enumeration"
                        .to_string(),
                ));
            }
            SymbolicOutcome::BudgetExceeded {
                qubit,
                cone_bits,
                budget,
            } => {
                diagnostics.push(Diagnostic::note(
                    "symbolic-budget-exceeded",
                    Span::at_qubit(qubit),
                    format!(
                        "qubit {qubit}'s residual depends on {cone_bits} free bits \
                         (case-split budget {budget}); falling back to enumeration"
                    ),
                ));
            }
        }
    }

    // Rungs 2/3: concrete enumeration (exhaustive when the free register
    // is small enough) or deterministic sampling, over chunked bitsets.
    let free_bits = spec.free.len();
    let exhaustive = free_bits <= spec.max_exhaustive_bits && free_bits < 63;
    let total: u64 = if exhaustive {
        1u64 << free_bits
    } else {
        spec.samples as u64
    };

    let mut live = vec![false; circuit.len()];
    let mut last_flip: Vec<Option<usize>> = vec![None; width.max(1)];
    let mut rng_state = 0x71c9_a57c_8d2b_f00du64;
    let mut inputs_checked = 0u64;

    for step in 0..total {
        let assignment: BitVec = if exhaustive {
            BitVec::from_u128(u128::from(step))
        } else {
            let mut words = Vec::with_capacity(free_bits.div_ceil(64));
            for _ in 0..free_bits.div_ceil(64) {
                words.push(splitmix64(&mut rng_state));
            }
            if !free_bits.is_multiple_of(64) {
                if let Some(last) = words.last_mut() {
                    *last &= (1u64 << (free_bits % 64)) - 1;
                }
            }
            BitVec::from_words(words)
        };
        // Scatter assignment bits onto the free qubits.
        let mut input = BitVec::new();
        for (bit, &q) in spec.free.iter().enumerate() {
            if assignment.get(bit) {
                input.set(q, true);
            }
        }

        let state = eval_circuit(circuit, &input, &mut live, &mut last_flip);
        inputs_checked += 1;

        let mut dirt = state;
        dirt.xor_with(&input);
        let dirty: Vec<usize> = dirt.ones().filter(|&q| !dirty_ok[q]).collect();
        if !dirty.is_empty() {
            for q in dirty {
                push_violation(
                    circuit,
                    spec,
                    q,
                    last_flip[q],
                    &assignment,
                    &mut diagnostics,
                );
            }
            // One violating input pins down the defect; stop enumerating.
            break;
        }
    }

    if !exhaustive {
        diagnostics.push(Diagnostic::warning(
            "sampled-proof-only",
            Span::default(),
            format!(
                "free register has {free_bits} qubits (> {} exhaustive limit); \
                 cleanliness checked on {inputs_checked} sampled inputs only",
                spec.max_exhaustive_bits
            ),
        ));
    } else if !crate::diagnostic::has_errors(&diagnostics) && inputs_checked == total {
        push_dead_gate_notes(circuit, &live, &mut diagnostics);
    }

    AncillaReport {
        diagnostics,
        exhaustive,
        proof: if exhaustive {
            ProofMethod::Enumerated
        } else {
            ProofMethod::Sampled
        },
        inputs_checked,
        live_gates: live,
    }
}

/// Convenience predicate: `true` when the pass finds no error-severity
/// diagnostics (sampling warnings and dead-gate notes are allowed).
pub fn is_clean(circuit: &Circuit, spec: &AncillaSpec) -> bool {
    verify_ancillas(circuit, spec)
        .diagnostics
        .iter()
        .all(|d| d.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_qsim::QubitAllocator;

    /// cnot(0→1), ccnot(0,1→2), then the mirror: fully clean.
    fn clean_sandwich() -> (Circuit, AncillaSpec) {
        let mut c = Circuit::new(4);
        c.push_unchecked(Gate::cnot(0, 1));
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.push_unchecked(Gate::ccnot(1, 2, 3)); // "flip" onto result 3
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.push_unchecked(Gate::cnot(0, 1));
        (c, AncillaSpec::new(vec![0], vec![3]))
    }

    #[test]
    fn clean_circuit_passes_symbolically() {
        let (c, spec) = clean_sandwich();
        let report = verify_ancillas(&c, &spec);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.exhaustive);
        assert_eq!(report.proof, ProofMethod::Symbolic);
        // The sandwich cancels syntactically and liveness resolves on
        // the screening lanes: no concrete case was ever needed.
        assert_eq!(report.inputs_checked, 0);
        assert!(report.live_gates.iter().all(|&l| l));
    }

    #[test]
    fn enumerated_path_agrees_with_symbolic() {
        let (c, mut spec) = clean_sandwich();
        spec.symbolic = false;
        let report = verify_ancillas(&c, &spec);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.exhaustive);
        assert_eq!(report.proof, ProofMethod::Enumerated);
        assert_eq!(report.inputs_checked, 2);
        assert!(report.live_gates.iter().all(|&l| l));
    }

    #[test]
    fn dropped_uncompute_gate_is_flagged_with_its_index() {
        let (c, spec) = clean_sandwich();
        // Drop gate #4 (the final cnot uncompute).
        let mut mutated = Circuit::new(c.width());
        for (i, g) in c.gates().iter().enumerate() {
            if i != 4 {
                mutated.push_unchecked(g.clone());
            }
        }
        let report = verify_ancillas(&mutated, &spec);
        assert!(!report.is_clean());
        assert_eq!(report.proof, ProofMethod::Symbolic);
        assert!(report.exhaustive, "a symbolic violation is still exact");
        let dirty: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "ancilla-dirty")
            .collect();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].span.qubit, Some(1));
        // Qubit 1 was last flipped by the (former) compute cnot, gate #0.
        assert_eq!(dirty[0].span.gate, Some(0));
    }

    #[test]
    fn corrupted_free_qubit_uses_its_own_code() {
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::X(0));
        let report = verify_ancillas(&c, &AncillaSpec::new(vec![0], vec![]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "free-qubit-corrupted"));
    }

    #[test]
    fn non_permutation_gate_is_an_error() {
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::H(0));
        let report = verify_ancillas(&c, &AncillaSpec::new(vec![0], vec![]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "non-permutation-gate"));
        assert_eq!(report.inputs_checked, 0);
    }

    #[test]
    fn dead_gates_are_noted() {
        let mut alloc = QubitAllocator::new();
        let v = alloc.alloc_one("v");
        let anc = alloc.alloc_one("anc");
        let t = alloc.alloc_one("t");
        let mut c = Circuit::new(alloc.width());
        // anc starts |0⟩ and nothing sets it, so this gate can never fire.
        c.push_unchecked(Gate::ccnot(v, anc, t));
        let report = verify_ancillas(&c, &AncillaSpec::new(vec![v], vec![]));
        assert!(report.is_clean());
        assert_eq!(report.proof, ProofMethod::Symbolic);
        let dead: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "dead-gate")
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].span.gate, Some(0));
        assert!(!report.live_gates[0]);
    }

    #[test]
    fn bad_spec_is_rejected() {
        let c = Circuit::new(2);
        let report = verify_ancillas(&c, &AncillaSpec::new(vec![5], vec![]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "spec-qubit-out-of-range"));
        let report = verify_ancillas(&c, &AncillaSpec::new(vec![0], vec![0]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "spec-qubit-duplicated"));
    }

    #[test]
    fn wide_free_register_falls_back_to_sampling_without_symbolic() {
        let mut spec = AncillaSpec::new((0..10).collect(), vec![]);
        spec.max_exhaustive_bits = 4;
        spec.samples = 32;
        spec.symbolic = false;
        let c = Circuit::new(10);
        let report = verify_ancillas(&c, &spec);
        assert!(!report.exhaustive);
        assert_eq!(report.proof, ProofMethod::Sampled);
        assert_eq!(report.inputs_checked, 32);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "sampled-proof-only" && d.severity == Severity::Warning));
    }

    #[test]
    fn symbolic_proof_retires_the_sampling_fallback() {
        // Same wide spec, symbolic left on: the proof is exact where
        // enumeration had to sample.
        let mut spec = AncillaSpec::new((0..10).collect(), vec![]);
        spec.max_exhaustive_bits = 4;
        spec.samples = 32;
        let c = Circuit::new(10);
        let report = verify_ancillas(&c, &spec);
        assert!(report.exhaustive);
        assert_eq!(report.proof, ProofMethod::Symbolic);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code != "sampled-proof-only"));
    }

    #[test]
    fn budget_exceeded_falls_back_to_enumeration_with_a_note() {
        // q8 ends as P(x0..x7) ⊕ (A(x0..x6) ∧ x7): semantically zero but
        // syntactically distinct products, so the symbolic pass needs an
        // 8-bit case-split — denied by a 4-bit budget.
        let ctrl = |qs: &[usize], t: usize| Gate::Mcx {
            controls: qs
                .iter()
                .map(|&q| qmkp_qsim::Control {
                    qubit: q,
                    positive: true,
                })
                .collect(),
            target: t,
        };
        let mut c = Circuit::new(10);
        c.push_unchecked(ctrl(&(0..8).collect::<Vec<_>>(), 8));
        c.push_unchecked(ctrl(&(0..7).collect::<Vec<_>>(), 9));
        c.push_unchecked(ctrl(&[9, 7], 8));
        c.push_unchecked(ctrl(&(0..7).collect::<Vec<_>>(), 9));
        let mut spec = AncillaSpec::new((0..8).collect(), vec![]);
        spec.split_budget = 4;
        let report = verify_ancillas(&c, &spec);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.exhaustive, "8 free bits enumerate exhaustively");
        assert_eq!(report.proof, ProofMethod::Enumerated);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "symbolic-budget-exceeded" && d.severity == Severity::Note));
        assert_eq!(report.inputs_checked, 256);
    }

    #[test]
    fn is_clean_helper_tolerates_notes() {
        let (c, spec) = clean_sandwich();
        assert!(is_clean(&c, &spec));
    }
}
