//! Property-based tests: all exact solvers agree with the naive
//! enumerator on arbitrary random instances.

use proptest::prelude::*;
use qmkp_classical::{grasp_kplex, max_kplex_bnb, max_kplex_bs, max_kplex_naive};
use qmkp_graph::gen::gnm;
use qmkp_graph::is_kplex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_solvers_agree(
        (n, m, seed) in (2usize..=9).prop_flat_map(|n| {
            (Just(n), 0..=(n * (n - 1) / 2), any::<u64>())
        }),
        k in 1usize..=3,
    ) {
        let g = gnm(n, m, seed).unwrap();
        let naive = max_kplex_naive(&g, k);
        let bnb = max_kplex_bnb(&g, k);
        let (bs, _) = max_kplex_bs(&g, k);
        prop_assert!(is_kplex(&g, naive, k));
        prop_assert!(is_kplex(&g, bnb, k));
        prop_assert!(is_kplex(&g, bs, k));
        prop_assert_eq!(naive.len(), bnb.len());
        prop_assert_eq!(naive.len(), bs.len());
    }

    #[test]
    fn grasp_is_feasible_and_bounded(
        (n, m, seed) in (2usize..=9).prop_flat_map(|n| {
            (Just(n), 0..=(n * (n - 1) / 2), any::<u64>())
        }),
        k in 1usize..=3,
    ) {
        let g = gnm(n, m, seed).unwrap();
        let h = grasp_kplex(&g, k, 5, 0.4, seed);
        prop_assert!(is_kplex(&g, h, k));
        prop_assert!(h.len() <= max_kplex_naive(&g, k).len());
        prop_assert!(!h.is_empty());
    }
}
