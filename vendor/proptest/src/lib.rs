//! Offline vendored stand-in for the [`proptest`](https://docs.rs/proptest)
//! crate.
//!
//! The build environment has no network access, so the real crate cannot
//! be downloaded. This implementation covers the API subset the workspace
//! uses — the [`strategy::Strategy`] combinators (`prop_map`,
//! `prop_flat_map`, `prop_filter_map`), range and tuple strategies,
//! [`arbitrary::any`], [`collection::vec`], [`strategy::Just`],
//! `prop_oneof!` and the `proptest!` / `prop_assert*` macros — with one
//! deliberate simplification: **no shrinking**. A failing case reports the
//! generated inputs verbatim instead of a minimized counterexample.
//! Generation is seeded deterministically per test, so failures reproduce.

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo)]
pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(
                    config.clone(),
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    let case: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat = match $crate::strategy::Strategy::new_value(
                                    &($strat),
                                    &mut runner,
                                ) {
                                    ::std::result::Result::Ok(v) => v,
                                    ::std::result::Result::Err(r) => {
                                        return ::std::result::Result::Err(
                                            $crate::test_runner::TestCaseError::Reject(r),
                                        )
                                    }
                                };
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match case {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest: too many rejected cases ({rejected}) in {}",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case failed in {} (case {accepted}): {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current test case with a formatted message unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Rejects (skips) the current test case unless the assumption holds;
/// rejected cases do not count toward the configured case total.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                $crate::strategy::Rejection(concat!("assumption failed: ", stringify!($cond))),
            ));
        }
    };
}

/// Chooses uniformly among several strategies producing the same value
/// type (weights are not supported by this vendored subset).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(a in 0usize..10, (b, c) in (0u64..5, -1.0f64..1.0)) {
            prop_assert!(a < 10);
            prop_assert!(b < 5);
            prop_assert!((-1.0..1.0).contains(&c));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_and_combinators(
            v in proptest::collection::vec(0u32..100, 1..8),
            x in any::<bool>(),
            y in Just(7usize),
            z in (1usize..4).prop_flat_map(|n| proptest::collection::vec(Just(n), n)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 100));
            let _ = x;
            prop_assert_eq!(y, 7);
            prop_assert_eq!(z.len(), z[0]);
        }
    }

    proptest! {
        #[test]
        fn oneof_filter_and_assume(
            pick in prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|x| x)],
            odd in (0u32..100).prop_filter_map("odd", |x| (x % 2 == 1).then_some(x)),
        ) {
            prop_assume!(pick != 2);
            prop_assert!(pick == 1 || (3..5).contains(&pick));
            prop_assert!(odd % 2 == 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x={x} is never > 100");
            }
        }
        inner();
    }
}
