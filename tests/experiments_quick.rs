//! Smoke tests of the experiment drivers (the code that regenerates the
//! paper's tables and figures), exercised at reduced size through the
//! `qmkp-bench` library. The full-size runs live in `crates/bench/src/bin`.

use qmkp_bench::cost_runtime::{default_runtimes, run_cost_vs_runtime};

#[test]
fn cost_vs_runtime_produces_sane_series() {
    std::env::set_var("QMKP_QUICK", "1");
    let cr = run_cost_vs_runtime(10, 40, 3, 2.0, 1.0, &default_runtimes(true), 17);
    assert_eq!(cr.series.len(), 4, "qaMKP, SA, MILP, haMKP");
    assert!(cr.num_vars >= 10);

    for s in &cr.series {
        assert!(!s.points.is_empty(), "{} has points", s.name);
        for &(t, cost) in &s.points {
            assert!(t > 0.0);
            assert!(cost.is_finite());
            // No solver may report a cost below the global optimum bound
            // −n (the best possible objective is −|max plex| ≥ −n).
            assert!(cost >= -10.0 - 1e-9, "{}: cost {cost}", s.name);
        }
    }

    // Each solver's cost must be non-increasing in runtime (same seed,
    // nested effort).
    for s in &cr.series[..3] {
        for w in s.points.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "{}: cost increased from {:?} to {:?}",
                s.name,
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn milp_with_budget_reaches_the_true_optimum() {
    // The Figures-9/10 shape: the anytime exact solver reaches the true
    // optimum given enough budget. D_{10,40} at k = 3 has a maximum
    // 3-plex of size 9, so the optimal objective cost is −9.
    use qmkp::classical::max_kplex_bnb;
    use qmkp::graph::gen::paper_anneal_dataset;
    use qmkp::milp::{minimize_qubo, BnbConfig};
    use qmkp::qubo::{MkpQubo, MkpQuboParams};

    let g = paper_anneal_dataset(10, 40);
    let opt = max_kplex_bnb(&g, 3).len() as f64;
    let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
    let out = minimize_qubo(
        &mq.model,
        &BnbConfig {
            time_limit: std::time::Duration::from_secs(20),
            ..BnbConfig::default()
        },
    );
    assert!(
        (out.best_energy + opt).abs() < 1e-9,
        "MILP best {} vs −{opt}",
        out.best_energy
    );
}
