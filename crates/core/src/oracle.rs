//! The qTKP oracle: `U_check` and the oracle-qubit flip.
//!
//! `U_check` computes, reversibly, whether the vertex-qubit basis state is
//! a k-cplex of the complement graph with at least `T` vertices. Its four
//! stages mirror the paper's Challenges I-IV and are tagged as circuit
//! sections:
//!
//! 1. `graph_encoding` — one C²NOT per complement edge activates `|e_j⟩`
//!    iff both endpoints are selected (Figure 6, box A).
//! 2. `degree_count` — for each vertex, a popcount of its incident edge
//!    qubits into `|c_i⟩` (Figure 6, box B; the conceptual control-`a`
//!    gate).
//! 3. `degree_compare` — each `|c_i⟩` is compared with `|k-1⟩`; flag
//!    `|d_i⟩` is set iff `c_i ≤ k-1`, then a CⁿNOT ANDs all flags into
//!    `|cplex⟩` (Figure 9).
//! 4. `size_check` — popcount of the vertex qubits into `|size⟩`, compare
//!    with `|T⟩` into `|size ≥ T⟩` (Figure 11, boxes A-B).
//!
//! The final flip (Figure 11, box C) — a Toffoli from `|cplex⟩` and
//! `|size ≥ T⟩` onto `|O⟩` — is kept *outside* `U_check` so the Grover
//! driver can run `U_check`, flip, `U_check†` exactly as in Figure 12.

use crate::layout::OracleLayout;
use qmkp_arith::{compare_le_clean, controlled_increment, load_const, popcount_into};
use qmkp_graph::{Graph, VertexSet};
use qmkp_qsim::{Circuit, Gate};

/// Per-section elementary gate cost of an oracle (the static counterpart
/// of the Table-IV runtime shares).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleSectionCost {
    /// Cost of the graph-encoding stage.
    pub graph_encoding: usize,
    /// Cost of the degree-counting stage (oracle part 1).
    pub degree_count: usize,
    /// Cost of the degree-comparison stage (oracle part 2).
    pub degree_compare: usize,
    /// Cost of the size-determination stage (oracle part 3).
    pub size_check: usize,
}

impl OracleSectionCost {
    /// Total elementary cost across all four stages.
    pub fn total(&self) -> usize {
        self.graph_encoding + self.degree_count + self.degree_compare + self.size_check
    }
}

/// A fully-built qTKP oracle for a specific `(G, k, T)`.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// The qubit layout.
    pub layout: OracleLayout,
    /// The original graph.
    graph: Graph,
    /// The forward check circuit (sections 1-4, no `|O⟩` flip).
    u_check: Circuit,
    /// `U_check†`.
    u_check_inv: Circuit,
}

impl Oracle {
    /// Builds the oracle circuit for finding k-plexes of size ≥ `t` in `g`.
    ///
    /// # Panics
    /// Panics on invalid `k` / `t` (see [`OracleLayout::new`]).
    pub fn new(g: &Graph, k: usize, t: usize) -> Self {
        let layout = OracleLayout::new(g, k, t);
        let mut c = Circuit::new(layout.width);

        // --- Challenge I: graph encoding -------------------------------
        c.begin_section("graph_encoding");
        for (j, &(u, v)) in layout.edge_pairs.iter().enumerate() {
            c.push_unchecked(Gate::ccnot(
                layout.vertices.qubit(u),
                layout.vertices.qubit(v),
                layout.edges.qubit(j),
            ));
        }

        // --- Challenge II: degree counting (oracle part 1) -------------
        c.begin_section("degree_count");
        for v in 0..layout.n {
            for e in layout.incident_edge_qubits(v) {
                controlled_increment(&mut c, e, &layout.counters[v]);
            }
        }

        // --- Challenge III: degree comparison (oracle part 2) ----------
        c.begin_section("degree_compare");
        load_const(&mut c, &layout.k_minus_1, (layout.k - 1) as u128);
        for v in 0..layout.n {
            compare_le_clean(
                &mut c,
                &layout.counters[v],
                &layout.k_minus_1,
                layout.d_flags.qubit(v),
                &layout.cmp_degree,
            );
        }
        // cplex = d_1 ∧ d_2 ∧ … ∧ d_n (Figure 9, box B).
        c.push_unchecked(Gate::mcx_pos(layout.d_flags.iter(), layout.cplex));

        // --- Challenge IV: size determination (oracle part 3) ----------
        c.begin_section("size_check");
        popcount_into(&mut c, &layout.vertices.qubits(), &layout.size);
        load_const(&mut c, &layout.t_reg, layout.t as u128);
        // size ≥ T ⇔ T ≤ size.
        compare_le_clean(
            &mut c,
            &layout.t_reg,
            &layout.size,
            layout.size_ge_t,
            &layout.cmp_size,
        );
        c.end_section();

        let u_check_inv = c.inverse();
        let oracle = Oracle {
            layout,
            graph: g.clone(),
            u_check: c,
            u_check_inv,
        };
        // Opt-in static self-verification: prove the ancilla discipline
        // and resource bounds at construction time in debug builds. The
        // symbolic pass is exact at any width, so the proof must be
        // exhaustive — a sampled fallback here is itself a regression.
        #[cfg(all(debug_assertions, feature = "verify"))]
        {
            let report = oracle.lint_report();
            assert!(
                !report.has_errors(),
                "oracle failed static verification:\n{}",
                report.render()
            );
            assert!(
                report.exhaustive,
                "oracle verification was not exact (proof: {}):\n{}",
                report.proof.label(),
                report.render()
            );
        }
        oracle
    }

    /// The ancilla contract of the full `U_check · flip · U_check†`
    /// sandwich: the vertex register is free input, everything else is an
    /// ancilla that must return to |0⟩ — except `|O⟩`, which carries the
    /// answer out.
    pub fn lint_spec(&self) -> qmkp_lint::AncillaSpec {
        qmkp_lint::AncillaSpec::new(
            self.layout.vertices.iter().collect(),
            vec![self.layout.oracle],
        )
    }

    /// The paper's closed-form resource model for this instance
    /// (Eq. 6/7, §IV), specialized to the layout's complement degree
    /// sequence.
    pub fn resource_model(&self) -> qmkp_lint::ResourceModel {
        let mut cdegs = vec![0usize; self.layout.n];
        for &(u, v) in &self.layout.edge_pairs {
            cdegs[u] += 1;
            cdegs[v] += 1;
        }
        qmkp_lint::qtkp_oracle_model(&cdegs, self.layout.k, self.layout.t)
    }

    /// Statically analyzes the full `U_check · flip · U_check†` circuit:
    /// structural checks, exact ancilla verification, and the closed-form
    /// resource audit, as one machine-readable report.
    pub fn lint_report(&self) -> qmkp_lint::AnalysisReport {
        let mut full = self.u_check.clone();
        full.push_unchecked(self.flip_gate());
        full.extend(&self.u_check_inv)
            .expect("U_check and U_check† share one layout width");
        let name = format!(
            "qtkp-oracle-n{}-k{}-t{}",
            self.layout.n, self.layout.k, self.layout.t
        );
        qmkp_lint::analyze(
            &name,
            &full,
            &self.lint_spec(),
            Some(&self.resource_model()),
        )
    }

    /// The forward check circuit (`U_check`).
    pub fn u_check(&self) -> &Circuit {
        &self.u_check
    }

    /// The uncompute circuit (`U_check†`).
    pub fn u_check_inv(&self) -> &Circuit {
        &self.u_check_inv
    }

    /// The oracle-qubit flip (Figure 11, box C): Toffoli from `|cplex⟩`
    /// and `|size ≥ T⟩` onto `|O⟩`.
    pub fn flip_gate(&self) -> Gate {
        Gate::ccnot(self.layout.cplex, self.layout.size_ge_t, self.layout.oracle)
    }

    /// The graph the oracle was built for.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The classical predicate the oracle decides: `s` is a k-plex of the
    /// original graph (⇔ k-cplex of the complement) with `|s| ≥ T`.
    pub fn predicate(&self, s: VertexSet) -> bool {
        s.len() >= self.layout.t && qmkp_graph::is_kplex(&self.graph, s, self.layout.k)
    }

    /// Per-section elementary cost of one `U_check` application.
    pub fn section_cost(&self) -> OracleSectionCost {
        let mut cost = OracleSectionCost {
            graph_encoding: 0,
            degree_count: 0,
            degree_compare: 0,
            size_check: 0,
        };
        for (name, stats) in self.u_check.section_stats() {
            match name.as_str() {
                "graph_encoding" => cost.graph_encoding = stats.elementary_cost,
                "degree_count" => cost.degree_count = stats.elementary_cost,
                "degree_compare" => cost.degree_compare = stats.elementary_cost,
                "size_check" => cost.size_check = stats.elementary_cost,
                other => unreachable!("unknown oracle section {other}"),
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_arith::classical_eval;
    use qmkp_graph::gen::{gnm, paper_fig1_graph};

    /// Runs U_check classically on every vertex subset and checks the
    /// cplex / size≥T / combined flags against the graph-theoretic truth.
    fn check_oracle_exhaustively(g: &Graph, k: usize, t: usize) {
        let oracle = Oracle::new(g, k, t);
        let l = &oracle.layout;
        let gc = g.complement();
        for bits in 0..(1u128 << l.n) {
            let s = VertexSet::from_bits(bits);
            let input = bits << l.vertices.start;
            let out = classical_eval(oracle.u_check(), input);
            let cplex_flag = (out >> l.cplex) & 1 == 1;
            let size_flag = (out >> l.size_ge_t) & 1 == 1;
            assert_eq!(
                cplex_flag,
                qmkp_graph::is_kcplex(&gc, s, k),
                "cplex flag wrong for {s:?} (k={k})"
            );
            assert_eq!(size_flag, s.len() >= t, "size flag wrong for {s:?} (t={t})");
            // Vertex register is preserved.
            assert_eq!(l.vertices.extract(out), bits);
            // Uncompute restores everything.
            assert_eq!(classical_eval(oracle.u_check_inv(), out), input);
            // The combined predicate matches the flip condition.
            assert_eq!(oracle.predicate(s), cplex_flag && size_flag);
        }
    }

    #[test]
    fn oracle_is_correct_on_fig1() {
        let g = paper_fig1_graph();
        for (k, t) in [(1, 2), (2, 3), (2, 4), (3, 4)] {
            check_oracle_exhaustively(&g, k, t);
        }
    }

    #[test]
    fn oracle_is_correct_on_random_graphs() {
        for seed in 0..3 {
            let g = gnm(7, 9, seed).unwrap();
            check_oracle_exhaustively(&g, 2, 3);
        }
    }

    #[test]
    fn oracle_on_complete_graph_has_no_edge_qubits() {
        let g = Graph::complete(4).unwrap();
        let oracle = Oracle::new(&g, 1, 4);
        assert_eq!(oracle.layout.edge_pairs.len(), 0);
        // All 4 vertices form a clique = 1-plex of size 4.
        let out = classical_eval(oracle.u_check(), 0b1111);
        assert_eq!((out >> oracle.layout.cplex) & 1, 1);
        assert_eq!((out >> oracle.layout.size_ge_t) & 1, 1);
    }

    #[test]
    fn flip_gate_marks_exactly_solutions() {
        let g = paper_fig1_graph();
        let oracle = Oracle::new(&g, 2, 4);
        let l = &oracle.layout;
        let mut full = oracle.u_check().clone();
        full.push(oracle.flip_gate()).unwrap();
        full.extend(oracle.u_check_inv()).unwrap();
        for bits in 0..(1u128 << l.n) {
            let s = VertexSet::from_bits(bits);
            let input = bits << l.vertices.start;
            let out = classical_eval(&full, input);
            let o_flag = (out >> l.oracle) & 1 == 1;
            assert_eq!(o_flag, oracle.predicate(s), "oracle flag for {s:?}");
            // Everything except |O⟩ is restored.
            assert_eq!(out & !(1u128 << l.oracle), input);
        }
    }

    #[test]
    fn section_costs_are_positive_and_ordered() {
        let g = paper_fig1_graph();
        let oracle = Oracle::new(&g, 2, 4);
        let cost = oracle.section_cost();
        assert!(cost.graph_encoding > 0);
        assert!(cost.degree_count > 0);
        assert!(cost.degree_compare > 0);
        assert!(cost.size_check > 0);
        assert_eq!(cost.total(), oracle.u_check().stats().elementary_cost);
    }

    #[test]
    fn degree_count_dominates_on_denser_graphs() {
        // The paper's Table IV: degree counting is the dominant component
        // and its share grows with n.
        let g = gnm(9, 6, 1).unwrap();
        let oracle = Oracle::new(&g, 2, 4);
        let cost = oracle.section_cost();
        assert!(
            cost.degree_count > cost.degree_compare,
            "degree count should dominate comparison"
        );
        assert!(cost.degree_count > cost.size_check);
    }
}
