//! Error type for circuit construction and simulation.

use crate::compile::CompileError;
use std::fmt;

/// Errors produced while building circuits or simulating them.
///
/// Not `Eq` because [`SimError::NotNormalized`] carries the measured
/// squared norm as an `f64` diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A gate referenced a qubit at or above the circuit width.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit width.
        width: usize,
    },
    /// A gate used the same qubit as both a control and the target, or as
    /// two controls.
    DuplicateQubit(usize),
    /// A dense statevector was requested for more qubits than fit in memory.
    TooManyQubitsForDense {
        /// Requested width.
        requested: usize,
        /// Maximum width supported by the dense backend.
        max: usize,
    },
    /// Circuit widths disagreed when composing circuits or applying a
    /// circuit to a state.
    WidthMismatch {
        /// Width expected by the receiver.
        expected: usize,
        /// Width of the argument.
        actual: usize,
    },
    /// A measurement was requested on a state whose squared norm has
    /// drifted to (or was set to) something indistinguishable from zero,
    /// so outcome probabilities are undefined.
    NotNormalized {
        /// The state's squared norm at the time of the measurement.
        norm_sqr: f64,
    },
    /// A post-selection collapsed onto a branch with zero probability:
    /// the conditioned state does not exist.
    ZeroProbabilityBranch {
        /// The measured qubit.
        qubit: usize,
        /// The impossible outcome that was forced.
        value: bool,
    },
    /// Circuit compilation failed (see [`CompileError`]).
    Compile(CompileError),
    /// The run was interrupted by the execution runtime: budget exhausted,
    /// cancellation requested, or an injected fault fired (see
    /// [`qmkp_rt::RtError`]).
    Interrupted(qmkp_rt::RtError),
}

impl From<CompileError> for SimError {
    fn from(e: CompileError) -> Self {
        SimError::Compile(e)
    }
}

impl From<qmkp_rt::RtError> for SimError {
    fn from(e: qmkp_rt::RtError) -> Self {
        SimError::Interrupted(e)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::QubitOutOfRange { qubit, width } => {
                write!(f, "qubit {qubit} out of range for circuit of width {width}")
            }
            SimError::DuplicateQubit(q) => {
                write!(f, "qubit {q} used more than once in a single gate")
            }
            SimError::TooManyQubitsForDense { requested, max } => {
                write!(
                    f,
                    "dense backend supports at most {max} qubits, got {requested}"
                )
            }
            SimError::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "circuit width mismatch: expected {expected}, got {actual}"
                )
            }
            SimError::NotNormalized { norm_sqr } => {
                write!(
                    f,
                    "state is not normalized (squared norm {norm_sqr:.3e}); cannot measure"
                )
            }
            SimError::ZeroProbabilityBranch { qubit, value } => {
                write!(
                    f,
                    "post-selecting qubit {qubit} = {} collapses onto a zero-probability branch",
                    *value as u8
                )
            }
            SimError::Compile(e) => write!(f, "compile error: {e}"),
            SimError::Interrupted(e) => write!(f, "run interrupted: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SimError::QubitOutOfRange { qubit: 7, width: 4 }
            .to_string()
            .contains("qubit 7"));
        assert!(SimError::DuplicateQubit(2)
            .to_string()
            .contains("more than once"));
        assert!(SimError::TooManyQubitsForDense {
            requested: 40,
            max: 26
        }
        .to_string()
        .contains("40"));
        assert!(SimError::WidthMismatch {
            expected: 3,
            actual: 5
        }
        .to_string()
        .contains("expected 3"));
        assert!(SimError::NotNormalized { norm_sqr: 1e-30 }
            .to_string()
            .contains("not normalized"));
        assert!(SimError::ZeroProbabilityBranch {
            qubit: 2,
            value: true
        }
        .to_string()
        .contains("qubit 2 = 1"));
        assert!(
            SimError::from(crate::compile::CompileError::DuplicateQubit(1))
                .to_string()
                .contains("compile error")
        );
        assert!(SimError::from(qmkp_rt::RtError::Cancelled)
            .to_string()
            .contains("interrupted"));
    }
}
