//! Properties of the execution runtime, end to end through the facade:
//!
//! 1. A cancel token fired after an *arbitrary* number of polls makes
//!    `qmkp_ctx` return `RtError::Cancelled` with a resumable checkpoint —
//!    it never panics, and the partial `best` inside the checkpoint is
//!    never passed off as the optimum.
//! 2. Resuming the cancelled search reproduces the uninterrupted run
//!    bit-for-bit (including the `f64` error probability), after a JSON
//!    round-trip of the checkpoint.
//! 3. `solve` under an arbitrary byte/op budget never panics and always
//!    returns a valid k-plex (possibly via the classical floor), or a
//!    structured `Cancelled` error — nothing in between.

use proptest::prelude::*;
use qmkp::core::{qmkp_ctx, QmkpCheckpoint, QmkpConfig, QmkpOutcome};
use qmkp::graph::is_kplex;
use qmkp::qsim::SparseState;
use qmkp::rt::{Budget, CancelToken, Checkpoint, RtContext, RtError};
use qmkp::solve::{solve, SolveConfig};

/// Non-time fields of two outcomes must agree exactly. Durations are the
/// one thing a resumed run may legitimately differ in.
fn assert_bit_identical(a: &QmkpOutcome, b: &QmkpOutcome) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.best, b.best);
    prop_assert_eq!(
        a.error_probability.to_bits(),
        b.error_probability.to_bits(),
        "error probabilities differ: {} vs {}",
        a.error_probability,
        b.error_probability
    );
    prop_assert_eq!(a.total_iterations, b.total_iterations);
    prop_assert_eq!(a.qubits, b.qubits);
    prop_assert_eq!(a.calls.len(), b.calls.len());
    for (x, y) in a.calls.iter().zip(&b.calls) {
        prop_assert_eq!(x.t, y.t);
        prop_assert_eq!(x.found, y.found);
        prop_assert_eq!(x.iterations, y.iterations);
        prop_assert_eq!(x.m, y.m);
    }
    prop_assert_eq!(
        a.first_result.map(|(s, _)| s),
        b.first_result.map(|(s, _)| s)
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    #[test]
    fn cancel_anywhere_yields_cancelled_then_bit_identical_resume(
        n in 5usize..=7,
        extra_edges in 0usize..=5,
        k in 1usize..=2,
        fuse in 0u64..=4000,
    ) {
        let m = (n - 1 + extra_edges).min(n * (n - 1) / 2);
        let g = qmkp::graph::gen::gnm(n, m, 11 * n as u64 + extra_edges as u64)
            .expect("valid G(n,m) parameters");
        let config = QmkpConfig::default();

        let straight = qmkp_ctx::<SparseState>(&g, k, &config, &RtContext::unlimited(), None)
            .expect("unlimited context cannot be interrupted");

        let token = CancelToken::cancel_after_checks(fuse);
        let ctx = RtContext::new(Budget::unlimited(), token);
        match qmkp_ctx::<SparseState>(&g, k, &config, &ctx, None) {
            // The fuse outlived the whole search: results must match the
            // straight run exactly.
            Ok(out) => assert_bit_identical(&straight, &out)?,
            Err(interrupted) => {
                prop_assert_eq!(&interrupted.error, &RtError::Cancelled);
                // The checkpoint is partial: never as many probes as the
                // full search, and never claimed as the optimum.
                prop_assert!(interrupted.checkpoint.calls.len() < straight.calls.len()
                    || interrupted.checkpoint.best.len() <= straight.best.len());

                // JSON round-trip, then resume to completion.
                let restored = QmkpCheckpoint::from_json(&interrupted.checkpoint.to_json())
                    .expect("round-trip of a just-serialized checkpoint");
                let resumed = qmkp_ctx::<SparseState>(
                    &g, k, &config, &RtContext::unlimited(), Some(&restored),
                ).expect("unlimited context cannot be interrupted");
                assert_bit_identical(&straight, &resumed)?;
            }
        }
    }

    #[test]
    fn budgeted_solve_never_panics_and_always_answers(
        n in 5usize..=8,
        extra_edges in 0usize..=6,
        k in 1usize..=2,
        max_bytes in 0usize..=1 << 22,
        max_ops in 0u64..=200_000,
    ) {
        // Zero means "no ceiling" — both knobs exercise the unlimited path
        // as well as genuinely tight budgets.
        let m = (n - 1 + extra_edges).min(n * (n - 1) / 2);
        let g = qmkp::graph::gen::gnm(n, m, 13 * n as u64 + extra_edges as u64)
            .expect("valid G(n,m) parameters");

        let mut budget = Budget::unlimited();
        if max_bytes > 0 {
            budget = budget.with_max_bytes(max_bytes);
        }
        if max_ops > 0 {
            budget = budget.with_max_ops(max_ops);
        }
        let ctx = RtContext::with_budget(budget);

        match solve(&g, k, &SolveConfig::default(), &ctx) {
            Ok(out) => {
                prop_assert!(is_kplex(&g, out.best, k),
                    "backend {} returned a non-k-plex", out.backend.name());
                if out.degraded {
                    prop_assert!(out.degraded_because.is_some());
                }
            }
            // A budget this generous can still be exhausted mid-classical?
            // No: the ladder absorbs budget errors. Only cancellation (not
            // used here) or invalid configs may surface, so any Err fails.
            Err(e) => prop_assert!(false, "solve returned {e}"),
        }
    }
}
