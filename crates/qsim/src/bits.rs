//! Chunked bitset: basis states and qubit masks at any width.
//!
//! The compiled simulator keys basis states as `u128`, which caps every
//! consumer at 128 qubits ([`crate::compile::MAX_COMPILE_WIDTH`]). The
//! static analyzer has no such excuse — evaluating an X/CX/MCX circuit
//! as a permutation needs only bit-set semantics, so `qmkp-lint`'s
//! symbolic and enumerative passes run on this `Vec<u64>`-backed bitset
//! instead and verify circuits of *any* width (ROADMAP item 5's
//! ">128-qubit imported circuits are verifiable" prerequisite).
//!
//! The representation is canonical — no trailing zero words — so the
//! derived `PartialEq`/`Eq`/`Hash` treat `0b01` the same whether it was
//! built by one `set` or by a `set`/`unset` pair on a high bit. Every
//! mutator restores the invariant before returning.

/// A growable, canonical (no trailing zero words) little-endian bitset.
///
/// Bit `i` lives in word `i / 64` at position `i % 64`. Reads beyond the
/// stored words are `false`; writes grow the vector on demand.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
}

impl BitVec {
    /// The empty (all-zeros) bitset.
    #[must_use]
    pub fn new() -> Self {
        BitVec { words: Vec::new() }
    }

    /// A bitset with exactly `bit` set.
    #[must_use]
    pub fn singleton(bit: usize) -> Self {
        let mut v = BitVec::new();
        v.set(bit, true);
        v
    }

    /// The low 128 bits of `value` as a bitset.
    #[must_use]
    pub fn from_u128(value: u128) -> Self {
        let mut v = BitVec {
            words: vec![value as u64, (value >> 64) as u64],
        };
        v.trim();
        v
    }

    /// A bitset from little-endian words (word `i` holds bits
    /// `64i..64i+64`). Trailing zero words are trimmed.
    #[must_use]
    pub fn from_words(words: Vec<u64>) -> Self {
        let mut v = BitVec { words };
        v.trim();
        v
    }

    /// The bitset as a `u128`, when it fits in 128 bits.
    #[must_use]
    pub fn as_u128(&self) -> Option<u128> {
        match self.words.len() {
            0 => Some(0),
            1 => Some(u128::from(self.words[0])),
            2 => Some(u128::from(self.words[0]) | (u128::from(self.words[1]) << 64)),
            _ => None,
        }
    }

    /// Whether bit `bit` is set.
    #[must_use]
    pub fn get(&self, bit: usize) -> bool {
        self.words
            .get(bit / 64)
            .is_some_and(|w| (w >> (bit % 64)) & 1 == 1)
    }

    /// Sets bit `bit` to `value`, growing the storage as needed.
    pub fn set(&mut self, bit: usize, value: bool) {
        let word = bit / 64;
        if value {
            if word >= self.words.len() {
                self.words.resize(word + 1, 0);
            }
            self.words[word] |= 1u64 << (bit % 64);
        } else if word < self.words.len() {
            self.words[word] &= !(1u64 << (bit % 64));
            self.trim();
        }
    }

    /// Flips bit `bit`.
    pub fn toggle(&mut self, bit: usize) {
        let word = bit / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] ^= 1u64 << (bit % 64);
        self.trim();
    }

    /// XORs `other` into `self` (symmetric difference).
    pub fn xor_with(&mut self, other: &BitVec) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
        self.trim();
    }

    /// Whether no bit is set.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of the set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    None
                } else {
                    let bit = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// The backing words, canonical (no trailing zeros), little-endian.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl PartialOrd for BitVec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitVec {
    /// Numeric order: canonical trimming makes word count the magnitude
    /// class, then words compare most-significant first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.words
            .len()
            .cmp(&other.words.len())
            .then_with(|| self.words.iter().rev().cmp(other.words.iter().rev()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &BitVec) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn set_get_toggle_roundtrip() {
        let mut v = BitVec::new();
        assert!(!v.get(200));
        v.set(200, true);
        assert!(v.get(200));
        assert_eq!(v.count_ones(), 1);
        v.toggle(200);
        assert!(v.is_zero());
        assert!(v.words().is_empty(), "trailing zero words must be trimmed");
    }

    #[test]
    fn equality_and_hash_are_canonical() {
        let mut a = BitVec::singleton(3);
        let mut b = BitVec::singleton(3);
        // Push `a` through a high-bit excursion; it must come back equal.
        a.set(500, true);
        a.set(500, false);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        b.xor_with(&BitVec::singleton(700));
        b.xor_with(&BitVec::singleton(700));
        assert_eq!(a, b);
    }

    #[test]
    fn xor_is_symmetric_difference() {
        let mut a = BitVec::from_u128(0b1010);
        a.xor_with(&BitVec::from_u128(0b0110));
        assert_eq!(a, BitVec::from_u128(0b1100));
        a.xor_with(&a.clone());
        assert!(a.is_zero());
    }

    #[test]
    fn u128_conversions() {
        let v = BitVec::from_u128(u128::MAX - 5);
        assert_eq!(v.as_u128(), Some(u128::MAX - 5));
        assert_eq!(BitVec::new().as_u128(), Some(0));
        assert_eq!(BitVec::singleton(129).as_u128(), None);
    }

    #[test]
    fn ones_iterates_ascending_across_words() {
        let mut v = BitVec::new();
        for bit in [0, 63, 64, 130, 300] {
            v.set(bit, true);
        }
        assert_eq!(v.ones().collect::<Vec<_>>(), vec![0, 63, 64, 130, 300]);
    }

    #[test]
    fn ordering_is_numeric() {
        let small = BitVec::from_u128(0b0111);
        let big = BitVec::from_u128(0b1000);
        assert!(small < big);
        assert!(BitVec::singleton(200) > BitVec::from_u128(u128::MAX));
        assert_eq!(BitVec::new().cmp(&BitVec::new()), std::cmp::Ordering::Equal);
    }
}
