//! The circuit IR: an ordered gate list with section tags and statistics.

use crate::error::SimError;
use crate::gate::Gate;
use std::collections::BTreeMap;
use std::ops::Range;

/// A named, contiguous range of gate indices within a circuit.
///
/// The qTKP oracle tags its three components (degree counting, degree
/// comparison, size determination) as sections so that simulation cost can
/// be attributed per component (paper Table IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (e.g. `"degree_count"`).
    pub name: String,
    /// Gate index range `[start, end)` in the owning circuit.
    pub range: Range<usize>,
}

/// Aggregate gate statistics for a circuit or a slice of one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Total number of gates.
    pub gates: usize,
    /// Gates by kind name (`"X"`, `"H"`, `"Z"`, `"Phase"`, `"MCX(k)"`, …).
    pub by_kind: BTreeMap<String, usize>,
    /// Total elementary cost (see [`Gate::elementary_cost`]).
    pub elementary_cost: usize,
}

/// An ordered list of gates over a fixed number of qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    width: usize,
    gates: Vec<Gate>,
    sections: Vec<Section>,
    open_section: Option<(String, usize)>,
}

impl Circuit {
    /// An empty circuit over `width` qubits.
    pub fn new(width: usize) -> Self {
        Circuit {
            width,
            gates: Vec::new(),
            sections: Vec::new(),
            open_section: None,
        }
    }

    /// Circuit width (number of qubits).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The recorded sections.
    #[inline]
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Appends a gate.
    ///
    /// # Errors
    /// Fails if the gate references an out-of-range or duplicated qubit.
    pub fn push(&mut self, gate: Gate) -> Result<(), SimError> {
        gate.validate(self.width)?;
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a gate, panicking on invalid input. Intended for circuit
    /// builders whose indices come from a [`crate::register::QubitAllocator`]
    /// and are correct by construction.
    pub fn push_unchecked(&mut self, gate: Gate) {
        gate.validate(self.width)
            .expect("gate must reference valid qubits");
        self.gates.push(gate);
    }

    /// Opens a named section; subsequent gates belong to it until
    /// [`Circuit::end_section`] is called. Nested sections are not
    /// supported (the previous section is closed automatically).
    pub fn begin_section(&mut self, name: &str) {
        self.end_section();
        self.open_section = Some((name.to_string(), self.gates.len()));
    }

    /// Closes the currently open section, if any.
    pub fn end_section(&mut self) {
        if let Some((name, start)) = self.open_section.take() {
            self.sections.push(Section {
                name,
                range: start..self.gates.len(),
            });
        }
    }

    /// Appends every gate of `other` (sections of `other` are imported with
    /// shifted ranges).
    ///
    /// # Errors
    /// Fails if widths differ.
    pub fn extend(&mut self, other: &Circuit) -> Result<(), SimError> {
        if other.width != self.width {
            return Err(SimError::WidthMismatch {
                expected: self.width,
                actual: other.width,
            });
        }
        let offset = self.gates.len();
        self.gates.extend(other.gates.iter().cloned());
        for s in &other.sections {
            self.sections.push(Section {
                name: s.name.clone(),
                range: (s.range.start + offset)..(s.range.end + offset),
            });
        }
        Ok(())
    }

    /// The inverse circuit `U†`: every gate inverted, in reverse order.
    /// Used to uncompute oracle ancillas (the paper's `U_check†`).
    /// Sections are mirrored (with `†` appended to their names).
    pub fn inverse(&self) -> Circuit {
        let n = self.gates.len();
        let gates: Vec<Gate> = self.gates.iter().rev().map(Gate::inverse).collect();
        let mut sections: Vec<Section> = self
            .sections
            .iter()
            .map(|s| Section {
                name: format!("{}†", s.name),
                range: (n - s.range.end)..(n - s.range.start),
            })
            .collect();
        sections.reverse();
        Circuit {
            width: self.width,
            gates,
            sections,
            open_section: None,
        }
    }

    /// Gate statistics for the whole circuit.
    pub fn stats(&self) -> GateStats {
        self.stats_for(0..self.gates.len())
    }

    /// Gate statistics for a gate-index range (e.g. a section's range).
    pub fn stats_for(&self, range: Range<usize>) -> GateStats {
        let mut stats = GateStats::default();
        for g in &self.gates[range] {
            stats.gates += 1;
            stats.elementary_cost += g.elementary_cost();
            let kind = match g {
                Gate::X(_) => "X".to_string(),
                Gate::H(_) => "H".to_string(),
                Gate::Z(_) => "Z".to_string(),
                Gate::Phase(_, _) => "Phase".to_string(),
                Gate::Ry(_, _) => "Ry".to_string(),
                Gate::CPhase(_, _, _) => "CPhase".to_string(),
                Gate::Mcx { controls, .. } => format!("MCX({})", controls.len()),
                Gate::Mcz { controls, .. } => format!("MCZ({})", controls.len()),
            };
            *stats.by_kind.entry(kind).or_insert(0) += 1;
        }
        stats
    }

    /// Per-section statistics, in section order.
    pub fn section_stats(&self) -> Vec<(String, GateStats)> {
        self.sections
            .iter()
            .map(|s| (s.name.clone(), self.stats_for(s.range.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Control;

    #[test]
    fn push_validates() {
        let mut c = Circuit::new(2);
        assert!(c.push(Gate::X(0)).is_ok());
        assert!(c.push(Gate::X(2)).is_err());
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "valid qubits")]
    fn push_unchecked_panics_on_bad_gate() {
        let mut c = Circuit::new(1);
        c.push_unchecked(Gate::X(5));
    }

    #[test]
    fn sections_track_ranges() {
        let mut c = Circuit::new(3);
        c.begin_section("a");
        c.push_unchecked(Gate::X(0));
        c.push_unchecked(Gate::X(1));
        c.begin_section("b"); // implicitly closes "a"
        c.push_unchecked(Gate::H(2));
        c.end_section();
        assert_eq!(c.sections().len(), 2);
        assert_eq!(c.sections()[0].name, "a");
        assert_eq!(c.sections()[0].range, 0..2);
        assert_eq!(c.sections()[1].range, 2..3);
    }

    #[test]
    fn extend_shifts_sections() {
        let mut a = Circuit::new(2);
        a.push_unchecked(Gate::X(0));
        let mut b = Circuit::new(2);
        b.begin_section("s");
        b.push_unchecked(Gate::H(1));
        b.end_section();
        a.extend(&b).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.sections()[0].range, 1..2);
        let c = Circuit::new(3);
        assert!(a.extend(&c).is_err());
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::H(0));
        c.push_unchecked(Gate::Phase(1, 0.5));
        c.push_unchecked(Gate::cnot(0, 1));
        let inv = c.inverse();
        assert_eq!(inv.gates()[0], Gate::cnot(0, 1));
        assert_eq!(inv.gates()[1], Gate::Phase(1, -0.5));
        assert_eq!(inv.gates()[2], Gate::H(0));
    }

    #[test]
    fn inverse_mirrors_sections() {
        let mut c = Circuit::new(2);
        c.begin_section("first");
        c.push_unchecked(Gate::X(0));
        c.begin_section("second");
        c.push_unchecked(Gate::X(1));
        c.push_unchecked(Gate::H(0));
        c.end_section();
        let inv = c.inverse();
        // "second" (was gates 1..3) becomes gates 0..2 of the inverse.
        assert_eq!(inv.sections()[0].name, "second†");
        assert_eq!(inv.sections()[0].range, 0..2);
        assert_eq!(inv.sections()[1].name, "first†");
        assert_eq!(inv.sections()[1].range, 2..3);
    }

    #[test]
    fn stats_by_kind_and_cost() {
        let mut c = Circuit::new(5);
        c.push_unchecked(Gate::X(0));
        c.push_unchecked(Gate::H(1));
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.push_unchecked(Gate::Mcx {
            controls: vec![
                Control::pos(0),
                Control::pos(1),
                Control::neg(2),
                Control::pos(3),
            ],
            target: 4,
        });
        let s = c.stats();
        assert_eq!(s.gates, 4);
        assert_eq!(s.by_kind["X"], 1);
        assert_eq!(s.by_kind["MCX(2)"], 1);
        assert_eq!(s.by_kind["MCX(4)"], 1);
        assert_eq!(s.elementary_cost, 1 + 1 + 1 + 5);
    }

    #[test]
    fn section_stats_of_sectionless_circuit_is_empty() {
        let mut c = Circuit::new(2);
        assert!(c.section_stats().is_empty());
        // Gates without any section stay invisible to section_stats while
        // still counting toward the whole-circuit stats.
        c.push_unchecked(Gate::X(0));
        c.push_unchecked(Gate::H(1));
        assert!(c.section_stats().is_empty());
        assert_eq!(c.stats().gates, 2);
    }

    #[test]
    fn section_stats_skips_unsectioned_gates() {
        let mut c = Circuit::new(3);
        c.push_unchecked(Gate::X(0)); // before any section
        c.begin_section("mid");
        c.push_unchecked(Gate::H(1));
        c.push_unchecked(Gate::H(2));
        c.end_section();
        c.push_unchecked(Gate::X(1)); // after the last section
        let stats = c.section_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, "mid");
        assert_eq!(stats[0].1.gates, 2);
        assert_eq!(stats[0].1.by_kind["H"], 2);
        assert!(!stats[0].1.by_kind.contains_key("X"));
    }

    #[test]
    fn section_stats_partitions_disjoint_sections() {
        let mut c = Circuit::new(3);
        c.begin_section("a");
        c.push_unchecked(Gate::X(0));
        c.begin_section("b"); // implicitly closes "a" — no overlap possible
        c.push_unchecked(Gate::H(1));
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.end_section();
        let stats = c.section_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "a");
        assert_eq!(stats[1].0, "b");
        // Disjoint ranges: per-section gates sum to the circuit total and
        // the elementary costs add up the same way.
        assert_eq!(stats[0].1.gates + stats[1].1.gates, c.stats().gates);
        assert_eq!(
            stats[0].1.elementary_cost + stats[1].1.elementary_cost,
            c.stats().elementary_cost
        );
        assert_eq!(stats[0].1.by_kind["X"], 1);
        assert_eq!(stats[1].1.by_kind["MCX(2)"], 1);
    }

    #[test]
    fn empty_section_reports_zero_stats() {
        let mut c = Circuit::new(1);
        c.begin_section("empty");
        c.end_section();
        let stats = c.section_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.gates, 0);
        assert_eq!(stats[0].1.elementary_cost, 0);
        assert!(stats[0].1.by_kind.is_empty());
    }
}
