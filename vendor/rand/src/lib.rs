//! Offline vendored stand-in for the [`rand`](https://docs.rs/rand/0.8)
//! crate.
//!
//! The build environment for this workspace has no network access and an
//! empty cargo registry, so external crates cannot be downloaded. This
//! crate implements the exact `rand 0.8` API surface the workspace uses —
//! `Rng` (`gen` / `gen_range` / `gen_bool`), `SeedableRng::seed_from_u64`,
//! `rngs::{StdRng, SmallRng}` and `seq::SliceRandom` — on top of a
//! xoshiro256++ generator seeded with SplitMix64.
//!
//! The stream differs from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), so seeded sequences are *internally* reproducible but do not
//! match upstream bit-for-bit. Every consumer in this workspace only
//! relies on determinism-under-a-fixed-seed plus statistical quality, both
//! of which xoshiro256++ provides.

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo)]
pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The low-level generator interface: raw random words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of any [`Standard`]-distributed type.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// A uniform value in the given range (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same convention upstream `rand` documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..6);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 appear");
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 - 2_500.0).abs() < 300.0, "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
