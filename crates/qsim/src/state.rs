//! Quantum state backends: dense statevector and sparse amplitude map.
//!
//! Both backends execute circuits through the compiled kernel path
//! ([`crate::compile::CompiledCircuit`]): [`QuantumState::run`] lowers the
//! circuit once and then applies fused ops, each in a single pass over the
//! state. The gate-by-gate interpreter survives as
//! [`QuantumState::run_interpreted`] (and [`QuantumState::apply`]) for
//! cross-checking and for callers that apply individual gates.

use crate::circuit::Circuit;
use crate::compile::{CompiledCircuit, CompiledOp, MaskedFlip, MaskedPhase, SingleQubit};
use crate::complex::Complex;
use crate::error::SimError;
use crate::gate::Gate;
use rand::Rng;
use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Amplitudes below this magnitude are dropped by the sparse backend after
/// non-permutation gates, keeping the representation tight without
/// affecting measurement statistics.
pub const PRUNE_EPS: f64 = 1e-14;

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Dense kernels run serially below this amplitude count; above it, passes
/// are split across threads. Covers the thread-spawn overhead of the
/// scoped-thread pool with room to spare.
#[cfg(feature = "parallel")]
const PAR_MIN_AMPS: usize = 1 << 16;

/// Work granule (in amplitudes) for index-parallel dense passes.
#[cfg(feature = "parallel")]
const PAR_CHUNK: usize = 1 << 13;

/// Common interface of the simulation backends.
///
/// Basis states are `u128` bit strings where bit `i` is qubit `i`
/// (LSB = qubit 0), matching the `VertexSet` encoding in `qmkp-graph`.
pub trait QuantumState {
    /// Number of qubits.
    fn width(&self) -> usize;

    /// Applies a single gate (assumed already validated for this width).
    fn apply(&mut self, gate: &Gate);

    /// Applies one compiled kernel op.
    fn apply_op(&mut self, op: &CompiledOp);

    /// Approximate heap footprint of the state representation in bytes
    /// (amplitude storage plus reusable scratch buffers).
    fn memory_bytes(&self) -> usize;

    /// Reports backend-specific gauges (memory footprint, support size)
    /// to the observability layer. Called by the traced branch of
    /// [`QuantumState::run_compiled`]; backends override it with their
    /// own gauge names. The default reports nothing.
    fn trace_gauges(&self) {}

    /// The amplitude of a basis state.
    fn amplitude(&self, basis: u128) -> Complex;

    /// All nonzero `(basis, amplitude)` pairs, sorted by basis state.
    fn nonzero(&self) -> Vec<(u128, Complex)>;

    /// Runs a whole circuit through the compiled kernel path.
    ///
    /// # Errors
    /// Fails if the circuit width does not match the state width.
    fn run(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        self.run_compiled(&CompiledCircuit::compile(circuit))
    }

    /// Runs an already-compiled circuit.
    ///
    /// # Errors
    /// Fails if the compiled width does not match the state width.
    fn run_compiled(&mut self, compiled: &CompiledCircuit) -> Result<(), SimError> {
        if compiled.width() != self.width() {
            return Err(SimError::WidthMismatch {
                expected: self.width(),
                actual: compiled.width(),
            });
        }
        // Branch once per circuit, not per op: the disabled path runs the
        // exact loop the seed ran.
        if qmkp_obs::enabled_for("qsim.kernel") {
            for op in compiled.ops() {
                let start = std::time::Instant::now();
                self.apply_op(op);
                let kind = match op {
                    CompiledOp::Permutation(_) => "qsim.kernel.permutation",
                    CompiledOp::Diagonal(_) => "qsim.kernel.diagonal",
                    CompiledOp::Single(_) => "qsim.kernel.single",
                };
                qmkp_obs::observe(kind, start.elapsed());
            }
            self.trace_gauges();
        } else {
            for op in compiled.ops() {
                self.apply_op(op);
            }
        }
        Ok(())
    }

    /// Runs a circuit gate by gate, without compilation. Reference path
    /// for equivalence testing against [`QuantumState::run`].
    ///
    /// # Errors
    /// Fails if the circuit width does not match the state width.
    fn run_interpreted(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.width() != self.width() {
            return Err(SimError::WidthMismatch {
                expected: self.width(),
                actual: circuit.width(),
            });
        }
        for g in circuit.gates() {
            self.apply(g);
        }
        Ok(())
    }

    /// The measurement probability of a basis state.
    fn probability(&self, basis: u128) -> f64 {
        self.amplitude(basis).norm_sqr()
    }

    /// Total norm² (should stay 1 up to numerical error).
    fn norm_sqr(&self) -> f64 {
        self.nonzero().iter().map(|(_, a)| a.norm_sqr()).sum()
    }

    /// Marginal probability distribution over a subset of qubits: returns a
    /// map from the subset's bit pattern (bit `i` of the key = `qubits[i]`)
    /// to probability.
    fn marginal(&self, qubits: &[usize]) -> BTreeMap<u128, f64> {
        let mut out = BTreeMap::new();
        for (basis, amp) in self.nonzero() {
            let mut key = 0u128;
            for (i, &q) in qubits.iter().enumerate() {
                if (basis >> q) & 1 == 1 {
                    key |= 1 << i;
                }
            }
            *out.entry(key).or_insert(0.0) += amp.norm_sqr();
        }
        out
    }

    /// Samples `shots` measurement outcomes of the given qubits, returning
    /// outcome → count. Outcome keys are encoded as in
    /// [`QuantumState::marginal`].
    ///
    /// Each shot is a binary search over the cumulative distribution, so
    /// sampling costs `O(support + shots·log support)` rather than the
    /// `O(shots·support)` of a per-shot linear scan.
    fn sample<R: Rng>(&self, rng: &mut R, shots: usize, qubits: &[usize]) -> BTreeMap<u128, usize>
    where
        Self: Sized,
    {
        let marg: Vec<(u128, f64)> = self.marginal(qubits).into_iter().collect();
        let mut cumulative = Vec::with_capacity(marg.len());
        let mut acc = 0.0;
        for &(_, p) in &marg {
            acc += p;
            cumulative.push(acc);
        }
        let total = acc;
        let mut counts = BTreeMap::new();
        for _ in 0..shots {
            let x: f64 = rng.gen::<f64>() * total;
            // First outcome whose cumulative mass exceeds x; the min guards
            // against x == total after floating-point rounding.
            let idx = cumulative.partition_point(|&c| c <= x);
            let chosen = marg
                .get(idx.min(marg.len().saturating_sub(1)))
                .map(|&(k, _)| k)
                .unwrap_or(0);
            *counts.entry(chosen).or_insert(0) += 1;
        }
        counts
    }
}

// ---------------------------------------------------------------------------
// Dense backend
// ---------------------------------------------------------------------------

/// Maximum width of the dense backend (`2^26` amplitudes ≈ 1 GiB).
pub const MAX_DENSE_QUBITS: usize = 26;

/// Full statevector backend: `2^width` complex amplitudes.
#[derive(Debug, Clone)]
pub struct DenseState {
    width: usize,
    amps: Vec<Complex>,
    /// Reusable gather buffer for fused permutation passes; swapped with
    /// `amps` after each pass so no allocation recurs.
    scratch: Vec<Complex>,
}

impl DenseState {
    /// `|basis⟩` over `width` qubits.
    ///
    /// # Errors
    /// Fails if `width > 26`.
    pub fn from_basis(width: usize, basis: u128) -> Result<Self, SimError> {
        if width > MAX_DENSE_QUBITS {
            return Err(SimError::TooManyQubitsForDense {
                requested: width,
                max: MAX_DENSE_QUBITS,
            });
        }
        let mut amps = vec![Complex::ZERO; 1usize << width];
        amps[basis as usize] = Complex::ONE;
        Ok(DenseState {
            width,
            amps,
            scratch: Vec::new(),
        })
    }

    /// `|0…0⟩` over `width` qubits.
    ///
    /// # Errors
    /// Fails if `width > 26`.
    pub fn zero(width: usize) -> Result<Self, SimError> {
        Self::from_basis(width, 0)
    }

    /// Direct read-only access to the amplitude vector.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Zeroes every basis state for which `keep` is false and scales the
    /// survivors (used by measurement collapse).
    pub fn project(&mut self, keep: impl Fn(u128) -> bool, scale: f64) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            if keep(i as u128) {
                *a = a.scale(scale);
            } else {
                *a = Complex::ZERO;
            }
        }
    }

    /// One gather pass applying a fused permutation: `out[i] = in[P⁻¹(i)]`.
    /// Each [`MaskedFlip`] is an involution, so the inverse permutation is
    /// the steps applied in reverse order.
    fn apply_permutation(&mut self, steps: &[MaskedFlip]) {
        if steps.is_empty() {
            // Peephole cancellation can empty a run; skip the copy pass.
            return;
        }
        self.scratch.resize(self.amps.len(), Complex::ZERO);
        let amps = &self.amps;
        let scratch = &mut self.scratch[..];
        let gather = |i: usize| {
            let mut j = i as u128;
            for s in steps.iter().rev() {
                j = s.apply(j);
            }
            amps[j as usize]
        };
        #[cfg(feature = "parallel")]
        if amps.len() >= PAR_MIN_AMPS {
            scratch
                .par_chunks_mut(PAR_CHUNK)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    let base = ci * PAR_CHUNK;
                    for (t, out) in chunk.iter_mut().enumerate() {
                        *out = gather(base + t);
                    }
                });
            std::mem::swap(&mut self.amps, &mut self.scratch);
            return;
        }
        for (i, out) in scratch.iter_mut().enumerate() {
            *out = gather(i);
        }
        std::mem::swap(&mut self.amps, &mut self.scratch);
    }

    /// One in-place pass applying a fused run of diagonal gates.
    fn apply_diagonal(&mut self, phases: &[MaskedPhase]) {
        if phases.is_empty() {
            return;
        }
        let update = |i: usize, a: &mut Complex| {
            let b = i as u128;
            for p in phases {
                if p.applies_to(b) {
                    *a *= p.phase;
                }
            }
        };
        #[cfg(feature = "parallel")]
        if self.amps.len() >= PAR_MIN_AMPS {
            self.amps
                .par_chunks_mut(PAR_CHUNK)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    let base = ci * PAR_CHUNK;
                    for (t, a) in chunk.iter_mut().enumerate() {
                        update(base + t, a);
                    }
                });
            return;
        }
        for (i, a) in self.amps.iter_mut().enumerate() {
            update(i, a);
        }
    }

    /// A butterfly pass applying a general single-qubit kernel.
    fn apply_single(&mut self, k: &SingleQubit) {
        let m = 1usize << k.qubit;
        let (m00, m01, m10, m11) = (k.m00, k.m01, k.m10, k.m11);
        // Processes a block whose length is a multiple of 2m, pairing
        // offsets (t, t+m) within each 2m-sized run.
        let butterfly = |block: &mut [Complex]| {
            let mut base = 0;
            while base < block.len() {
                for t in base..base + m {
                    let a = block[t];
                    let b = block[t + m];
                    block[t] = m00 * a + m01 * b;
                    block[t + m] = m10 * a + m11 * b;
                }
                base += 2 * m;
            }
        };
        #[cfg(feature = "parallel")]
        {
            // Chunks stay multiples of 2m (both powers of two), so no
            // amplitude pair straddles a chunk boundary.
            let chunk = (2 * m).max(PAR_CHUNK);
            if self.amps.len() >= PAR_MIN_AMPS && self.amps.len() > chunk {
                self.amps.par_chunks_mut(chunk).for_each(butterfly);
                return;
            }
        }
        butterfly(&mut self.amps);
    }
}

impl QuantumState for DenseState {
    fn width(&self) -> usize {
        self.width
    }

    fn amplitude(&self, basis: u128) -> Complex {
        self.amps
            .get(basis as usize)
            .copied()
            .unwrap_or(Complex::ZERO)
    }

    fn nonzero(&self) -> Vec<(u128, Complex)> {
        self.amps
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.is_negligible(PRUNE_EPS))
            .map(|(i, a)| (i as u128, *a))
            .collect()
    }

    fn apply_op(&mut self, op: &CompiledOp) {
        match op {
            CompiledOp::Permutation(steps) => self.apply_permutation(steps),
            CompiledOp::Diagonal(phases) => self.apply_diagonal(phases),
            CompiledOp::Single(k) => self.apply_single(k),
        }
    }

    fn memory_bytes(&self) -> usize {
        (self.amps.capacity() + self.scratch.capacity()) * std::mem::size_of::<Complex>()
    }

    fn trace_gauges(&self) {
        qmkp_obs::gauge("qsim.dense.mem_bytes", self.memory_bytes() as f64);
    }

    fn apply(&mut self, gate: &Gate) {
        match gate {
            Gate::X(q) => {
                let m = 1usize << q;
                for i in 0..self.amps.len() {
                    if i & m == 0 {
                        self.amps.swap(i, i | m);
                    }
                }
            }
            Gate::H(q) => {
                let m = 1usize << q;
                for i in 0..self.amps.len() {
                    if i & m == 0 {
                        let a = self.amps[i];
                        let b = self.amps[i | m];
                        self.amps[i] = (a + b).scale(FRAC_1_SQRT_2);
                        self.amps[i | m] = (a - b).scale(FRAC_1_SQRT_2);
                    }
                }
            }
            Gate::Z(q) => {
                // Only indices with bit q set are touched: stride over the
                // upper half of each 2m block (len/2 amplitudes visited).
                let m = 1usize << q;
                let mut base = m;
                while base < self.amps.len() {
                    for a in &mut self.amps[base..base + m] {
                        *a = -*a;
                    }
                    base += 2 * m;
                }
            }
            Gate::Phase(q, theta) => {
                let m = 1usize << q;
                let ph = Complex::from_phase(*theta);
                let mut base = m;
                while base < self.amps.len() {
                    for a in &mut self.amps[base..base + m] {
                        *a *= ph;
                    }
                    base += 2 * m;
                }
            }
            Gate::Ry(q, theta) => {
                let m = 1usize << q;
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                for i in 0..self.amps.len() {
                    if i & m == 0 {
                        let a = self.amps[i];
                        let b = self.amps[i | m];
                        self.amps[i] = a.scale(c) - b.scale(s);
                        self.amps[i | m] = a.scale(s) + b.scale(c);
                    }
                }
            }
            Gate::CPhase(p, q, theta) => {
                // Nested stride loops visit exactly the len/4 indices with
                // both bits set.
                let (lo, hi) = if p < q { (*p, *q) } else { (*q, *p) };
                let (ml, mh) = (1usize << lo, 1usize << hi);
                let ph = Complex::from_phase(*theta);
                let mut bh = mh;
                while bh < self.amps.len() {
                    let mut bl = bh + ml;
                    while bl < bh + mh {
                        for a in &mut self.amps[bl..bl + ml] {
                            *a *= ph;
                        }
                        bl += 2 * ml;
                    }
                    bh += 2 * mh;
                }
            }
            Gate::Mcx { controls, target } => {
                let m = 1usize << target;
                for i in 0..self.amps.len() {
                    if i & m == 0 && controls.iter().all(|c| c.satisfied_by(i as u128)) {
                        self.amps.swap(i, i | m);
                    }
                }
            }
            Gate::Mcz { controls, target } => {
                let m = 1usize << target;
                for (i, a) in self.amps.iter_mut().enumerate() {
                    if i & m != 0 && controls.iter().all(|c| c.satisfied_by(i as u128)) {
                        *a = -*a;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sparse backend
// ---------------------------------------------------------------------------

/// Sparse amplitude-map backend: only nonzero basis states are stored.
///
/// Suited to circuits that are mostly basis-state permutations (X / MCX):
/// the qTKP oracle over 50-200 qubits keeps at most `2^n` nonzero
/// amplitudes, where `n` is the number of vertex qubits ever touched by a
/// Hadamard.
#[derive(Debug, Clone)]
pub struct SparseState {
    width: usize,
    amps: HashMap<u128, Complex>,
    /// Second amplitude map, double-buffered with `amps`: kernel ops that
    /// rewrite keys drain into it and swap, so the maps' capacity is
    /// reused instead of reallocated per op.
    scratch: HashMap<u128, Complex>,
}

impl SparseState {
    /// `|basis⟩` over `width` qubits (any width up to 128).
    pub fn from_basis(width: usize, basis: u128) -> Self {
        assert!(width <= 128, "at most 128 qubits are supported");
        let mut amps = HashMap::new();
        amps.insert(basis, Complex::ONE);
        SparseState {
            width,
            amps,
            scratch: HashMap::new(),
        }
    }

    /// `|0…0⟩` over `width` qubits.
    pub fn zero(width: usize) -> Self {
        Self::from_basis(width, 0)
    }

    /// Number of nonzero amplitudes currently stored.
    pub fn support_size(&self) -> usize {
        self.amps.len()
    }

    /// Drops amplitudes with magnitude below `eps`.
    pub fn prune(&mut self, eps: f64) {
        self.amps.retain(|_, a| !a.is_negligible(eps));
    }

    /// Replaces the state's amplitudes wholesale (used by measurement
    /// collapse; the caller is responsible for normalization).
    pub fn set_amplitudes<I: IntoIterator<Item = (u128, Complex)>>(&mut self, amps: I) {
        self.amps = amps.into_iter().collect();
    }
}

impl QuantumState for SparseState {
    fn width(&self) -> usize {
        self.width
    }

    fn amplitude(&self, basis: u128) -> Complex {
        self.amps.get(&basis).copied().unwrap_or(Complex::ZERO)
    }

    fn nonzero(&self) -> Vec<(u128, Complex)> {
        let mut v: Vec<(u128, Complex)> = self
            .amps
            .iter()
            .filter(|(_, a)| !a.is_negligible(PRUNE_EPS))
            .map(|(&b, &a)| (b, a))
            .collect();
        v.sort_unstable_by_key(|&(b, _)| b);
        v
    }

    fn apply_op(&mut self, op: &CompiledOp) {
        match op {
            CompiledOp::Permutation(steps) => {
                if steps.is_empty() {
                    // Peephole cancellation can empty a run.
                    return;
                }
                // A permutation maps distinct keys to distinct keys, so a
                // plain drain-and-insert into the spare map suffices.
                self.scratch.clear();
                self.scratch.reserve(self.amps.len());
                for (b, a) in self.amps.drain() {
                    let mut key = b;
                    for s in steps {
                        key = s.apply(key);
                    }
                    self.scratch.insert(key, a);
                }
                std::mem::swap(&mut self.amps, &mut self.scratch);
            }
            CompiledOp::Diagonal(phases) => {
                for (b, a) in self.amps.iter_mut() {
                    for p in phases {
                        if p.applies_to(*b) {
                            *a *= p.phase;
                        }
                    }
                }
            }
            CompiledOp::Single(k) => {
                let m = 1u128 << k.qubit;
                self.scratch.clear();
                self.scratch.reserve(self.amps.len() * 2);
                for (&b, &a) in self.amps.iter() {
                    if b & m == 0 {
                        *self.scratch.entry(b).or_insert(Complex::ZERO) += k.m00 * a;
                        *self.scratch.entry(b | m).or_insert(Complex::ZERO) += k.m10 * a;
                    } else {
                        *self.scratch.entry(b & !m).or_insert(Complex::ZERO) += k.m01 * a;
                        *self.scratch.entry(b).or_insert(Complex::ZERO) += k.m11 * a;
                    }
                }
                self.scratch.retain(|_, a| !a.is_negligible(PRUNE_EPS));
                std::mem::swap(&mut self.amps, &mut self.scratch);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        // HashMap internals aren't exposed; approximate with the entry
        // payload across both buffers.
        let entry = std::mem::size_of::<(u128, Complex)>();
        (self.amps.capacity() + self.scratch.capacity()) * entry
    }

    fn trace_gauges(&self) {
        qmkp_obs::gauge("qsim.sparse.mem_bytes", self.memory_bytes() as f64);
        qmkp_obs::gauge("qsim.sparse.support", self.support_size() as f64);
    }

    fn apply(&mut self, gate: &Gate) {
        match gate {
            Gate::X(q) => {
                let m = 1u128 << q;
                self.amps = self.amps.drain().map(|(b, a)| (b ^ m, a)).collect();
            }
            Gate::Mcx { controls, target } => {
                let m = 1u128 << target;
                self.amps = self
                    .amps
                    .drain()
                    .map(|(b, a)| {
                        if controls.iter().all(|c| c.satisfied_by(b)) {
                            (b ^ m, a)
                        } else {
                            (b, a)
                        }
                    })
                    .collect();
            }
            Gate::Z(q) => {
                let m = 1u128 << q;
                for (b, a) in self.amps.iter_mut() {
                    if b & m != 0 {
                        *a = -*a;
                    }
                }
            }
            Gate::Phase(q, theta) => {
                let m = 1u128 << q;
                let ph = Complex::from_phase(*theta);
                for (b, a) in self.amps.iter_mut() {
                    if b & m != 0 {
                        *a *= ph;
                    }
                }
            }
            Gate::Mcz { controls, target } => {
                let m = 1u128 << target;
                for (b, a) in self.amps.iter_mut() {
                    if b & m != 0 && controls.iter().all(|c| c.satisfied_by(*b)) {
                        *a = -*a;
                    }
                }
            }
            Gate::Ry(q, theta) => {
                let m = 1u128 << q;
                let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                let mut next: HashMap<u128, Complex> = HashMap::with_capacity(self.amps.len() * 2);
                for (&b, &a) in self.amps.iter() {
                    if b & m == 0 {
                        *next.entry(b).or_insert(Complex::ZERO) += a.scale(c);
                        *next.entry(b | m).or_insert(Complex::ZERO) += a.scale(sn);
                    } else {
                        *next.entry(b & !m).or_insert(Complex::ZERO) -= a.scale(sn);
                        *next.entry(b).or_insert(Complex::ZERO) += a.scale(c);
                    }
                }
                next.retain(|_, a| !a.is_negligible(PRUNE_EPS));
                self.amps = next;
            }
            Gate::CPhase(p, q, theta) => {
                let m = (1u128 << p) | (1u128 << q);
                let ph = Complex::from_phase(*theta);
                for (b, a) in self.amps.iter_mut() {
                    if b & m == m {
                        *a *= ph;
                    }
                }
            }
            Gate::H(q) => {
                let m = 1u128 << q;
                let mut next: HashMap<u128, Complex> = HashMap::with_capacity(self.amps.len() * 2);
                for (&b, &a) in self.amps.iter() {
                    let half = a.scale(FRAC_1_SQRT_2);
                    if b & m == 0 {
                        // H|0⟩ = (|0⟩ + |1⟩)/√2
                        *next.entry(b).or_insert(Complex::ZERO) += half;
                        *next.entry(b | m).or_insert(Complex::ZERO) += half;
                    } else {
                        // H|1⟩ = (|0⟩ - |1⟩)/√2
                        *next.entry(b & !m).or_insert(Complex::ZERO) += half;
                        *next.entry(b).or_insert(Complex::ZERO) -= half;
                    }
                }
                next.retain(|_, a| !a.is_negligible(PRUNE_EPS));
                self.amps = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Control;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 1e-10;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < EPS, "{a} != {b}");
    }

    #[test]
    fn basis_state_construction() {
        let d = DenseState::from_basis(3, 0b101).unwrap();
        assert_close(d.probability(0b101), 1.0);
        assert_close(d.probability(0b100), 0.0);
        let s = SparseState::from_basis(100, 1u128 << 99);
        assert_close(s.probability(1u128 << 99), 1.0);
        assert_eq!(s.support_size(), 1);
    }

    #[test]
    fn dense_rejects_large_widths() {
        assert!(matches!(
            DenseState::zero(27),
            Err(SimError::TooManyQubitsForDense { .. })
        ));
    }

    #[test]
    fn x_gate_flips() {
        for_both_backends(1, |st| {
            st.apply_gate(&Gate::X(0));
            assert_close(st.prob(1), 1.0);
        });
    }

    #[test]
    fn h_gate_makes_superposition_and_is_self_inverse() {
        for_both_backends(1, |st| {
            st.apply_gate(&Gate::H(0));
            assert_close(st.prob(0), 0.5);
            assert_close(st.prob(1), 0.5);
            st.apply_gate(&Gate::H(0));
            assert_close(st.prob(0), 1.0);
        });
    }

    #[test]
    fn hzh_equals_x() {
        for_both_backends(1, |st| {
            st.apply_gate(&Gate::H(0));
            st.apply_gate(&Gate::Z(0));
            st.apply_gate(&Gate::H(0));
            assert_close(st.prob(1), 1.0);
        });
    }

    #[test]
    fn cnot_truth_table() {
        for target_in in 0..2u128 {
            for control_in in 0..2u128 {
                let basis = control_in | (target_in << 1);
                let mut d = DenseState::from_basis(2, basis).unwrap();
                d.apply(&Gate::cnot(0, 1));
                let expected = if control_in == 1 { basis ^ 0b10 } else { basis };
                assert_close(d.probability(expected), 1.0);
            }
        }
    }

    #[test]
    fn toffoli_truth_table() {
        for b in 0..8u128 {
            let mut d = DenseState::from_basis(3, b).unwrap();
            let mut s = SparseState::from_basis(3, b);
            let g = Gate::ccnot(0, 1, 2);
            d.apply(&g);
            s.apply(&g);
            let expected = if b & 0b11 == 0b11 { b ^ 0b100 } else { b };
            assert_close(d.probability(expected), 1.0);
            assert_close(s.probability(expected), 1.0);
        }
    }

    #[test]
    fn negative_controls() {
        // Flip target iff qubit0 = 0.
        let g = Gate::Mcx {
            controls: vec![Control::neg(0)],
            target: 1,
        };
        let mut d = DenseState::from_basis(2, 0b00).unwrap();
        d.apply(&g);
        assert_close(d.probability(0b10), 1.0);
        let mut d = DenseState::from_basis(2, 0b01).unwrap();
        d.apply(&g);
        assert_close(d.probability(0b01), 1.0);
    }

    #[test]
    fn mcz_phases_only_the_selected_state() {
        for_both_backends(2, |st| {
            st.apply_gate(&Gate::H(0));
            st.apply_gate(&Gate::H(1));
            st.apply_gate(&Gate::Mcz {
                controls: vec![Control::pos(0)],
                target: 1,
            });
            // |11⟩ picks up a −1 phase; probabilities unchanged.
            assert_close(st.prob(0b11), 0.25);
            assert!(st.amp(0b11).re < 0.0);
            assert!(st.amp(0b00).re > 0.0);
        });
    }

    #[test]
    fn phase_gate() {
        for_both_backends(1, |st| {
            st.apply_gate(&Gate::H(0));
            st.apply_gate(&Gate::Phase(0, std::f64::consts::PI));
            st.apply_gate(&Gate::H(0));
            // HP(π)H = HZH = X
            assert_close(st.prob(1), 1.0);
        });
    }

    #[test]
    fn cphase_touches_only_the_11_subspace() {
        for_both_backends(2, |st| {
            st.apply_gate(&Gate::H(0));
            st.apply_gate(&Gate::H(1));
            st.apply_gate(&Gate::CPhase(0, 1, std::f64::consts::FRAC_PI_2));
            let a = st.amp(0b11);
            assert_close(a.re, 0.0);
            assert_close(a.im, 0.5);
            assert_close(st.amp(0b01).re, 0.5);
            assert_close(st.amp(0b01).im, 0.0);
        });
    }

    /// Runs a closure against both backends initialized to |0…0⟩.
    fn for_both_backends(width: usize, f: impl Fn(&mut dyn DynState)) {
        let mut d = DenseState::zero(width).unwrap();
        f(&mut d);
        let mut s = SparseState::zero(width);
        f(&mut s);
    }

    /// Object-safe subset of `QuantumState` used by the test helper.
    /// Method names are distinct from the trait's to avoid ambiguity with
    /// the blanket impl below.
    trait DynState {
        fn apply_gate(&mut self, gate: &Gate);
        fn prob(&self, basis: u128) -> f64;
        fn amp(&self, basis: u128) -> Complex;
    }

    impl<T: QuantumState> DynState for T {
        fn apply_gate(&mut self, gate: &Gate) {
            QuantumState::apply(self, gate)
        }
        fn prob(&self, basis: u128) -> f64 {
            QuantumState::probability(self, basis)
        }
        fn amp(&self, basis: u128) -> Complex {
            QuantumState::amplitude(self, basis)
        }
    }

    /// A random circuit over the full gate set, seeded deterministically.
    fn random_circuit(rng: &mut StdRng, width: usize, gates: usize) -> Circuit {
        use rand::Rng;
        let mut circ = Circuit::new(width);
        for _ in 0..gates {
            let q = rng.gen_range(0..width);
            let gate = match rng.gen_range(0..8) {
                0 => Gate::X(q),
                1 => Gate::H(q),
                2 => Gate::Z(q),
                3 => Gate::Phase(q, rng.gen_range(-3.0..3.0)),
                4 => Gate::Ry(q, rng.gen_range(-3.0..3.0)),
                5 => Gate::CPhase(q, (q + 1) % width, rng.gen_range(-3.0..3.0)),
                6 => {
                    let t = (q + 1) % width;
                    Gate::Mcx {
                        controls: vec![Control {
                            qubit: q,
                            positive: rng.gen(),
                        }],
                        target: t,
                    }
                }
                _ => {
                    let t = (q + 1) % width;
                    Gate::Mcz {
                        controls: vec![Control {
                            qubit: q,
                            positive: rng.gen(),
                        }],
                        target: t,
                    }
                }
            };
            circ.push(gate).unwrap();
        }
        circ
    }

    #[test]
    fn dense_and_sparse_agree_on_random_circuits() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..20 {
            let width = rng.gen_range(2..7);
            let circ = random_circuit(&mut rng, width, 30);
            let mut d = DenseState::zero(width).unwrap();
            let mut s = SparseState::zero(width);
            d.run(&circ).unwrap();
            s.run(&circ).unwrap();
            for b in 0..(1u128 << width) {
                let da = d.amplitude(b);
                let sa = s.amplitude(b);
                assert!(
                    (da - sa).norm() < 1e-9,
                    "width={width} basis={b:b}: dense {da} vs sparse {sa}"
                );
            }
            assert_close(d.norm_sqr(), 1.0);
            assert_close(s.norm_sqr(), 1.0);
        }
    }

    #[test]
    fn compiled_run_matches_interpreted_on_random_circuits() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let width = rng.gen_range(2..7);
            let circ = random_circuit(&mut rng, width, 40);
            let mut compiled = DenseState::zero(width).unwrap();
            let mut interpreted = DenseState::zero(width).unwrap();
            compiled.run(&circ).unwrap();
            interpreted.run_interpreted(&circ).unwrap();
            let mut sc = SparseState::zero(width);
            let mut si = SparseState::zero(width);
            sc.run(&circ).unwrap();
            si.run_interpreted(&circ).unwrap();
            for b in 0..(1u128 << width) {
                assert!(
                    (compiled.amplitude(b) - interpreted.amplitude(b)).norm() < 1e-9,
                    "dense compiled vs interpreted at {b:b}"
                );
                assert!(
                    (sc.amplitude(b) - si.amplitude(b)).norm() < 1e-9,
                    "sparse compiled vs interpreted at {b:b}"
                );
            }
        }
    }

    #[test]
    fn run_checks_width() {
        let circ = Circuit::new(3);
        let mut d = DenseState::zero(2).unwrap();
        assert!(matches!(d.run(&circ), Err(SimError::WidthMismatch { .. })));
        assert!(matches!(
            d.run_interpreted(&circ),
            Err(SimError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn marginal_distribution() {
        // Bell state on qubits 0, 1 of a 3-qubit register.
        let mut s = SparseState::zero(3);
        s.apply(&Gate::H(0));
        s.apply(&Gate::cnot(0, 1));
        let m = s.marginal(&[0, 1]);
        assert_close(m[&0b00], 0.5);
        assert_close(m[&0b11], 0.5);
        assert!(!m.contains_key(&0b01));
        // Marginal over just qubit 1.
        let m1 = s.marginal(&[1]);
        assert_close(m1[&0], 0.5);
        assert_close(m1[&1], 0.5);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut s = SparseState::zero(2);
        s.apply(&Gate::H(0));
        s.apply(&Gate::cnot(0, 1));
        let mut rng = StdRng::seed_from_u64(7);
        let counts = s.sample(&mut rng, 10_000, &[0, 1]);
        let c00 = *counts.get(&0b00).unwrap_or(&0);
        let c11 = *counts.get(&0b11).unwrap_or(&0);
        assert_eq!(c00 + c11, 10_000, "only Bell outcomes should appear");
        assert!((c00 as f64 - 5_000.0).abs() < 300.0, "c00={c00}");
    }

    #[test]
    fn sampling_a_deterministic_state_is_exact() {
        // After X on qubit 1 the only outcome is 0b10 — every shot must
        // land there regardless of where the binary search probes.
        let mut d = DenseState::zero(2).unwrap();
        d.apply(&Gate::X(1));
        let mut rng = StdRng::seed_from_u64(3);
        let counts = d.sample(&mut rng, 1_000, &[0, 1]);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&0b10], 1_000);
    }

    #[test]
    fn sparse_support_stays_bounded_under_permutation_gates() {
        let mut s = SparseState::zero(60);
        for q in 0..4 {
            s.apply(&Gate::H(q));
        }
        assert_eq!(s.support_size(), 16);
        // A long chain of Toffolis into high ancilla qubits must not grow
        // the support.
        for q in 4..60 {
            s.apply(&Gate::ccnot(0, 1, q));
            s.apply(&Gate::cnot(2, q));
        }
        assert_eq!(s.support_size(), 16);
        assert_close(s.norm_sqr(), 1.0);
    }

    #[test]
    fn compiled_run_keeps_sparse_support_bounded() {
        let mut c = Circuit::new(60);
        for q in 0..4 {
            c.push_unchecked(Gate::H(q));
        }
        for q in 4..60 {
            c.push_unchecked(Gate::ccnot(0, 1, q));
            c.push_unchecked(Gate::cnot(2, q));
        }
        let mut s = SparseState::zero(60);
        s.run(&c).unwrap();
        assert_eq!(s.support_size(), 16);
        assert_close(s.norm_sqr(), 1.0);
    }

    #[test]
    fn prune_drops_tiny_amplitudes() {
        let mut s = SparseState::zero(1);
        s.apply(&Gate::H(0));
        s.apply(&Gate::H(0));
        // |1⟩ amplitude is exactly 0 up to rounding; prune removes it.
        s.prune(1e-12);
        assert_eq!(s.support_size(), 1);
    }
}
