//! The failpoint matrix: every named fault-injection site in the
//! workspace is armed in turn, and the layer hosting it must surface a
//! structured [`RtError::Faulted`] naming that site — never a panic, and
//! never a silently wrong result. Where the host supports checkpoints,
//! the fault must additionally leave a checkpoint that resumes to the
//! bit-identical uninterrupted answer once the fault is cleared.
//!
//! Run with `cargo test --features failpoints --test fault_matrix`; the
//! CI `faults` job does exactly that.
#![cfg(feature = "failpoints")]

use qmkp::annealer::{
    anneal_qubo_ctx, sqa_qubo_ctx, temper_qubo_ctx, SaConfig, SqaConfig, TemperingConfig,
};
use qmkp::core::{qmkp_ctx, quantum_count_ctx, QmkpCheckpoint, QmkpConfig, QmkpProbe};
use qmkp::qsim::SparseState;
use qmkp::qubo::QuboModel;
use qmkp::rt::{failpoint, Budget, RtContext, RtError};
use qmkp::solve::SolveConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn faulted(site: &str) -> RtError {
    RtError::Faulted { site: site.into() }
}

fn small_qubo() -> QuboModel {
    let mut q = QuboModel::new(3);
    q.add_linear(0, -2.0);
    q.add_linear(1, -2.0);
    q.add_linear(2, -1.0);
    q.add_quadratic(0, 1, 1.0);
    q.add_quadratic(1, 2, 3.0);
    q
}

/// The gate-pipeline sites, armed one at a time under a full `qmkp`
/// search; each must produce `Faulted` carrying its own name, plus a
/// checkpoint that resumes cleanly after the fault clears.
#[test]
fn every_gate_pipeline_site_faults_structurally_and_resumes() {
    let _guard = failpoint::exclusive();
    let g = qmkp::graph::gen::paper_fig1_graph();
    let config = QmkpConfig::default();
    let straight = qmkp_ctx::<SparseState>(&g, 2, &config, &RtContext::unlimited(), None)
        .expect("unlimited context cannot be interrupted");

    for site in [
        "core.qmkp.probe",
        "core.grover.iterate",
        "qsim.run.op",
        "qsim.sparse.alloc",
    ] {
        failpoint::reset();
        // Pass one hit first so the fault lands mid-run, not at the door.
        failpoint::arm(site, 1);
        let interrupted = qmkp_ctx::<SparseState>(&g, 2, &config, &RtContext::unlimited(), None)
            .expect_err("armed site must interrupt the search");
        assert_eq!(interrupted.error, faulted(site), "site {site}");
        assert!(
            failpoint::hits(site).unwrap_or(0) >= 2,
            "site {site} was never consulted"
        );

        failpoint::reset();
        let resumed = qmkp_ctx::<SparseState>(
            &g,
            2,
            &config,
            &RtContext::unlimited(),
            Some(&interrupted.checkpoint),
        )
        .expect("fault cleared: resume must complete");
        assert_eq!(resumed.best, straight.best, "site {site}");
        assert_eq!(
            resumed.error_probability.to_bits(),
            straight.error_probability.to_bits(),
            "site {site}"
        );
        assert_eq!(
            resumed.total_iterations, straight.total_iterations,
            "site {site}"
        );
    }
    failpoint::reset();
}

/// The quantum-counting sites: QPE entry and the dense-state allocation
/// it performs.
#[test]
fn counting_sites_fault_structurally() {
    let _guard = failpoint::exclusive();
    for site in ["core.counting.qpe", "qsim.dense.alloc"] {
        failpoint::reset();
        failpoint::arm(site, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let err = quantum_count_ctx(3, 2, 5, &mut rng, &RtContext::unlimited())
            .expect_err("armed site must abort the count");
        assert_eq!(err, faulted(site), "site {site}");
    }
    failpoint::reset();
}

/// The annealer sites: each schedule interrupts with `Faulted` and its
/// checkpoint resumes to the bit-identical uninterrupted outcome.
#[test]
fn annealer_sites_fault_structurally_and_resume() {
    let _guard = failpoint::exclusive();
    let q = small_qubo();

    // SA ------------------------------------------------------------
    let sa = SaConfig {
        shots: 4,
        sweeps: 5,
        ..SaConfig::default()
    };
    let straight = anneal_qubo_ctx(&q, &sa, &RtContext::unlimited(), None)
        .expect("unlimited context cannot be interrupted");
    failpoint::reset();
    failpoint::arm("annealer.sa.sweep", 3);
    let interrupted = anneal_qubo_ctx(&q, &sa, &RtContext::unlimited(), None)
        .expect_err("armed sweep site must interrupt SA");
    assert_eq!(interrupted.error, faulted("annealer.sa.sweep"));
    failpoint::reset();
    let resumed = anneal_qubo_ctx(
        &q,
        &sa,
        &RtContext::unlimited(),
        Some(&interrupted.checkpoint),
    )
    .expect("fault cleared: SA resume must complete");
    assert_eq!(resumed.best, straight.best);
    assert_eq!(
        resumed.best_energy.to_bits(),
        straight.best_energy.to_bits()
    );

    // SQA -----------------------------------------------------------
    let sqa = SqaConfig {
        shots: 3,
        sweeps: 4,
        trotter_slices: 4,
        ..SqaConfig::default()
    };
    let straight = sqa_qubo_ctx(&q, &sqa, &RtContext::unlimited(), None)
        .expect("unlimited context cannot be interrupted");
    failpoint::reset();
    failpoint::arm("annealer.sqa.sweep", 3);
    let interrupted = sqa_qubo_ctx(&q, &sqa, &RtContext::unlimited(), None)
        .expect_err("armed sweep site must interrupt SQA");
    assert_eq!(interrupted.error, faulted("annealer.sqa.sweep"));
    failpoint::reset();
    let resumed = sqa_qubo_ctx(
        &q,
        &sqa,
        &RtContext::unlimited(),
        Some(&interrupted.checkpoint),
    )
    .expect("fault cleared: SQA resume must complete");
    assert_eq!(resumed.best, straight.best);
    assert_eq!(
        resumed.best_energy.to_bits(),
        straight.best_energy.to_bits()
    );

    // Parallel tempering --------------------------------------------
    let pt = TemperingConfig {
        replicas: 4,
        rounds: 6,
        ..TemperingConfig::default()
    };
    let straight = temper_qubo_ctx(&q, &pt, &RtContext::unlimited(), None)
        .expect("unlimited context cannot be interrupted");
    failpoint::reset();
    failpoint::arm("annealer.tempering.round", 2);
    let interrupted = temper_qubo_ctx(&q, &pt, &RtContext::unlimited(), None)
        .expect_err("armed round site must interrupt tempering");
    assert_eq!(interrupted.error, faulted("annealer.tempering.round"));
    failpoint::reset();
    let resumed = temper_qubo_ctx(
        &q,
        &pt,
        &RtContext::unlimited(),
        Some(&interrupted.checkpoint),
    )
    .expect("fault cleared: tempering resume must complete");
    assert_eq!(resumed.best, straight.best);
    assert_eq!(
        resumed.best_energy.to_bits(),
        straight.best_energy.to_bits()
    );

    failpoint::reset();
}

/// With `QMKP_RT_CHECKPOINT_DIR` set, an interrupt also spills its
/// checkpoint to disk; reloading the *file* (as a restarted process
/// would, having lost the in-memory `Interrupted`) must resume to the
/// bit-identical uninterrupted answer.
#[test]
fn spilled_checkpoint_resumes_bit_identically_from_disk() {
    use qmkp::rt::Checkpoint as _;
    let _guard = failpoint::exclusive();
    let g = qmkp::graph::gen::paper_fig1_graph();
    let config = QmkpConfig::default();
    let straight = qmkp_ctx::<SparseState>(&g, 2, &config, &RtContext::unlimited(), None)
        .expect("unlimited context cannot be interrupted");

    let dir = std::env::temp_dir().join(format!("qmkp_ckpt_spill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("QMKP_RT_CHECKPOINT_DIR", &dir);
    failpoint::reset();
    failpoint::arm("core.qmkp.probe", 1);
    let interrupted = qmkp_ctx::<SparseState>(&g, 2, &config, &RtContext::unlimited(), None)
        .expect_err("armed site must interrupt the search");
    std::env::remove_var("QMKP_RT_CHECKPOINT_DIR");
    failpoint::reset();

    // A restarted process only has the directory: pick the newest spill
    // (the `<pid>-<seq>` filename ordering is chronological here).
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("the interrupt must have created the spill dir")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    files.sort();
    let newest = files.last().expect("the interrupt must have spilled");
    let from_disk: QmkpCheckpoint =
        qmkp::rt::load_checkpoint(newest).expect("spilled checkpoint must parse");
    assert_eq!(
        from_disk.to_json(),
        interrupted.checkpoint.to_json(),
        "the disk spill must round-trip the in-memory checkpoint exactly"
    );
    let resumed =
        qmkp_ctx::<SparseState>(&g, 2, &config, &RtContext::unlimited(), Some(&from_disk))
            .expect("fault cleared: resume from disk must complete");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(resumed.best, straight.best);
    assert_eq!(
        resumed.error_probability.to_bits(),
        straight.error_probability.to_bits()
    );
    assert_eq!(resumed.total_iterations, straight.total_iterations);
}

/// A faulted quantum pipeline inside `solve` is first *retried* (the
/// fault is transient, so the runtime's retry loop resumes from the
/// checkpoint and counts `rt.retries`), and only once the policy is
/// exhausted degrades to the classical floor: the answer is still a
/// valid k-plex and the outcome is flagged.
#[test]
fn faulted_pipeline_degrades_inside_solve() {
    let _guard = failpoint::exclusive();
    failpoint::reset();
    // `arm(site, n)` passes n hits then faults every subsequent hit, so
    // the fault persists across retry attempts and the policy exhausts.
    failpoint::arm("core.grover.iterate", 0);
    let collector = std::sync::Arc::new(qmkp::obs::Collector::for_current_thread());
    let obs_guard = qmkp::obs::attach(collector.clone());
    let g = qmkp::graph::gen::paper_fig1_graph();
    // Portfolio pinned off: this test asserts the *sequential* ladder's
    // retry-then-degrade accounting, which a concurrent race would
    // short-circuit (a heuristic racer wins before the retries exhaust).
    let config = SolveConfig {
        portfolio: Some(false),
        ..SolveConfig::default()
    };
    let out = qmkp::solve(&g, 2, &config, &RtContext::unlimited())
        .expect("degradation absorbs injected faults");
    drop(obs_guard);
    assert!(out.degraded);
    assert_eq!(out.degraded_because, Some(faulted("core.grover.iterate")));
    assert!(qmkp::graph::is_kplex(&g, out.best, 2));
    // The default policy allows 3 attempts; both re-attempts must have
    // been counted before the ladder degraded.
    assert_eq!(collector.counter_total("rt.retries"), 2);
    assert_eq!(collector.counter_total("rt.degradations"), 1);
    failpoint::reset();
}

/// An interrupt *inside* a probe's Grover phase must checkpoint the
/// completed iterations ([`QmkpCheckpoint::probe`]) and resume from that
/// iteration boundary — bit-identical to the uninterrupted run, never
/// restarting the probe at iteration zero.
#[test]
fn interrupt_inside_a_probe_resumes_from_the_iteration_boundary() {
    let _guard = failpoint::exclusive();
    failpoint::reset();
    let g = qmkp::graph::gen::paper_fig1_graph();
    let config = QmkpConfig::default();
    let straight = qmkp_ctx::<SparseState>(&g, 2, &config, &RtContext::unlimited(), None)
        .expect("unlimited context cannot be interrupted");
    // Find a probe that runs at least two Grover iterations (on fig-1
    // that is the t = 4 probe) and fault on its *last* iteration: the
    // checkpoint must record every iteration completed before it. A
    // zero-iterations-done interrupt is indistinguishable from a probe
    // boundary, so it would not exercise intra-probe resume.
    let mut offset = 0u64;
    let mut target = None;
    for call in &straight.calls {
        if call.iterations >= 2 {
            target = Some((call.t, call.iterations));
            break;
        }
        offset += call.iterations as u64;
    }
    let (t, iterations) =
        target.expect("fig-1 must have a probe with at least two Grover iterations");
    let done = iterations - 1;

    failpoint::arm("core.grover.iterate", offset + done as u64);
    let interrupted = qmkp_ctx::<SparseState>(&g, 2, &config, &RtContext::unlimited(), None)
        .expect_err("armed iterate site must interrupt inside the probe");
    assert_eq!(interrupted.error, faulted("core.grover.iterate"));
    assert_eq!(
        interrupted.checkpoint.probe,
        Some(QmkpProbe {
            t,
            iterations_done: done,
        }),
        "the checkpoint must carry the intra-probe position"
    );

    failpoint::reset();
    let resumed = qmkp_ctx::<SparseState>(
        &g,
        2,
        &config,
        &RtContext::unlimited(),
        Some(&interrupted.checkpoint),
    )
    .expect("fault cleared: intra-probe resume must complete");
    assert_eq!(resumed.best, straight.best);
    assert_eq!(
        resumed.error_probability.to_bits(),
        straight.error_probability.to_bits()
    );
    assert_eq!(resumed.total_iterations, straight.total_iterations);
}

/// Any single racer faulting must not cost the caller the answer: the
/// race returns a verified winner from a surviving racer and accounts
/// the casualty on the `solve.race.faulted` metric.
#[test]
fn single_racer_faults_still_yield_a_verified_winner() {
    let _guard = failpoint::exclusive();
    let g = qmkp::graph::gen::paper_fig1_graph();
    let config = SolveConfig {
        portfolio: Some(true),
        ..SolveConfig::default()
    };
    qmkp::obs::metrics::set_enabled(true);
    for (site, racer) in [
        ("core.qmkp.probe", "sparse"),
        ("core.grover.iterate", "sparse"),
        ("qsim.run.op", "sparse"),
        ("qsim.sparse.alloc", "sparse"),
        ("annealer.sqa.sweep", "sqa"),
        ("classical.grasp.iter", "classical"),
        ("classical.bnb.node", "classical"),
    ] {
        // An `after = 0` arm faults the racer on its very first site
        // hit, which in practice precedes any win; if the scheduler
        // nonetheless cancelled the racer before it reached the site,
        // the race was still correct — rerun until the fault lands.
        let mut fault_observed = false;
        for _attempt in 0..3 {
            failpoint::reset();
            failpoint::arm(site, 0);
            qmkp::obs::metrics::reset();
            let out = qmkp::solve(&g, 2, &config, &RtContext::unlimited())
                .expect("a surviving racer must still answer");
            assert!(qmkp::graph::is_kplex(&g, out.best, 2), "site {site}");
            let race = out.race.expect("a forced portfolio must race");
            assert_ne!(race.winner, racer, "the faulted racer cannot win ({site})");
            let snap = qmkp::obs::metrics::snapshot();
            if snap.value_of("solve.race.faulted", &[("racer", racer)]) >= 1.0 {
                assert!(race.faulted >= 1, "site {site}");
                fault_observed = true;
                break;
            }
        }
        assert!(
            fault_observed,
            "site {site}: racer {racer} never faulted across 3 races"
        );
    }
    qmkp::obs::metrics::set_enabled(false);
    failpoint::reset();
}

/// Every racer failing must surface as the aggregate error naming each
/// racer's own failure in staking order — never a panic, never a bare
/// first-error.
#[test]
fn all_racers_failing_yields_an_aggregate_error() {
    let _guard = failpoint::exclusive();
    failpoint::reset();
    failpoint::arm("core.qmkp.probe", 0); // kills the sparse racer
    failpoint::arm("annealer.sqa.sweep", 0); // kills the SQA racer
    failpoint::arm("classical.grasp.iter", 0); // kills the classical racer
    let g = qmkp::graph::gen::paper_fig1_graph();
    let config = SolveConfig {
        portfolio: Some(true),
        ..SolveConfig::default()
    };
    let err = qmkp::solve(&g, 2, &config, &RtContext::unlimited())
        .expect_err("with every racer dead there is no answer");
    match err {
        RtError::AllRacersFailed { failures } => {
            let names: Vec<&str> = failures.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, ["sparse", "sqa", "classical"]);
            let expected = [
                ("sparse", "core.qmkp.probe"),
                ("sqa", "annealer.sqa.sweep"),
                ("classical", "classical.grasp.iter"),
            ];
            for ((name, e), (_, site)) in failures.iter().zip(expected) {
                assert_eq!(e, &faulted(site), "racer {name}");
            }
        }
        other => panic!("expected AllRacersFailed, got {other}"),
    }
    failpoint::reset();
}

/// A panic injected through one racer's oracle provider is contained to
/// that racer: the heuristic racers still answer and the casualty is a
/// structural fault, not a crashed process.
#[test]
fn provider_panic_is_contained_to_the_quantum_racer() {
    struct PanickingProvider;
    impl qmkp::core::OracleProvider for PanickingProvider {
        fn compiled_oracle(
            &self,
            _g: &qmkp::graph::Graph,
            _k: usize,
            _t: usize,
            _ctx: &RtContext,
        ) -> Result<std::sync::Arc<qmkp::core::CompiledOracle>, RtError> {
            panic!("injected oracle-provider panic");
        }
    }

    let _guard = failpoint::exclusive();
    failpoint::reset();
    let g = qmkp::graph::gen::paper_fig1_graph();
    let config = SolveConfig {
        portfolio: Some(true),
        ..SolveConfig::default()
    };
    let out = qmkp::solve_with(&g, 2, &config, &RtContext::unlimited(), &PanickingProvider)
        .expect("the heuristic racers survive a panicking provider");
    assert!(qmkp::graph::is_kplex(&g, out.best, 2));
    let race = out.race.expect("a forced portfolio must race");
    assert_ne!(race.winner, "sparse", "the panicking racer cannot win");
    // The panic fires on the sparse racer's first oracle compilation,
    // long before any heuristic can win and cancel it.
    assert!(race.faulted >= 1, "the panic must be accounted as a fault");
}

/// The scripted warm-start race: with `QMKP_PORTFOLIO_HANDOFF_SYNC` set
/// the exact-classical racer's only lower bound is the SQA racer's
/// published incumbent, so branch & bound is *unbounded* in a control
/// run whose SQA racer is killed at sweep zero. The handoff must land on
/// `solve.race.warm_start{handoff=sqa-to-bnb}` and strictly shrink the
/// node count relative to that control.
#[test]
fn sqa_incumbent_tightens_the_bnb_bound() {
    let _guard = failpoint::exclusive();
    failpoint::reset();
    // On this instance the SQA racer's first verified publish is already
    // a maximum 4-plex (size 10), so adopting it bounds branch & bound
    // strictly tighter than anything the search would have self-found by
    // that point.
    let g = qmkp::graph::gen::gnm(24, 140, 6).expect("valid G(n, m) parameters");
    let k = 4;
    let config = SolveConfig {
        portfolio: Some(true),
        // n = 24 must still take the exact branch & bound path.
        exact_threshold: Some(30),
        // Slow the SQA racer down (its first incumbent still lands
        // within shot zero) so the classical racer always finishes its
        // bounded search first and the node gauge is always emitted.
        sqa: Some(qmkp::annealer::SqaConfig {
            shots: 50,
            sweeps: 64,
            seed: 4,
            ..qmkp::annealer::SqaConfig::default()
        }),
        ..SolveConfig::default()
    };
    // A byte ceiling far below any statevector: only the SQA and
    // classical racers stake, so the race is exactly the handoff pair.
    let ctx = RtContext::with_budget(Budget {
        deadline: None,
        max_bytes: Some(1024),
        max_ops: None,
    });
    qmkp::obs::metrics::set_enabled(true);

    // Control: the SQA racer dies on its first sweep, the classical
    // racer's 50 ms hold expires empty, and branch & bound runs with no
    // initial bound at all.
    failpoint::arm("annealer.sqa.sweep", 0);
    std::env::set_var("QMKP_PORTFOLIO_HANDOFF_SYNC", "50");
    qmkp::obs::metrics::reset();
    let cold = qmkp::solve(&g, k, &config, &ctx).expect("the classical racer survives alone");
    let cold_snap = qmkp::obs::metrics::snapshot();
    let cold_nodes = cold_snap.value_of("solve.race.bnb_nodes", &[]);
    let cold_handoffs = cold_snap.value_of("solve.race.warm_start", &[("handoff", "sqa-to-bnb")]);

    // Warm: the fault is cleared, the hold waits for SQA's first
    // verified incumbent, and that incumbent is the whole bound.
    failpoint::reset();
    std::env::set_var("QMKP_PORTFOLIO_HANDOFF_SYNC", "2000");
    qmkp::obs::metrics::reset();
    let warm = qmkp::solve(&g, k, &config, &ctx).expect("both racers healthy");
    let warm_snap = qmkp::obs::metrics::snapshot();
    let warm_nodes = warm_snap.value_of("solve.race.bnb_nodes", &[]);
    let warm_handoffs = warm_snap.value_of("solve.race.warm_start", &[("handoff", "sqa-to-bnb")]);
    std::env::remove_var("QMKP_PORTFOLIO_HANDOFF_SYNC");
    qmkp::obs::metrics::set_enabled(false);

    let cold_race = cold.race.expect("forced portfolio must race");
    assert_eq!(cold_race.winner, "classical");
    assert_eq!(
        cold_race.faulted, 1,
        "the control's SQA racer must have died"
    );
    assert_eq!(
        cold_handoffs, 0.0,
        "a dead SQA racer cannot hand anything off"
    );
    assert!(
        cold_nodes > 0.0,
        "the control search must have been measured"
    );

    let warm_race = warm.race.expect("forced portfolio must race");
    assert_eq!(warm_race.winner, "classical");
    assert!(
        warm_handoffs >= 1.0,
        "the SQA incumbent must reach branch & bound"
    );
    assert!(warm_race.warm_starts >= 1);
    assert!(
        warm_nodes > 0.0,
        "the bounded search must have been measured"
    );
    assert!(
        warm_nodes < cold_nodes,
        "the handoff must strictly prune the search: warm {warm_nodes} vs cold {cold_nodes}"
    );
    assert!(qmkp::graph::is_kplex(&g, warm.best, k));
    assert_eq!(
        warm.best.len(),
        cold.best.len(),
        "both exact searches must agree on the optimum size"
    );
}
