//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::{NewValueResult, Strategy};
use crate::test_runner::TestRunner;
use rand::distributions::{Distribution, Standard};
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    fn arbitrary() -> AnyStrategy<Self>;
}

/// The strategy behind [`any`]: draws from the [`Standard`] distribution.
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T> Strategy for AnyStrategy<T>
where
    Standard: Distribution<T>,
{
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> NewValueResult<T> {
        Ok(runner.rng().gen())
    }
}

impl<T> Arbitrary for T
where
    Standard: Distribution<T>,
{
    fn arbitrary() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// The canonical strategy for `T`: uniform over all values for integers
/// and `bool`, uniform in `[0, 1)` for floats.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    T::arbitrary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::ProptestConfig;

    #[test]
    fn any_generates_varied_values() {
        let mut r = TestRunner::new(ProptestConfig::default(), "arbitrary::tests");
        let s = any::<u64>();
        let a = s.new_value(&mut r).unwrap();
        let b = s.new_value(&mut r).unwrap();
        assert_ne!(a, b, "two u64 draws colliding is vanishingly unlikely");
        let _: bool = any::<bool>().new_value(&mut r).unwrap();
        let _: u128 = any::<u128>().new_value(&mut r).unwrap();
    }
}
