//! The structured runtime-error taxonomy every budgeted layer returns.

use std::fmt;

/// Why a budgeted/cancellable pass stopped before completing.
///
/// Extends the PR-3 `SimError`/`CompileError` work to the whole solve
/// path: no layer panics on an exhausted budget, a cancellation, or an
/// injected fault — it surfaces one of these and leaves its state
/// droppable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// The wall-clock deadline of the budget elapsed.
    DeadlineExceeded {
        /// Milliseconds elapsed when the overrun was observed.
        elapsed_ms: u64,
        /// The configured deadline in milliseconds.
        deadline_ms: u64,
    },
    /// An allocation (or a preflight estimate of one) exceeded the byte
    /// ceiling.
    MemoryBudget {
        /// Bytes required by the pass that was rejected.
        required: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// The kernel-op ceiling was exhausted.
    OpBudget {
        /// Ops charged so far.
        used: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// The [`crate::CancelToken`] fired.
    Cancelled,
    /// A deterministic fault was injected at a named
    /// [`crate::failpoint`] site (only under the `failpoints` feature).
    Faulted {
        /// The site name, e.g. `"qsim.run.op"`.
        site: String,
    },
    /// A configuration was rejected up front (validated, not clamped and
    /// not panicked on).
    InvalidConfig(String),
    /// Every racer in a [`crate::race()`] portfolio failed. Carries each
    /// racer's name and its individual failure so the caller can see the
    /// whole picture — never a panic, never silence.
    AllRacersFailed {
        /// `(racer name, that racer's error)`, in staking order.
        failures: Vec<(String, RtError)>,
    },
}

impl RtError {
    /// Whether retrying the same operation can possibly succeed.
    /// Injected faults are transient by definition (they model flaky
    /// hardware); exhausted budgets, cancellations and bad configs are
    /// not.
    pub fn is_transient(&self) -> bool {
        matches!(self, RtError::Faulted { .. })
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::DeadlineExceeded {
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms} ms elapsed of a {deadline_ms} ms budget"
            ),
            RtError::MemoryBudget { required, limit } => write!(
                f,
                "memory budget exceeded: {required} bytes required, {limit} allowed"
            ),
            RtError::OpBudget { used, limit } => {
                write!(f, "op budget exhausted: {used} kernel ops of {limit} used")
            }
            RtError::Cancelled => write!(f, "cancelled"),
            RtError::Faulted { site } => write!(f, "injected fault at site `{site}`"),
            RtError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RtError::AllRacersFailed { failures } => {
                write!(f, "all {} racers failed:", failures.len())?;
                for (name, err) in failures {
                    write!(f, " [{name}: {err}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(RtError::DeadlineExceeded {
            elapsed_ms: 120,
            deadline_ms: 100
        }
        .to_string()
        .contains("120 ms"));
        assert!(RtError::MemoryBudget {
            required: 1024,
            limit: 512
        }
        .to_string()
        .contains("1024"));
        assert!(RtError::OpBudget {
            used: 10,
            limit: 10
        }
        .to_string()
        .contains("10"));
        assert_eq!(RtError::Cancelled.to_string(), "cancelled");
        assert!(RtError::Faulted {
            site: "qsim.run.op".into()
        }
        .to_string()
        .contains("qsim.run.op"));
        assert!(RtError::InvalidConfig("max_attempts must be ≥ 1".into())
            .to_string()
            .contains("max_attempts"));
        let agg = RtError::AllRacersFailed {
            failures: vec![
                ("dense".into(), RtError::Cancelled),
                (
                    "sqa".into(),
                    RtError::Faulted {
                        site: "annealer.sqa.sweep".into(),
                    },
                ),
            ],
        };
        let text = agg.to_string();
        assert!(text.contains("all 2 racers failed"), "{text}");
        assert!(text.contains("dense: cancelled"), "{text}");
        assert!(text.contains("sqa: injected fault"), "{text}");
    }

    #[test]
    fn only_faults_are_transient() {
        assert!(RtError::Faulted { site: "x".into() }.is_transient());
        assert!(!RtError::Cancelled.is_transient());
        assert!(!RtError::DeadlineExceeded {
            elapsed_ms: 1,
            deadline_ms: 1
        }
        .is_transient());
        assert!(!RtError::InvalidConfig(String::new()).is_transient());
        assert!(!RtError::AllRacersFailed {
            failures: vec![("x".into(), RtError::Faulted { site: "s".into() })]
        }
        .is_transient());
    }
}
