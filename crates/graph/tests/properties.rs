//! Property-based tests of the graph substrate.

use proptest::prelude::*;
use qmkp_graph::gen::{gnm, relabel};
use qmkp_graph::plex::{greedy_extend, greedy_repair, plex_deficiency};
use qmkp_graph::reduce::{core_numbers, degeneracy_order, reduce_for_mkp};
use qmkp_graph::{io, is_kcplex, is_kplex, Graph, VertexSet};

/// Strategy: a random simple graph with 1..=10 vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..=10, any::<u64>()).prop_flat_map(|(n, seed)| {
        let max_m = n * (n - 1) / 2;
        (Just(n), 0..=max_m, Just(seed))
            .prop_map(|(n, m, seed)| gnm(n, m, seed).expect("valid parameters"))
    })
}

proptest! {
    #[test]
    fn complement_is_an_involution(g in arb_graph()) {
        prop_assert_eq!(g.complement().complement(), g);
    }

    #[test]
    fn complement_edge_counts_are_complementary(g in arb_graph()) {
        let n = g.n();
        prop_assert_eq!(g.m() + g.complement().m(), n * (n - 1) / 2);
    }

    #[test]
    fn kplex_duality((g, k) in arb_graph().prop_flat_map(|g| {
        let n = g.n();
        (Just(g), 1usize..=n)
    })) {
        let gc = g.complement();
        for bits in 0..(1u128 << g.n()) {
            let s = VertexSet::from_bits(bits);
            prop_assert_eq!(is_kplex(&g, s, k), is_kcplex(&gc, s, k));
        }
    }

    #[test]
    fn subsets_of_kplexes_are_kplexes(g in arb_graph(), k in 1usize..=3, seed in any::<u64>()) {
        // Hereditary property: remove any vertex from a k-plex, still a k-plex.
        let p = greedy_extend(&g, VertexSet::EMPTY, k);
        prop_assert!(is_kplex(&g, p, k));
        let mut s = p;
        let mut rot = seed;
        while let Some(v) = s.iter().nth((rot as usize) % s.len().max(1)) {
            s.remove(v);
            prop_assert!(is_kplex(&g, s, k), "removing {v} broke plexhood");
            if s.is_empty() { break; }
            rot = rot.rotate_left(7).wrapping_add(1);
        }
    }

    #[test]
    fn deficiency_zero_iff_plex(g in arb_graph(), k in 1usize..=3) {
        for bits in 0..(1u128 << g.n()) {
            let s = VertexSet::from_bits(bits);
            prop_assert_eq!(plex_deficiency(&g, s, k) == 0, is_kplex(&g, s, k));
        }
    }

    #[test]
    fn greedy_repair_returns_subset_plex(g in arb_graph(), k in 1usize..=3, bits in any::<u128>()) {
        let s = VertexSet::from_bits(bits & (g.vertices().bits()));
        let r = greedy_repair(&g, s, k);
        prop_assert!(is_kplex(&g, r, k));
        prop_assert!(r.is_subset_of(s));
    }

    #[test]
    fn relabelling_preserves_max_plex_size(g in arb_graph(), k in 1usize..=2, seed in any::<u64>()) {
        let perm = qmkp_graph::gen::random_permutation(g.n(), seed);
        let h = relabel(&g, &perm);
        let max_size = |g: &Graph| (0..(1u128 << g.n()))
            .map(VertexSet::from_bits)
            .filter(|&s| is_kplex(g, s, k))
            .map(|s| s.len())
            .max()
            .unwrap_or(0);
        prop_assert_eq!(max_size(&g), max_size(&h));
    }

    #[test]
    fn edge_list_roundtrip(g in arb_graph()) {
        prop_assert_eq!(io::parse_edge_list(&io::write_edge_list(&g)).unwrap(), g.clone());
        prop_assert_eq!(io::parse_dimacs(&io::write_dimacs(&g)).unwrap(), g);
    }

    #[test]
    fn core_numbers_bounded_by_degeneracy(g in arb_graph()) {
        let cores = core_numbers(&g);
        let (_, degeneracy) = degeneracy_order(&g);
        for (v, &c) in cores.iter().enumerate() {
            prop_assert!(c <= degeneracy);
            prop_assert!(c <= g.degree(v));
        }
        prop_assert_eq!(cores.iter().copied().max().unwrap_or(0), degeneracy);
    }

    #[test]
    fn reduction_soundness(g in arb_graph(), k in 1usize..=2, lb in 1usize..=5) {
        let red = reduce_for_mkp(&g, k, lb);
        for bits in 0..(1u128 << g.n()) {
            let s = VertexSet::from_bits(bits);
            if s.len() >= lb && is_kplex(&g, s, k) {
                prop_assert!(s.is_subset_of(red.kept));
            }
        }
    }
}

proptest! {
    #[test]
    fn vertex_set_algebra_laws(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        let (a, b, c) = (VertexSet::from_bits(a), VertexSet::from_bits(b), VertexSet::from_bits(c));
        // De Morgan.
        prop_assert_eq!(!(a | b), !a & !b);
        prop_assert_eq!(!(a & b), !a | !b);
        // Distributivity.
        prop_assert_eq!(a & (b | c), (a & b) | (a & c));
        // Difference definition.
        prop_assert_eq!(a - b, a & !b);
        // Subset characterisations.
        prop_assert_eq!((a & b) == a, a.is_subset_of(b));
        // Cardinality of symmetric difference.
        prop_assert_eq!((a ^ b).len(), (a - b).len() + (b - a).len());
    }

    #[test]
    fn vertex_set_iteration_is_sorted_and_complete(bits in any::<u128>()) {
        let s = VertexSet::from_bits(bits);
        let v: Vec<usize> = s.iter().collect();
        prop_assert_eq!(v.len(), s.len());
        prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(v.iter().all(|&i| s.contains(i)));
    }
}
