//! Pluggable event sinks: the in-memory collector (tests, summaries,
//! reports) and the JSONL writer (machine-readable run traces).

use crate::event::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// Receives every event that passes the global enable/filter checks.
///
/// Implementations must be cheap and non-blocking-ish: they run inline at
/// the instrumentation point (behind a mutex where needed).
pub trait Sink: Send + Sync {
    /// Handles one event.
    fn record(&self, event: &Event);
    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// An in-memory event collector: the test/report sink.
///
/// Optionally restricted to the thread that created it
/// ([`Collector::for_current_thread`]), so concurrently running tests in
/// one process cannot contaminate each other's collections.
#[derive(Debug, Default)]
pub struct Collector {
    events: Mutex<Vec<Event>>,
    only_thread: Option<u64>,
}

impl Collector {
    /// A collector that records events from every thread.
    pub fn new() -> Self {
        Collector::default()
    }

    /// A collector that records only events emitted by the calling thread.
    pub fn for_current_thread() -> Self {
        Collector {
            events: Mutex::new(Vec::new()),
            only_thread: Some(crate::thread_id()),
        }
    }

    /// A snapshot of everything collected so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("collector lock").clone()
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("collector lock").len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops everything collected so far.
    pub fn clear(&self) {
        self.events.lock().expect("collector lock").clear();
    }

    /// All finished spans as `(name, duration)`, in completion order.
    pub fn finished_spans(&self) -> Vec<(String, Duration)> {
        self.events
            .lock()
            .expect("collector lock")
            .iter()
            .filter_map(|ev| match ev {
                Event::SpanEnd { name, duration, .. } => Some((name.clone(), *duration)),
                _ => None,
            })
            .collect()
    }

    /// Sum of finished-span durations whose name starts with `prefix`.
    pub fn span_total(&self, prefix: &str) -> Duration {
        self.finished_spans()
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|&(_, d)| d)
            .sum()
    }

    /// Total of all increments to the named counter.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .lock()
            .expect("collector lock")
            .iter()
            .map(|ev| match ev {
                Event::Counter { name: n, delta, .. } if n == name => *delta,
                _ => 0,
            })
            .sum()
    }

    /// The most recent value of the named gauge, if any was set.
    pub fn last_gauge(&self, name: &str) -> Option<f64> {
        self.events
            .lock()
            .expect("collector lock")
            .iter()
            .rev()
            .find_map(|ev| match ev {
                Event::Gauge { name: n, value, .. } if n == name => Some(*value),
                _ => None,
            })
    }
}

impl Sink for Collector {
    fn record(&self, event: &Event) {
        if let Some(t) = self.only_thread {
            if event.thread() != t {
                return;
            }
        }
        self.events
            .lock()
            .expect("collector lock")
            .push(event.clone());
    }
}

/// Appends one JSON object per event to a file (JSONL).
///
/// Writes are buffered; [`Sink::flush`] (called by
/// [`crate::Session::finish`]) and drop both flush. I/O errors after
/// creation are swallowed — telemetry must never take down the run it
/// observes.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the output file.
    ///
    /// # Errors
    /// Fails if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlSink {
            path,
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The path events are written to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut w = self.writer.lock().expect("jsonl lock");
        let _ = writeln!(w, "{}", event.to_jsonl());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl lock").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, thread: u64) -> Event {
        Event::Counter {
            thread,
            name: name.to_string(),
            delta: 1,
        }
    }

    #[test]
    fn collector_aggregates() {
        let c = Collector::new();
        c.record(&ev("a", 1));
        c.record(&ev("a", 2));
        c.record(&Event::Gauge {
            thread: 1,
            name: "g".into(),
            value: 2.0,
        });
        c.record(&Event::Gauge {
            thread: 1,
            name: "g".into(),
            value: 5.0,
        });
        c.record(&Event::SpanEnd {
            id: 1,
            thread: 1,
            name: "s.x".into(),
            duration: Duration::from_nanos(10),
        });
        c.record(&Event::SpanEnd {
            id: 2,
            thread: 1,
            name: "s.y".into(),
            duration: Duration::from_nanos(5),
        });
        assert_eq!(c.counter_total("a"), 2);
        assert_eq!(c.counter_total("missing"), 0);
        assert_eq!(c.last_gauge("g"), Some(5.0));
        assert_eq!(c.last_gauge("missing"), None);
        assert_eq!(c.span_total("s."), Duration::from_nanos(15));
        assert_eq!(c.span_total("s.x"), Duration::from_nanos(10));
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn thread_scoped_collector_filters() {
        let mine = crate::thread_id();
        let c = Collector::for_current_thread();
        c.record(&ev("a", mine));
        c.record(&ev("a", mine + 1));
        assert_eq!(c.counter_total("a"), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("qmkp_obs_sink_test_{}.jsonl", std::process::id()));
        {
            let s = JsonlSink::create(&path).unwrap();
            s.record(&ev("x.y", 1));
            s.record(&Event::Message {
                thread: 1,
                text: "hi".into(),
            });
            s.flush();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).expect("valid JSON line");
        }
        let _ = std::fs::remove_file(&path);
    }
}
