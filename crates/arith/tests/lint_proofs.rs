//! Analyzer-backed unit proofs for the arithmetic builders.
//!
//! `qmkp-lint` evaluates these permutation circuits exactly on every
//! input, so each test is a machine-checked proof of the builder's
//! documented ancilla contract — not a spot check:
//!
//! * `compare_le_clean` / `compare_le_const_clean` restore every scratch
//!   qubit (compute-copy-uncompute) for all operand values;
//! * `popcount_into` leaves only the counter dirty;
//! * `ripple_add` followed by its inverse is the identity on all wires;
//! * the *non*-clean `compare_le` really does leave scratch dirty — the
//!   analyzer flags it, proving the test has teeth.

use proptest::prelude::*;
use qmkp_arith::{
    compare_le, compare_le_clean, compare_le_const_clean, popcount_into, ripple_add, AdderWires,
    ComparatorScratch,
};
use qmkp_lint::{verify_ancillas, AncillaSpec, Severity};
use qmkp_qsim::{Circuit, QubitAllocator, Register};

fn assert_clean(circuit: &Circuit, spec: &AncillaSpec, what: &str) {
    let report = verify_ancillas(circuit, spec);
    assert!(
        report.exhaustive,
        "{what}: proof must be exhaustive at these widths"
    );
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.severity != Severity::Error),
        "{what} is not ancilla-clean: {:?}",
        report.diagnostics
    );
}

fn scratch_qubits(s: &ComparatorScratch) -> Vec<usize> {
    let mut qs: Vec<usize> = s.lt.iter().collect();
    qs.extend(s.eq.iter());
    qs.extend(s.prefix.iter());
    qs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn compare_le_clean_restores_all_scratch(s in 1usize..=4) {
        let mut alloc = QubitAllocator::new();
        let x = alloc.alloc("x", s);
        let y = alloc.alloc("y", s);
        let r = alloc.alloc_one("r");
        let scratch = ComparatorScratch::alloc(&mut alloc, s);
        let mut c = Circuit::new(alloc.width());
        compare_le_clean(&mut c, &x, &y, r, &scratch);
        // Operands are free input; only the result qubit may change.
        let free: Vec<usize> = x.iter().chain(y.iter()).collect();
        assert_clean(&c, &AncillaSpec::new(free, vec![r]), "compare_le_clean");
    }

    #[test]
    fn compare_le_const_clean_restores_all_scratch(s in 1usize..=4, konst in any::<u64>()) {
        let konst = konst as u128 & ((1 << s) - 1);
        let mut alloc = QubitAllocator::new();
        let x = alloc.alloc("x", s);
        let r = alloc.alloc_one("r");
        let scratch = ComparatorScratch::alloc(&mut alloc, s);
        let mut c = Circuit::new(alloc.width());
        compare_le_const_clean(&mut c, &x, konst, r, &scratch);
        assert_clean(
            &c,
            &AncillaSpec::new(x.iter().collect(), vec![r]),
            "compare_le_const_clean",
        );
    }

    #[test]
    fn popcount_dirties_only_the_counter(n in 1usize..=5) {
        let mut alloc = QubitAllocator::new();
        let src = alloc.alloc("src", n);
        let counter = alloc.alloc("cnt", 3);
        let mut c = Circuit::new(alloc.width());
        let sources: Vec<usize> = src.iter().collect();
        popcount_into(&mut c, &sources, &counter);
        assert_clean(
            &c,
            &AncillaSpec::new(sources, counter.iter().collect()),
            "popcount_into",
        );
    }

    #[test]
    fn ripple_add_then_inverse_is_identity(s in 1usize..=3) {
        let mut alloc = QubitAllocator::new();
        let x = alloc.alloc("x", s);
        let y = alloc.alloc("y", s);
        let w = AdderWires::alloc(&mut alloc, s);
        let mut c = Circuit::new(alloc.width());
        let _sum = ripple_add(&mut c, &x, &y, &w);
        c.extend(&c.clone().inverse()).unwrap();
        // Round trip: *every* qubit (operands and all adder wires) must
        // come back — no dirty_ok set at all.
        let free: Vec<usize> = x.iter().chain(y.iter()).collect();
        assert_clean(&c, &AncillaSpec::new(free, vec![]), "ripple_add round trip");
    }
}

#[test]
fn non_clean_compare_le_is_flagged_dirty() {
    let s = 3;
    let mut alloc = QubitAllocator::new();
    let x = alloc.alloc("x", s);
    let y = alloc.alloc("y", s);
    let r = alloc.alloc_one("r");
    let scratch = ComparatorScratch::alloc(&mut alloc, s);
    let mut c = Circuit::new(alloc.width());
    compare_le(&mut c, &x, &y, r, &scratch);
    let free: Vec<usize> = x.iter().chain(y.iter()).collect();
    let report = verify_ancillas(&c, &AncillaSpec::new(free, vec![r]));
    let dirty: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "ancilla-dirty")
        .collect();
    assert!(
        !dirty.is_empty(),
        "the analyzer must flag compare_le's dirty scratch"
    );
    // The flagged qubit is genuinely one of the scratch wires.
    let scratch_qs = scratch_qubits(&scratch);
    assert!(dirty
        .iter()
        .all(|d| scratch_qs.contains(&d.span.qubit.unwrap())));
}

#[test]
fn register_helpers_catch_aliasing() {
    // The aliasing check is what keeps hand-built layouts honest.
    let a = Register {
        name: "a".into(),
        start: 0,
        len: 3,
    };
    let b = Register {
        name: "b".into(),
        start: 2,
        len: 2,
    };
    let diags = qmkp_lint::check_registers(&[&a, &b], 5);
    assert!(diags.iter().any(|d| d.code == "register-aliasing"));
}
