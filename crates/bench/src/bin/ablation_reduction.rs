//! Ablation: classical graph reduction before qMKP (the paper's
//! "Orthogonality" section). Reports oracle width and gate cost with and
//! without core-truss co-pruning, plus the verified agreement of results.

use qmkp_bench::{print_table, Provenance};
use qmkp_core::{qmkp, Oracle, QmkpConfig};
use qmkp_graph::gen::{paper_gate_dataset, planted_kplex, GATE_DATASETS};
use qmkp_graph::reduce::auto_reduce;
use qmkp_graph::Graph;

fn row(label: &str, g: &Graph, k: usize) -> Vec<String> {
    let plain = qmkp(g, k, &QmkpConfig::default());
    let reduced = qmkp(
        g,
        k,
        &QmkpConfig {
            use_reduction: true,
            ..QmkpConfig::default()
        },
    );
    assert_eq!(
        plain.best.len(),
        reduced.best.len(),
        "reduction must preserve the optimum"
    );
    let (red, _) = auto_reduce(g, k);
    let t = plain.best.len().max(1);
    let full_cost = Oracle::new(g, k, t).section_cost().total();
    let sub_cost = if red.kept.len() > 1 {
        let (sub, _) = g.induced(red.kept);
        Oracle::new(&sub, k, t.min(sub.n())).section_cost().total()
    } else {
        0
    };
    vec![
        label.to_string(),
        format!("{}/{}", red.kept.len(), g.n()),
        plain.qubits.to_string(),
        reduced.qubits.to_string(),
        full_cost.to_string(),
        sub_cost.to_string(),
        plain.best.len().to_string(),
    ]
}

fn main() {
    let mut prov = Provenance::start("ablation_reduction");
    prov.config("k", 2);
    for &(n, m) in &GATE_DATASETS {
        prov.config("dataset", format!("G_{{{n},{m}}}"));
    }
    prov.config("planted", "n=10 plex=5 k=2 p=0.5 seed=3");
    let mut rows = Vec::new();
    for &(n, m) in &GATE_DATASETS {
        rows.push(row(&format!("G_{{{n},{m}}}"), &paper_gate_dataset(n, m), 2));
    }
    let (g, _) = planted_kplex(10, 5, 2, 0.5, 3).unwrap();
    rows.push(row("planted(10,5)", &g, 2));
    for r in &rows {
        prov.outcome(format!("kept[{}]", r[0]), &r[1]);
        prov.outcome(format!("max_plex[{}]", r[0]), &r[6]);
    }
    print_table(
        "Ablation — core-truss reduction before qMKP (k = 2)",
        &[
            "instance",
            "kept vertices",
            "qubits (plain)",
            "qubits (reduced)",
            "oracle cost (plain)",
            "oracle cost (reduced)",
            "max 2-plex",
        ],
        &rows,
    );
    prov.finish();
}
