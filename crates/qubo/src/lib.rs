//! # qmkp-qubo — QUBO formulation of the Maximum k-Plex Problem
//!
//! Section IV of the paper: the quadratic unconstrained binary optimization
//! reformulation behind the annealing-based qaMKP algorithm.
//!
//! * [`model`] — a general sparse QUBO model (`F = offset + Σ c_i x_i +
//!   Σ q_{ij} x_i x_j`) with energy evaluation.
//! * [`ising`] — the QUBO ↔ Ising conversion used by hardware-graph
//!   samplers (chain couplings are ferromagnetic Ising terms).
//! * [`mkp`] — the paper's Equation 12 builder: vertex variables `x_i`,
//!   per-vertex slack bits `s_{i,r}` with the paper's parameter choices
//!   `M_i = d_Ḡ(v_i) − k + 1` (clamped at 0) and slack width
//!   `L_i = ⌈log₂(max{d_Ḡ(v_i), k−1} + 1)⌉`, penalty weight `R > 1`,
//!   plus decoding and feasibility repair.
//!
//! Note on `L`: the paper prints `L = ⌈log₂ max{d_Ḡ(v_i), k−1}⌉`, which
//! under-allocates one bit when the maximum slack value is an exact power
//! of two (2 bits cannot represent the value 4). We use the corrected
//! width `⌈log₂(max + 1)⌉`; DESIGN.md records the deviation.

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
pub mod ising;
pub mod mkp;
pub mod model;
pub mod presolve;

pub use ising::IsingModel;
pub use mkp::{MkpQubo, MkpQuboParams};
pub use model::QuboModel;
pub use presolve::{presolve, reduce_model, Presolve};
