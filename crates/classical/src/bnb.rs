//! A branch & bound exact MKP solver.
//!
//! Classic include/exclude search with:
//! * the size bound `|P| + |C| ≤ |best|`,
//! * candidate filtering (a candidate stays only while `P ∪ {u}` remains
//!   a k-plex),
//! * saturation pruning: once a vertex of `P` has used all its `k − 1`
//!   allowed non-neighbours, every future addition must be its neighbour.

use qmkp_graph::{is_kplex, Graph, VertexSet};
use qmkp_rt::{RtContext, RtError};

/// How many expanded nodes pass between context polls on the budgeted
/// path (token read + amortized deadline read each poll).
const CTX_POLL_MASK: u64 = 63;
/// How many expanded nodes pass between external-incumbent polls.
const INCUMBENT_POLL_MASK: u64 = 255;

/// Outcome of a budgeted branch & bound run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BnbOutcome {
    /// The best (maximum, when the search completed) k-plex found.
    pub best: VertexSet,
    /// Search-tree nodes expanded — the effort measure the portfolio's
    /// warm-start tests assert shrinks under a tighter lower bound.
    pub nodes: u64,
}

/// Finds a maximum k-plex by branch & bound.
///
/// # Panics
/// Panics if `k == 0`.
pub fn max_kplex_bnb(g: &Graph, k: usize) -> VertexSet {
    assert!(k >= 1, "k must be ≥ 1");
    bnb_inner(g, k, None, None, None)
        .expect("unbudgeted branch & bound cannot fail")
        .best
}

/// Budgeted/cancellable branch & bound with warm-start hooks.
///
/// * `lower_bound` — an externally supplied incumbent (e.g. a GRASP or
///   SQA solution). It is *verified* before being trusted: an invalid or
///   smaller set is ignored, a larger verified one prunes the search
///   from node one.
/// * `incumbent` — polled every 256 nodes for a better incumbent
///   published by a concurrently running solver; each adopted set is
///   verified the same way.
///
/// The context is polled every 64 nodes, and the
/// `classical.bnb.node` failpoint fires per expanded node under the
/// `failpoints` feature. Returns a structured [`RtError`] on budget
/// exhaustion, cancellation, or an injected fault.
///
/// # Panics
/// Panics if `k == 0`.
pub fn max_kplex_bnb_ctx(
    g: &Graph,
    k: usize,
    ctx: &RtContext,
    lower_bound: Option<VertexSet>,
    incumbent: Option<&dyn Fn() -> Option<VertexSet>>,
) -> Result<BnbOutcome, RtError> {
    assert!(k >= 1, "k must be ≥ 1");
    bnb_inner(g, k, Some(ctx), lower_bound, incumbent)
}

fn bnb_inner(
    g: &Graph,
    k: usize,
    ctx: Option<&RtContext>,
    lower_bound: Option<VertexSet>,
    incumbent: Option<&dyn Fn() -> Option<VertexSet>>,
) -> Result<BnbOutcome, RtError> {
    let span = qmkp_obs::span("classical.bnb.run");
    let mut nodes = 0u64;
    let mut best = qmkp_graph::reduce::greedy_lower_bound(g, k);
    if let Some(lb) = lower_bound {
        // Trust nothing from outside the search: verify before pruning
        // on it.
        if lb.len() > best.len() && is_kplex(g, lb, k) {
            best = lb;
        }
    }
    let mut stack = vec![(VertexSet::EMPTY, g.vertices())];
    while let Some((p, c)) = stack.pop() {
        nodes += 1;
        if let Some(ctx) = ctx {
            if let Err(e) = qmkp_rt::failpoint::check("classical.bnb.node").and_then(|()| {
                if nodes & CTX_POLL_MASK == 0 {
                    ctx.check()
                } else {
                    Ok(())
                }
            }) {
                qmkp_obs::counter("classical.bnb.nodes", nodes);
                span.finish();
                return Err(e);
            }
        }
        if incumbent.is_some() && nodes & INCUMBENT_POLL_MASK == 0 {
            if let Some(found) = incumbent.and_then(|poll| poll()) {
                if found.len() > best.len() && is_kplex(g, found, k) {
                    best = found;
                }
            }
        }
        if p.len() > best.len() {
            best = p;
        }
        if p.len() + c.len() <= best.len() || c.is_empty() {
            continue;
        }
        // Branch on the candidate with the highest degree inside P ∪ C.
        let scope = p | c;
        let v = c
            .iter()
            .max_by_key(|&u| g.degree_in(u, scope))
            .expect("candidates non-empty");

        // Exclude branch.
        stack.push((p, c.without(v)));

        // Include branch: filter candidates against the grown plex.
        let p2 = p.with(v);
        let mut c2 = VertexSet::EMPTY;
        for u in c.without(v).iter() {
            if is_kplex(g, p2.with(u), k) {
                c2.insert(u);
            }
        }
        // Saturation pruning: a member that already misses k−1 neighbours
        // inside P forces every future addition to be its neighbour.
        // (Missing count is |P|−1−deg; nothing can be saturated while
        // |P| ≤ k.)
        for w in p2.iter() {
            if p2.len() - 1 - g.degree_in(w, p2) >= k - 1 {
                c2 &= g.neighbors(w);
            }
        }
        stack.push((p2, c2));
    }
    qmkp_obs::counter("classical.bnb.nodes", nodes);
    span.finish();
    Ok(BnbOutcome { best, nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::max_kplex_naive;
    use qmkp_graph::gen::{gnm, paper_fig1_graph, planted_kplex};

    #[test]
    fn matches_naive_on_fig1() {
        let g = paper_fig1_graph();
        for k in 1..=3 {
            assert_eq!(max_kplex_bnb(&g, k).len(), max_kplex_naive(&g, k).len());
        }
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..8 {
            let g = gnm(9, 14, seed).unwrap();
            for k in 1..=3 {
                let bnb = max_kplex_bnb(&g, k);
                assert!(is_kplex(&g, bnb, k));
                assert_eq!(bnb.len(), max_kplex_naive(&g, k).len(), "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn recovers_planted_solutions() {
        let (g, plant) = planted_kplex(16, 8, 2, 0.2, 5).unwrap();
        let found = max_kplex_bnb(&g, 2);
        assert!(found.len() >= plant.len());
        assert!(is_kplex(&g, found, 2));
    }

    #[test]
    fn verified_lower_bound_strictly_reduces_node_count() {
        let g = gnm(16, 40, 2).unwrap();
        let ctx = qmkp_rt::RtContext::unlimited();
        let cold = max_kplex_bnb_ctx(&g, 2, &ctx, None, None).unwrap();
        // Hand the optimum back in as the injected bound: same answer
        // size, strictly fewer expanded nodes.
        let warm = max_kplex_bnb_ctx(&g, 2, &ctx, Some(cold.best), None).unwrap();
        assert_eq!(warm.best.len(), cold.best.len());
        assert!(
            warm.nodes < cold.nodes,
            "warm {} !< cold {}",
            warm.nodes,
            cold.nodes
        );
    }

    #[test]
    fn invalid_lower_bound_is_ignored() {
        let g = paper_fig1_graph();
        let ctx = qmkp_rt::RtContext::unlimited();
        // The full vertex set is not a 2-plex of fig-1; an unverified
        // adoption would corrupt the answer.
        let out = max_kplex_bnb_ctx(&g, 2, &ctx, Some(g.vertices()), None).unwrap();
        assert_eq!(out.best.len(), max_kplex_naive(&g, 2).len());
        assert!(is_kplex(&g, out.best, 2));
    }

    #[test]
    fn polled_incumbent_is_adopted_when_verified() {
        let g = gnm(16, 40, 2).unwrap();
        let ctx = qmkp_rt::RtContext::unlimited();
        let cold = max_kplex_bnb_ctx(&g, 2, &ctx, None, None).unwrap();
        let feed = cold.best;
        let poll = move || Some(feed);
        let warm = max_kplex_bnb_ctx(&g, 2, &ctx, None, Some(&poll)).unwrap();
        assert_eq!(warm.best.len(), cold.best.len());
        assert!(
            warm.nodes <= cold.nodes,
            "adopting the optimum cannot cost nodes"
        );
    }

    #[test]
    fn cancellation_surfaces_structurally() {
        let g = gnm(14, 40, 3).unwrap();
        let token = qmkp_rt::CancelToken::new();
        token.cancel();
        let ctx = qmkp_rt::RtContext::new(qmkp_rt::Budget::unlimited(), token);
        assert_eq!(
            max_kplex_bnb_ctx(&g, 2, &ctx, None, None),
            Err(qmkp_rt::RtError::Cancelled)
        );
    }

    #[test]
    fn handles_edge_cases() {
        let g = Graph::new(1).unwrap();
        assert_eq!(max_kplex_bnb(&g, 1).len(), 1);
        let g = Graph::complete(6).unwrap();
        assert_eq!(max_kplex_bnb(&g, 1).len(), 6);
        let g = Graph::new(5).unwrap();
        assert_eq!(max_kplex_bnb(&g, 4).len(), 4);
    }
}
