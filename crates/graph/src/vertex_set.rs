//! Compact vertex sets over at most 128 vertices.
//!
//! The quantum algorithms in this workspace represent a candidate subgraph
//! as a basis state of `n` vertex qubits — i.e. an `n`-bit string. The
//! classical side mirrors that encoding: a [`VertexSet`] is a `u128`
//! bitmask where bit `i` set means vertex `i` is in the set. All set
//! algebra used by the solvers (intersection with neighbourhoods, popcount
//! for degrees, subset iteration) compiles down to a handful of word ops.

use std::fmt;
use std::ops::{
    BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not, Sub, SubAssign,
};

/// Maximum number of vertices representable by [`VertexSet`].
pub const MAX_VERTICES: usize = 128;

/// A set of vertices, stored as a 128-bit mask (bit `i` ⇔ vertex `i`).
///
/// The `Ord` implementation orders sets by their mask value, which matches
/// the integer value of the corresponding quantum basis state when vertex 0
/// is the least-significant bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VertexSet(pub u128);

impl VertexSet {
    /// The empty set.
    pub const EMPTY: VertexSet = VertexSet(0);

    /// Creates an empty set.
    #[inline]
    pub const fn new() -> Self {
        VertexSet(0)
    }

    /// Creates a set containing a single vertex.
    #[inline]
    pub const fn singleton(v: usize) -> Self {
        VertexSet(1u128 << v)
    }

    /// Creates the full set `{0, 1, …, n-1}`.
    ///
    /// # Panics
    /// Panics if `n > 128`.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(
            n <= MAX_VERTICES,
            "VertexSet supports at most {MAX_VERTICES} vertices"
        );
        if n == MAX_VERTICES {
            VertexSet(u128::MAX)
        } else {
            VertexSet((1u128 << n) - 1)
        }
    }

    /// Creates a set from an iterator of vertex indices.
    #[allow(clippy::should_implement_trait)] // inherent for ergonomics; callers use VertexSet::from_iter directly
    pub fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = VertexSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Interprets the low `n` bits of `bits` as a vertex set
    /// (bit `i` ⇔ vertex `i`), matching the quantum basis-state encoding.
    #[inline]
    pub const fn from_bits(bits: u128) -> Self {
        VertexSet(bits)
    }

    /// The raw bitmask.
    #[inline]
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Number of vertices in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether vertex `v` is in the set.
    #[inline]
    pub const fn contains(self, v: usize) -> bool {
        (self.0 >> v) & 1 == 1
    }

    /// Inserts vertex `v`.
    #[inline]
    pub fn insert(&mut self, v: usize) {
        debug_assert!(v < MAX_VERTICES);
        self.0 |= 1u128 << v;
    }

    /// Removes vertex `v`.
    #[inline]
    pub fn remove(&mut self, v: usize) {
        self.0 &= !(1u128 << v);
    }

    /// Returns a copy with vertex `v` inserted.
    #[inline]
    pub const fn with(self, v: usize) -> Self {
        VertexSet(self.0 | (1u128 << v))
    }

    /// Returns a copy with vertex `v` removed.
    #[inline]
    pub const fn without(self, v: usize) -> Self {
        VertexSet(self.0 & !(1u128 << v))
    }

    /// Whether `self` is a subset of `other`.
    #[inline]
    pub const fn is_subset_of(self, other: VertexSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether the two sets share no vertices.
    #[inline]
    pub const fn is_disjoint(self, other: VertexSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: VertexSet) -> VertexSet {
        VertexSet(self.0 & other.0)
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: VertexSet) -> VertexSet {
        VertexSet(self.0 | other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(self, other: VertexSet) -> VertexSet {
        VertexSet(self.0 & !other.0)
    }

    /// The lowest-indexed vertex, if any.
    #[inline]
    pub fn min_vertex(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// The highest-indexed vertex, if any.
    #[inline]
    pub fn max_vertex(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(127 - self.0.leading_zeros() as usize)
        }
    }

    /// Iterates over the vertex indices in ascending order.
    #[inline]
    pub fn iter(self) -> VertexIter {
        VertexIter(self.0)
    }

    /// Removes and returns the lowest-indexed vertex, if any.
    #[inline]
    pub fn pop_min(&mut self) -> Option<usize> {
        let v = self.min_vertex()?;
        self.remove(v);
        Some(v)
    }
}

impl fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the vertices of a [`VertexSet`], ascending.
#[derive(Clone)]
pub struct VertexIter(u128);

impl Iterator for VertexIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let v = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(v)
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let c = self.0.count_ones() as usize;
        (c, Some(c))
    }
}

impl ExactSizeIterator for VertexIter {}

impl IntoIterator for VertexSet {
    type Item = usize;
    type IntoIter = VertexIter;

    fn into_iter(self) -> VertexIter {
        self.iter()
    }
}

impl FromIterator<usize> for VertexSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        VertexSet::from_iter(iter)
    }
}

impl BitAnd for VertexSet {
    type Output = VertexSet;
    fn bitand(self, rhs: Self) -> Self {
        self.intersection(rhs)
    }
}

impl BitOr for VertexSet {
    type Output = VertexSet;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl BitXor for VertexSet {
    type Output = VertexSet;
    fn bitxor(self, rhs: Self) -> Self {
        VertexSet(self.0 ^ rhs.0)
    }
}

impl Sub for VertexSet {
    type Output = VertexSet;
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl Not for VertexSet {
    type Output = VertexSet;
    fn not(self) -> Self {
        VertexSet(!self.0)
    }
}

impl BitAndAssign for VertexSet {
    fn bitand_assign(&mut self, rhs: Self) {
        self.0 &= rhs.0;
    }
}

impl BitOrAssign for VertexSet {
    fn bitor_assign(&mut self, rhs: Self) {
        self.0 |= rhs.0;
    }
}

impl BitXorAssign for VertexSet {
    fn bitxor_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl SubAssign for VertexSet {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 &= !rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert!(VertexSet::EMPTY.is_empty());
        assert_eq!(VertexSet::EMPTY.len(), 0);
        let s = VertexSet::singleton(5);
        assert_eq!(s.len(), 1);
        assert!(s.contains(5));
        assert!(!s.contains(4));
    }

    #[test]
    fn full_sets() {
        assert_eq!(VertexSet::full(0), VertexSet::EMPTY);
        assert_eq!(VertexSet::full(6).len(), 6);
        assert_eq!(VertexSet::full(128).len(), 128);
        assert!(VertexSet::full(128).contains(127));
    }

    #[test]
    #[should_panic]
    fn full_over_128_panics() {
        let _ = VertexSet::full(129);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = VertexSet::new();
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(127);
        assert_eq!(s.len(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
        // Removing a vertex that is not present is a no-op.
        s.remove(63);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn with_without_are_pure() {
        let s = VertexSet::singleton(2);
        let t = s.with(7);
        assert!(!s.contains(7));
        assert!(t.contains(7));
        assert_eq!(t.without(7), s);
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_iter([0, 1, 2, 3]);
        let b = VertexSet::from_iter([2, 3, 4, 5]);
        assert_eq!(a & b, VertexSet::from_iter([2, 3]));
        assert_eq!(a | b, VertexSet::from_iter([0, 1, 2, 3, 4, 5]));
        assert_eq!(a - b, VertexSet::from_iter([0, 1]));
        assert_eq!(a ^ b, VertexSet::from_iter([0, 1, 4, 5]));
        assert!(VertexSet::from_iter([2, 3]).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(a.is_disjoint(VertexSet::from_iter([6, 7])));
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn min_max_and_iteration_order() {
        let s = VertexSet::from_iter([9, 3, 120, 44]);
        assert_eq!(s.min_vertex(), Some(3));
        assert_eq!(s.max_vertex(), Some(120));
        let vs: Vec<usize> = s.iter().collect();
        assert_eq!(vs, vec![3, 9, 44, 120]);
        assert_eq!(VertexSet::EMPTY.min_vertex(), None);
        assert_eq!(VertexSet::EMPTY.max_vertex(), None);
    }

    #[test]
    fn pop_min_drains_in_order() {
        let mut s = VertexSet::from_iter([5, 1, 9]);
        assert_eq!(s.pop_min(), Some(1));
        assert_eq!(s.pop_min(), Some(5));
        assert_eq!(s.pop_min(), Some(9));
        assert_eq!(s.pop_min(), None);
    }

    #[test]
    fn iterator_size_hint_is_exact() {
        let s = VertexSet::from_iter([1, 2, 3, 100]);
        let it = s.iter();
        assert_eq!(it.size_hint(), (4, Some(4)));
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn bits_match_basis_state_encoding() {
        // {v0, v3} ⇔ binary …01001 ⇔ integer 9.
        let s = VertexSet::from_iter([0, 3]);
        assert_eq!(s.bits(), 0b1001);
        assert_eq!(VertexSet::from_bits(0b1001), s);
    }

    #[test]
    fn debug_formatting() {
        let s = VertexSet::from_iter([1, 4]);
        assert_eq!(format!("{s:?}"), "{1, 4}");
        assert_eq!(format!("{s}"), "{1, 4}");
        assert_eq!(format!("{:?}", VertexSet::EMPTY), "{}");
    }

    #[test]
    fn ordering_matches_mask_value() {
        assert!(VertexSet::from_bits(3) < VertexSet::from_bits(4));
    }
}
