//! The paper's integer comparison circuit (Figure 10, Equations 6-7).
//!
//! Comparison proceeds lexicographically from the most significant bit:
//!
//! ```text
//! x ≤ y  ⇔  (x_1 < y_1)
//!         ∨ (x_1 = y_1)(x_2 < y_2)
//!         ∨ …
//!         ∨ (x_1 = y_1)(x_2 = y_2)…(x_s = y_s)
//! ```
//!
//! with one-bit primitives `x_i < y_i ⇔ ¬x_i ∧ y_i` and
//! `x_i = y_i ⇔ ¬x_i ⊕ y_i` (box A and box B of Figure 10). The
//! disjuncts are mutually exclusive, so the final OR (box D) is realized
//! as an XOR chain onto the result qubit.
//!
//! All scratch wires end dirty; the oracle restores them with `U†`.

use qmkp_qsim::{Circuit, Control, Gate, QubitAllocator, Register};

/// Scratch registers for one `s`-bit comparison: `3s` ancillas.
#[derive(Debug, Clone)]
pub struct ComparatorScratch {
    /// `lt[i] = (x_i < y_i)` after the circuit.
    pub lt: Register,
    /// `eq[i] = (x_i = y_i)` after the circuit.
    pub eq: Register,
    /// `prefix[i] = ∧_{j ≥ i} eq[j]` (equality of all bits from `i` up).
    pub prefix: Register,
}

impl ComparatorScratch {
    /// Allocates scratch for comparing `s`-bit values.
    pub fn alloc(alloc: &mut QubitAllocator, s: usize) -> Self {
        ComparatorScratch {
            lt: alloc.alloc("cmp_lt", s),
            eq: alloc.alloc("cmp_eq", s),
            prefix: alloc.alloc("cmp_prefix", s),
        }
    }
}

/// Emits `lt[i] = ¬x_i ∧ y_i` and `eq[i] = ¬(x_i ⊕ y_i)` for every bit
/// (boxes A and B of Figure 10).
fn bitwise_lt_eq(circuit: &mut Circuit, x: &Register, y: &Register, scratch: &ComparatorScratch) {
    for i in 0..x.len {
        circuit.push_unchecked(Gate::Mcx {
            controls: vec![Control::neg(x.qubit(i)), Control::pos(y.qubit(i))],
            target: scratch.lt.qubit(i),
        });
        // eq_i = 1 ⊕ x_i ⊕ y_i
        circuit.push_unchecked(Gate::X(scratch.eq.qubit(i)));
        circuit.push_unchecked(Gate::cnot(x.qubit(i), scratch.eq.qubit(i)));
        circuit.push_unchecked(Gate::cnot(y.qubit(i), scratch.eq.qubit(i)));
    }
}

/// Emits `lt[i]` / `eq[i]` against a classical constant `c` (no `y`
/// register needed): `lt_i = ¬x_i` when `c_i = 1` (else stays 0),
/// `eq_i = x_i` when `c_i = 1`, `¬x_i` when `c_i = 0`.
fn bitwise_lt_eq_const(circuit: &mut Circuit, x: &Register, c: u128, scratch: &ComparatorScratch) {
    for i in 0..x.len {
        let bit = (c >> i) & 1;
        if bit == 1 {
            circuit.push_unchecked(Gate::Mcx {
                controls: vec![Control::neg(x.qubit(i))],
                target: scratch.lt.qubit(i),
            });
            circuit.push_unchecked(Gate::cnot(x.qubit(i), scratch.eq.qubit(i)));
        } else {
            circuit.push_unchecked(Gate::Mcx {
                controls: vec![Control::neg(x.qubit(i))],
                target: scratch.eq.qubit(i),
            });
        }
    }
}

/// Emits the running equality prefix: `prefix[i] = ∧_{j ≥ i} eq[j]`,
/// computed MSB-down (box C of Figure 10).
fn equality_prefix(circuit: &mut Circuit, scratch: &ComparatorScratch) {
    let s = scratch.eq.len;
    circuit.push_unchecked(Gate::cnot(
        scratch.eq.qubit(s - 1),
        scratch.prefix.qubit(s - 1),
    ));
    for i in (0..s - 1).rev() {
        circuit.push_unchecked(Gate::ccnot(
            scratch.prefix.qubit(i + 1),
            scratch.eq.qubit(i),
            scratch.prefix.qubit(i),
        ));
    }
}

/// Emits the XOR chain of the mutually-exclusive disjuncts onto `result`
/// (box D). With `include_equal`, the all-equal term is added (`≤` instead
/// of `<`).
fn combine_terms(
    circuit: &mut Circuit,
    scratch: &ComparatorScratch,
    result: usize,
    include_equal: bool,
) {
    let s = scratch.lt.len;
    // MSB term: lt[s-1] alone.
    circuit.push_unchecked(Gate::cnot(scratch.lt.qubit(s - 1), result));
    // Lower terms: prefix[i+1] ∧ lt[i].
    for i in (0..s - 1).rev() {
        circuit.push_unchecked(Gate::ccnot(
            scratch.prefix.qubit(i + 1),
            scratch.lt.qubit(i),
            result,
        ));
    }
    if include_equal {
        circuit.push_unchecked(Gate::cnot(scratch.prefix.qubit(0), result));
    }
}

/// Appends `result ^= (x ≤ y)` for two `s`-bit registers.
///
/// # Panics
/// Panics if widths disagree or `s = 0`.
pub fn compare_le(
    circuit: &mut Circuit,
    x: &Register,
    y: &Register,
    result: usize,
    scratch: &ComparatorScratch,
) {
    check_widths(x.len, y.len, scratch);
    bitwise_lt_eq(circuit, x, y, scratch);
    equality_prefix(circuit, scratch);
    combine_terms(circuit, scratch, result, true);
}

/// Appends `result ^= (x < y)` for two `s`-bit registers.
///
/// # Panics
/// Panics if widths disagree or `s = 0`.
pub fn compare_lt(
    circuit: &mut Circuit,
    x: &Register,
    y: &Register,
    result: usize,
    scratch: &ComparatorScratch,
) {
    check_widths(x.len, y.len, scratch);
    bitwise_lt_eq(circuit, x, y, scratch);
    equality_prefix(circuit, scratch);
    combine_terms(circuit, scratch, result, false);
}

/// Appends `result ^= (x = y)` for two `s`-bit registers.
///
/// # Panics
/// Panics if widths disagree or `s = 0`.
pub fn compare_eq(
    circuit: &mut Circuit,
    x: &Register,
    y: &Register,
    result: usize,
    scratch: &ComparatorScratch,
) {
    check_widths(x.len, y.len, scratch);
    bitwise_lt_eq(circuit, x, y, scratch);
    equality_prefix(circuit, scratch);
    circuit.push_unchecked(Gate::cnot(scratch.prefix.qubit(0), result));
}

/// Appends `result ^= (x ≤ c)` for an `s`-bit register against a classical
/// constant — the form the oracle uses for the thresholds `k-1` and `T`
/// when qubit budget matters. (The paper instead loads the constant into a
/// register; [`crate::counter::load_const`] + [`compare_le`] reproduces
/// that layout.)
///
/// # Panics
/// Panics if `c` does not fit in `x.len` bits or `s = 0`.
pub fn compare_le_const(
    circuit: &mut Circuit,
    x: &Register,
    c: u128,
    result: usize,
    scratch: &ComparatorScratch,
) {
    check_widths(x.len, x.len, scratch);
    assert!(
        x.len >= 128 || c < (1u128 << x.len),
        "constant {c} does not fit in {} bits",
        x.len
    );
    bitwise_lt_eq_const(circuit, x, c, scratch);
    equality_prefix(circuit, scratch);
    combine_terms(circuit, scratch, result, true);
}

/// Appends `result ^= (x ≤ y)` and then *uncomputes* the scratch registers,
/// leaving only the result bit changed. This lets the oracle reuse a single
/// scratch block across all `n` per-vertex comparisons (compute-copy-
/// uncompute), halving its qubit footprint at the cost of ~2x the gates.
///
/// # Panics
/// Panics if widths disagree or `s = 0`.
pub fn compare_le_clean(
    circuit: &mut Circuit,
    x: &Register,
    y: &Register,
    result: usize,
    scratch: &ComparatorScratch,
) {
    check_widths(x.len, y.len, scratch);
    let mut compute = Circuit::new(circuit.width());
    bitwise_lt_eq(&mut compute, x, y, scratch);
    equality_prefix(&mut compute, scratch);
    circuit
        .extend(&compute)
        .expect("same width by construction");
    combine_terms(circuit, scratch, result, true);
    circuit
        .extend(&compute.inverse())
        .expect("same width by construction");
}

/// Constant-operand variant of [`compare_le_clean`]: `result ^= (x ≤ c)`,
/// scratch restored to `|0…0⟩`.
///
/// # Panics
/// Panics if `c` does not fit in `x.len` bits or `s = 0`.
pub fn compare_le_const_clean(
    circuit: &mut Circuit,
    x: &Register,
    c: u128,
    result: usize,
    scratch: &ComparatorScratch,
) {
    check_widths(x.len, x.len, scratch);
    assert!(
        x.len >= 128 || c < (1u128 << x.len),
        "constant {c} does not fit in {} bits",
        x.len
    );
    let mut compute = Circuit::new(circuit.width());
    bitwise_lt_eq_const(&mut compute, x, c, scratch);
    equality_prefix(&mut compute, scratch);
    circuit
        .extend(&compute)
        .expect("same width by construction");
    combine_terms(circuit, scratch, result, true);
    circuit
        .extend(&compute.inverse())
        .expect("same width by construction");
}

fn check_widths(xs: usize, ys: usize, scratch: &ComparatorScratch) {
    assert!(xs > 0, "cannot compare zero-width registers");
    assert_eq!(xs, ys, "operand registers must have equal width");
    assert_eq!(scratch.lt.len, xs, "lt scratch width mismatch");
    assert_eq!(scratch.eq.len, xs, "eq scratch width mismatch");
    assert_eq!(scratch.prefix.len, xs, "prefix scratch width mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::classical_eval;

    type Built = (Circuit, Register, Register, usize);

    fn build(
        s: usize,
        f: impl Fn(&mut Circuit, &Register, &Register, usize, &ComparatorScratch),
    ) -> Built {
        let mut alloc = QubitAllocator::new();
        let x = alloc.alloc("x", s);
        let y = alloc.alloc("y", s);
        let result = alloc.alloc_one("r");
        let scratch = ComparatorScratch::alloc(&mut alloc, s);
        let mut circ = Circuit::new(alloc.width());
        f(&mut circ, &x, &y, result, &scratch);
        (circ, x, y, result)
    }

    fn check_exhaustive(s: usize, built: &Built, pred: impl Fn(u128, u128) -> bool) {
        let (circ, x, y, result) = built;
        for a in 0..(1u128 << s) {
            for b in 0..(1u128 << s) {
                let input = (a << x.start) | (b << y.start);
                let out = classical_eval(circ, input);
                let r = (out >> result) & 1;
                assert_eq!(r == 1, pred(a, b), "a={a} b={b}");
                // Operands preserved.
                assert_eq!(x.extract(out), a);
                assert_eq!(y.extract(out), b);
            }
        }
    }

    #[test]
    fn le_exhaustive() {
        for s in 1..=4 {
            let built = build(s, compare_le);
            check_exhaustive(s, &built, |a, b| a <= b);
        }
    }

    #[test]
    fn lt_exhaustive() {
        for s in 1..=4 {
            let built = build(s, compare_lt);
            check_exhaustive(s, &built, |a, b| a < b);
        }
    }

    #[test]
    fn eq_exhaustive() {
        for s in 1..=4 {
            let built = build(s, compare_eq);
            check_exhaustive(s, &built, |a, b| a == b);
        }
    }

    #[test]
    fn le_const_exhaustive() {
        for s in 1..=4usize {
            for c in 0..(1u128 << s) {
                let mut alloc = QubitAllocator::new();
                let x = alloc.alloc("x", s);
                let result = alloc.alloc_one("r");
                let scratch = ComparatorScratch::alloc(&mut alloc, s);
                let mut circ = Circuit::new(alloc.width());
                compare_le_const(&mut circ, &x, c, result, &scratch);
                for a in 0..(1u128 << s) {
                    let out = classical_eval(&circ, a << x.start);
                    assert_eq!((out >> result) & 1 == 1, a <= c, "a={a} c={c} s={s}");
                    assert_eq!(x.extract(out), a);
                }
            }
        }
    }

    #[test]
    fn result_is_xored_not_set() {
        // With the result qubit preloaded to 1, a true comparison flips it
        // to 0 — the phase-kickback convention requires XOR semantics.
        let (circ, x, y, result) = build(2, compare_le);
        let input = (1u128 << x.start) | (2u128 << y.start) | (1u128 << result);
        let out = classical_eval(&circ, input);
        assert_eq!((out >> result) & 1, 0, "1 ≤ 2 flips the preloaded 1");
    }

    #[test]
    fn inverse_restores_everything() {
        let (circ, x, y, _) = build(3, compare_le);
        let inv = circ.inverse();
        for a in 0..8u128 {
            for b in 0..8u128 {
                let input = (a << x.start) | (b << y.start);
                assert_eq!(classical_eval(&inv, classical_eval(&circ, input)), input);
            }
        }
    }

    #[test]
    fn gate_count_is_linear() {
        // O(s) gates per the paper's complexity analysis.
        let (c3, ..) = build(3, compare_le);
        let (c6, ..) = build(6, compare_le);
        assert!(c6.len() <= 2 * c3.len() + 4, "{} vs {}", c6.len(), c3.len());
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn width_mismatch_panics() {
        let mut alloc = QubitAllocator::new();
        let x = alloc.alloc("x", 3);
        let y = alloc.alloc("y", 2);
        let r = alloc.alloc_one("r");
        let scratch = ComparatorScratch::alloc(&mut alloc, 3);
        let mut circ = Circuit::new(alloc.width());
        compare_le(&mut circ, &x, &y, r, &scratch);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn const_too_wide_panics() {
        let mut alloc = QubitAllocator::new();
        let x = alloc.alloc("x", 2);
        let r = alloc.alloc_one("r");
        let scratch = ComparatorScratch::alloc(&mut alloc, 2);
        let mut circ = Circuit::new(alloc.width());
        compare_le_const(&mut circ, &x, 4, r, &scratch);
    }

    #[test]
    fn clean_le_restores_scratch() {
        let mut alloc = QubitAllocator::new();
        let x = alloc.alloc("x", 3);
        let y = alloc.alloc("y", 3);
        let result = alloc.alloc_one("r");
        let scratch = ComparatorScratch::alloc(&mut alloc, 3);
        let mut circ = Circuit::new(alloc.width());
        compare_le_clean(&mut circ, &x, &y, result, &scratch);
        for a in 0..8u128 {
            for b in 0..8u128 {
                let input = (a << x.start) | (b << y.start);
                let out = classical_eval(&circ, input);
                assert_eq!((out >> result) & 1 == 1, a <= b, "a={a} b={b}");
                // Everything except the result bit is restored.
                assert_eq!(out & !(1 << result), input);
            }
        }
    }

    #[test]
    fn clean_le_const_restores_scratch() {
        for c in 0..8u128 {
            let mut alloc = QubitAllocator::new();
            let x = alloc.alloc("x", 3);
            let result = alloc.alloc_one("r");
            let scratch = ComparatorScratch::alloc(&mut alloc, 3);
            let mut circ = Circuit::new(alloc.width());
            compare_le_const_clean(&mut circ, &x, c, result, &scratch);
            for a in 0..8u128 {
                let input = a << x.start;
                let out = classical_eval(&circ, input);
                assert_eq!((out >> result) & 1 == 1, a <= c, "a={a} c={c}");
                assert_eq!(out & !(1 << result), input);
            }
        }
    }

    #[test]
    fn clean_scratch_is_reusable_across_comparisons() {
        // Two comparisons sharing one scratch block must both be correct.
        let mut alloc = QubitAllocator::new();
        let x = alloc.alloc("x", 2);
        let y = alloc.alloc("y", 2);
        let r1 = alloc.alloc_one("r1");
        let r2 = alloc.alloc_one("r2");
        let scratch = ComparatorScratch::alloc(&mut alloc, 2);
        let mut circ = Circuit::new(alloc.width());
        compare_le_const_clean(&mut circ, &x, 2, r1, &scratch);
        compare_le_clean(&mut circ, &x, &y, r2, &scratch);
        for a in 0..4u128 {
            for b in 0..4u128 {
                let input = (a << x.start) | (b << y.start);
                let out = classical_eval(&circ, input);
                assert_eq!((out >> r1) & 1 == 1, a <= 2);
                assert_eq!((out >> r2) & 1 == 1, a <= b);
            }
        }
    }
}
