//! Flamegraph exporter: folds a `qmkp-obs` JSONL trace (written by
//! `QMKP_OBS_JSON=<path>` / [`qmkp_obs::JsonlSink`]) into the
//! collapsed-stack format that `flamegraph.pl`, `inferno` and
//! `speedscope` all consume:
//!
//! ```text
//! thread-1;solve.run;core.qmkp;qsim.kernel.layer 1234
//! ```
//!
//! One line per distinct stack, frames root-first separated by `;`, the
//! weight in integer **microseconds** of *self time* — a span's duration
//! minus the durations of its closed children and of the observations
//! attributed inside it, so the folded weights sum to wall time instead
//! of double-counting nested work. Each thread gets its own synthetic
//! `thread-<id>` root frame, keeping per-thread timelines separable in
//! the rendered graph.
//!
//! Spans nest via the wire `parent` ids; bare `duration` observations
//! (e.g. `qsim.kernel.layer` from the DAG-scheduled runner) become leaf
//! frames under the innermost span open on their thread. Spans never
//! closed in the trace (a crashed or truncated run) carry no duration
//! and are counted, not folded.
//!
//! ```text
//! cargo run -p qmkp-bench --bin flamegraph -- trace.jsonl [--out trace.folded]
//! ```

use qmkp_obs::json::{self, Json};
use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;

/// What one fold did, for the summary line and the tests.
#[derive(Debug, Default, PartialEq)]
struct FoldStats {
    /// Distinct stacks in the output (lines).
    stacks: usize,
    /// Closed spans folded in.
    spans: usize,
    /// Bare duration observations folded in.
    observations: usize,
    /// Spans opened but never closed (dropped: no duration known).
    unclosed: usize,
    /// Lines that were not valid obs events (skipped, reported).
    skipped: usize,
    /// Total self-time nanoseconds folded in.
    total_ns: u128,
}

/// A span that has started but not yet ended.
struct OpenSpan {
    name: String,
    parent: u64,
    /// Nanoseconds already attributed to closed children and inner
    /// observations, subtracted from this span's own weight at close.
    child_ns: u64,
}

fn field_u64(obj: &Json, name: &str) -> Option<u64> {
    obj.get(name).and_then(Json::as_f64).map(|v| v as u64)
}

fn field_str<'a>(obj: &'a Json, name: &str) -> Option<&'a str> {
    obj.get(name).and_then(Json::as_str)
}

/// Root-first frame path for the innermost open span `id`, walking the
/// parent chain through the still-open spans (children always close
/// before their parents, so every ancestor of an open span is open).
fn stack_of(open: &HashMap<u64, OpenSpan>, thread: u64, mut id: u64) -> String {
    let mut frames: Vec<&str> = Vec::new();
    while id != 0 {
        let Some(span) = open.get(&id) else { break };
        frames.push(&span.name);
        id = span.parent;
    }
    frames.push("");
    let mut path = format!("thread-{thread}");
    for frame in frames.iter().rev() {
        if !frame.is_empty() {
            path.push(';');
            path.push_str(frame);
        }
    }
    path
}

/// Folds one JSONL trace into collapsed-stack text.
fn fold(input: &str) -> (String, FoldStats) {
    let mut stats = FoldStats::default();
    // Open span id → its frame data.
    let mut open: HashMap<u64, OpenSpan> = HashMap::new();
    // Innermost open span per thread (a stack of ids).
    let mut tops: HashMap<u64, Vec<u64>> = HashMap::new();
    // Collapsed stack → accumulated self-time ns.
    let mut weights: HashMap<String, u128> = HashMap::new();

    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(obj) = json::parse(line) else {
            stats.skipped += 1;
            continue;
        };
        let (Some(kind), Some(thread)) = (field_str(&obj, "type"), field_u64(&obj, "thread"))
        else {
            stats.skipped += 1;
            continue;
        };
        match kind {
            "span_start" => {
                let (Some(id), Some(name)) = (field_u64(&obj, "id"), field_str(&obj, "name"))
                else {
                    stats.skipped += 1;
                    continue;
                };
                let parent = field_u64(&obj, "parent").unwrap_or(0);
                open.insert(
                    id,
                    OpenSpan {
                        name: name.to_string(),
                        parent,
                        child_ns: 0,
                    },
                );
                tops.entry(thread).or_default().push(id);
            }
            "span_end" => {
                let (Some(id), Some(ns)) = (field_u64(&obj, "id"), field_u64(&obj, "ns")) else {
                    stats.skipped += 1;
                    continue;
                };
                let path = stack_of(&open, thread, id);
                let Some(span) = open.remove(&id) else {
                    // Unmatched end: fold it as a root under its thread
                    // using the end event's own name, zero child time.
                    let name = field_str(&obj, "name").unwrap_or("?");
                    *weights
                        .entry(format!("thread-{thread};{name}"))
                        .or_insert(0) += ns as u128;
                    stats.total_ns += ns as u128;
                    stats.spans += 1;
                    continue;
                };
                if let Some(stack) = tops.get_mut(&thread) {
                    stack.retain(|&sid| sid != id);
                }
                if let Some(parent) = open.get_mut(&span.parent) {
                    parent.child_ns = parent.child_ns.saturating_add(ns);
                }
                let self_ns = ns.saturating_sub(span.child_ns) as u128;
                *weights.entry(path).or_insert(0) += self_ns;
                stats.total_ns += self_ns;
                stats.spans += 1;
            }
            "duration" => {
                let (Some(name), Some(ns)) = (field_str(&obj, "name"), field_u64(&obj, "ns"))
                else {
                    stats.skipped += 1;
                    continue;
                };
                let top = tops
                    .get(&thread)
                    .and_then(|stack| stack.last().copied())
                    .unwrap_or(0);
                let path = if top == 0 {
                    format!("thread-{thread};{name}")
                } else {
                    if let Some(parent) = open.get_mut(&top) {
                        parent.child_ns = parent.child_ns.saturating_add(ns);
                    }
                    format!("{};{name}", stack_of(&open, thread, top))
                };
                *weights.entry(path).or_insert(0) += ns as u128;
                stats.total_ns += ns as u128;
                stats.observations += 1;
            }
            // Counters, gauges and messages carry no duration: nothing
            // to fold. They are not errors.
            "counter" | "gauge" | "message" => {}
            _ => stats.skipped += 1,
        }
    }
    stats.unclosed = open.len();

    let mut lines: Vec<String> = weights
        .into_iter()
        .map(|(path, ns)| format!("{path} {}", (ns + 500) / 1000))
        .collect();
    lines.sort();
    stats.stacks = lines.len();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    (out, stats)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (input_path, out_path) = match args.as_slice() {
        [input] => (input.clone(), format!("{input}.folded")),
        [input, flag, out] if flag == "--out" => (input.clone(), out.clone()),
        _ => {
            println!("usage: flamegraph <trace.jsonl> [--out <trace.folded>]");
            return ExitCode::FAILURE;
        }
    };
    let input = match fs::read_to_string(&input_path) {
        Ok(s) => s,
        Err(e) => {
            println!("cannot read {input_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (rendered, stats) = fold(&input);
    if let Err(e) = fs::write(&out_path, &rendered) {
        println!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{out_path}: {} stack(s) from {} span(s) + {} observation(s), \
         {:.3} ms self time, {} unclosed, {} skipped",
        stats.stacks,
        stats.spans,
        stats.observations,
        stats.total_ns as f64 / 1e6,
        stats.unclosed,
        stats.skipped
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(events: &[&str]) -> String {
        events.join("\n")
    }

    /// Parses collapsed-stack text back into `(frames, µs)` rows — the
    /// round-trip half of the exporter contract: every line must split
    /// into a non-empty `;`-separated frame path and an integer weight.
    fn parse_collapsed(text: &str) -> Vec<(Vec<String>, u128)> {
        text.lines()
            .map(|line| {
                let (path, weight) = line.rsplit_once(' ').expect("`stack weight` shape");
                let frames: Vec<String> = path.split(';').map(str::to_string).collect();
                assert!(!frames.is_empty());
                assert!(
                    frames.iter().all(|f| !f.is_empty() && !f.contains(' ')),
                    "frames must be non-empty and space-free: {line:?}"
                );
                (frames, weight.parse().expect("integer microseconds"))
            })
            .collect()
    }

    #[test]
    fn nested_spans_fold_to_self_time() {
        let input = lines(&[
            r#"{"type":"span_start","id":1,"parent":0,"thread":3,"name":"outer"}"#,
            r#"{"type":"span_start","id":2,"parent":1,"thread":3,"name":"inner"}"#,
            r#"{"type":"span_end","id":2,"thread":3,"name":"inner","ns":4000}"#,
            r#"{"type":"span_end","id":1,"thread":3,"name":"outer","ns":10000}"#,
        ]);
        let (out, stats) = fold(&input);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.unclosed, 0);
        let rows = parse_collapsed(&out);
        assert_eq!(rows.len(), 2);
        let weight = |frames: &[&str]| {
            rows.iter()
                .find(|(f, _)| f == frames)
                .map(|(_, w)| *w)
                .unwrap_or_else(|| panic!("missing stack {frames:?} in {out:?}"))
        };
        assert_eq!(weight(&["thread-3", "outer", "inner"]), 4);
        // The outer span keeps only its self time: 10 µs − 4 µs inner.
        assert_eq!(weight(&["thread-3", "outer"]), 6);
    }

    #[test]
    fn observations_become_leaf_frames_under_the_open_span() {
        let input = lines(&[
            r#"{"type":"span_start","id":1,"parent":0,"thread":1,"name":"run"}"#,
            r#"{"type":"duration","thread":1,"name":"qsim.kernel.layer","ns":2000}"#,
            r#"{"type":"duration","thread":1,"name":"qsim.kernel.layer","ns":3000}"#,
            r#"{"type":"span_end","id":1,"thread":1,"name":"run","ns":9000}"#,
        ]);
        let (out, stats) = fold(&input);
        assert_eq!(stats.observations, 2);
        let rows = parse_collapsed(&out);
        let layer = rows
            .iter()
            .find(|(f, _)| f == &["thread-1", "run", "qsim.kernel.layer"])
            .expect("leaf frame");
        assert_eq!(layer.1, 5, "both observations merge into one stack");
        let run = rows
            .iter()
            .find(|(f, _)| f == &["thread-1", "run"])
            .unwrap();
        assert_eq!(run.1, 4, "span self time excludes inner observations");
    }

    #[test]
    fn threads_get_separate_roots() {
        let input = lines(&[
            r#"{"type":"duration","thread":1,"name":"a","ns":1000}"#,
            r#"{"type":"duration","thread":2,"name":"a","ns":1000}"#,
        ]);
        let (out, _) = fold(&input);
        let rows = parse_collapsed(&out);
        assert_eq!(rows.len(), 2, "same name, different threads: two stacks");
    }

    #[test]
    fn unclosed_spans_are_counted_not_folded() {
        let input = lines(&[
            r#"{"type":"span_start","id":1,"parent":0,"thread":1,"name":"crashed"}"#,
            r#"{"type":"duration","thread":1,"name":"work","ns":1000}"#,
        ]);
        let (out, stats) = fold(&input);
        assert_eq!(stats.unclosed, 1);
        let rows = parse_collapsed(&out);
        // The observation still lands under the (open) span's stack.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, ["thread-1", "crashed", "work"]);
    }

    #[test]
    fn empty_and_garbage_inputs_stay_well_formed() {
        let (out, stats) = fold("");
        assert_eq!(out, "");
        assert_eq!(stats, FoldStats::default());
        let (out, stats) =
            fold("not json\n{\"type\":\"counter\",\"thread\":1,\"name\":\"c\",\"delta\":1}");
        assert_eq!(out, "", "counters carry no duration");
        assert_eq!(stats.skipped, 1);
    }

    #[test]
    fn sub_microsecond_weights_round_to_nearest() {
        let input = r#"{"type":"duration","thread":1,"name":"tiny","ns":1600}"#;
        let (out, _) = fold(input);
        let rows = parse_collapsed(&out);
        assert_eq!(rows[0].1, 2, "1.6 µs rounds to 2");
    }

    #[test]
    fn real_traced_run_round_trips_through_the_parser() {
        use qmkp_obs::Sink;
        use qmkp_qsim::{Circuit, DenseState, Gate, QuantumState};
        let mut c = Circuit::new(4);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::ccnot(0, 1, 2)).unwrap();
        let path =
            std::env::temp_dir().join(format!("flamegraph_roundtrip_{}.jsonl", std::process::id()));
        let sink = std::sync::Arc::new(qmkp_obs::JsonlSink::create(&path).unwrap());
        let guard = qmkp_obs::attach(sink.clone());
        {
            let span = qmkp_obs::span("test.outer");
            let mut s = DenseState::zero(4).unwrap();
            s.run(&c).unwrap();
            span.finish();
        }
        drop(guard);
        sink.flush();

        let input = fs::read_to_string(&path).unwrap();
        let _ = fs::remove_file(&path);
        let (out, stats) = fold(&input);
        assert!(stats.spans >= 1);
        assert_eq!(stats.unclosed, 0);
        let rows = parse_collapsed(&out);
        assert!(!rows.is_empty());
        assert!(
            rows.iter()
                .any(|(frames, _)| frames.contains(&"test.outer".to_string())),
            "the outer span must appear as a frame: {out:?}"
        );
        let total: u128 = rows.iter().map(|(_, w)| w).sum();
        let folded_us = (stats.total_ns + 500) / 1000;
        // Per-stack rounding can drift by at most one µs per stack.
        assert!(
            total.abs_diff(folded_us) <= rows.len() as u128,
            "parsed total {total} µs must match folded {folded_us} µs"
        );
    }
}
