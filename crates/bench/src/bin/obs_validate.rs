//! Validates a `qmkp-obs` JSONL trace file: every line must parse as a
//! JSON object and carry the keys its event type requires. Used by CI
//! after running a traced example.
//!
//! Usage: `obs_validate <trace.jsonl> [required-span-prefix ...]`
//!
//! Extra arguments are span-name prefixes that must appear in at least
//! one `span_start` event (e.g. `qsim.compile core.grover.iteration`),
//! letting CI assert that the trace actually covers the pipeline.
//!
//! Usage: `obs_validate --report <report.json> [required-series-prefix ...]`
//!
//! Report mode instead validates a `RunReport` JSON document written via
//! `QMKP_OBS_REPORT`: it must parse, carry a `metrics.series` array, and
//! every series must satisfy the `MetricsSnapshot` schema (known kind,
//! string name, object labels, numeric value; histograms additionally
//! need monotone `p50 ≤ p90 ≤ p99 ≤ p999` quantiles inside `[min, max]`
//! and buckets summing to `count`). Extra arguments are series-name
//! prefixes that must appear at least once.
//!
//! Exits 0 when the file is valid, 1 otherwise, printing one line per
//! problem to stderr.

use qmkp_obs::json;
use qmkp_obs::json::Json;

/// The keys every event of a given type must carry (beyond `type` and
/// `thread`, which are universal).
fn required_keys(kind: &str) -> Option<&'static [&'static str]> {
    match kind {
        "span_start" => Some(&["id", "parent", "name"]),
        "span_end" => Some(&["id", "name", "ns"]),
        "counter" => Some(&["name", "delta"]),
        "gauge" => Some(&["name", "value"]),
        "duration" => Some(&["name", "ns"]),
        "message" => Some(&["text"]),
        _ => None,
    }
}

/// Validates one `metrics.series` entry, returning problem descriptions.
fn series_problems(entry: &Json, index: usize) -> Vec<String> {
    let mut problems = Vec::new();
    let mut complain = |msg: String| problems.push(format!("series[{index}]: {msg}"));
    let num = |field: &str| entry.get(field).and_then(Json::as_f64);
    let kind = entry.get("kind").and_then(Json::as_str).unwrap_or("");
    if !matches!(kind, "counter" | "gauge" | "histogram") {
        complain(format!("unknown kind {kind:?}"));
        return problems;
    }
    if entry.get("name").and_then(Json::as_str).is_none() {
        complain("missing string key \"name\"".to_string());
    }
    if entry.get("labels").and_then(Json::as_object).is_none() {
        complain("missing object key \"labels\"".to_string());
    }
    if num("value").is_none() {
        complain("missing numeric key \"value\"".to_string());
    }
    if kind != "histogram" {
        return problems;
    }
    let (Some(count), Some(min), Some(max)) = (num("count"), num("min"), num("max")) else {
        complain("histogram missing count/min/max".to_string());
        return problems;
    };
    if num("sum").is_none() {
        complain("histogram missing numeric key \"sum\"".to_string());
    }
    if count <= 0.0 {
        complain("histogram with zero count must be omitted from snapshots".to_string());
    }
    let Some(quantiles) = entry.get("quantiles") else {
        complain("histogram missing \"quantiles\"".to_string());
        return problems;
    };
    let mut prev = min;
    for q in ["p50", "p90", "p99", "p999"] {
        let Some(v) = quantiles.get(q).and_then(Json::as_f64) else {
            complain(format!("quantiles missing {q:?}"));
            continue;
        };
        if v < prev || v > max {
            complain(format!(
                "{q} = {v} breaks min ≤ p50 ≤ p90 ≤ p99 ≤ p999 ≤ max"
            ));
        }
        prev = prev.max(v);
    }
    match entry.get("buckets").and_then(Json::as_array) {
        Some(buckets) if !buckets.is_empty() => {
            let total: f64 = buckets
                .iter()
                .filter_map(|b| b.as_array()?.get(1)?.as_f64())
                .sum();
            if (total - count).abs() > 0.5 {
                complain(format!("bucket counts sum to {total}, count is {count}"));
            }
        }
        _ => complain("histogram missing non-empty \"buckets\"".to_string()),
    }
    problems
}

/// `--report` mode: validates a `RunReport` document's metrics section.
fn validate_report(path: &str, want_prefixes: &[String]) -> ! {
    let body = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("obs_validate: cannot read {path}: {err}");
        std::process::exit(2);
    });
    let mut problems = 0usize;
    let complain = |msg: String| {
        eprintln!("obs_validate: {path}: {msg}");
    };
    let report = match json::parse(&body) {
        Ok(v) => v,
        Err(err) => {
            complain(format!("not valid JSON: {err}"));
            std::process::exit(1);
        }
    };
    if report.get("name").and_then(Json::as_str).is_none() {
        complain("report missing string key \"name\"".to_string());
        problems += 1;
    }
    let series = report
        .get("metrics")
        .and_then(|m| m.get("series"))
        .and_then(Json::as_array);
    let Some(series) = series else {
        complain("report missing \"metrics.series\" array".to_string());
        std::process::exit(1);
    };
    let mut names: Vec<String> = Vec::new();
    let mut by_kind: std::collections::BTreeMap<String, usize> = Default::default();
    for (i, entry) in series.iter().enumerate() {
        for msg in series_problems(entry, i) {
            complain(msg);
            problems += 1;
        }
        if let Some(name) = entry.get("name").and_then(Json::as_str) {
            names.push(name.to_string());
        }
        if let Some(kind) = entry.get("kind").and_then(Json::as_str) {
            *by_kind.entry(kind.to_string()).or_default() += 1;
        }
    }
    if series.is_empty() {
        complain("metrics.series is empty (was QMKP_OBS_METRICS set?)".to_string());
        problems += 1;
    }
    for prefix in want_prefixes {
        if !names.iter().any(|n| n.starts_with(prefix.as_str())) {
            complain(format!("no metrics series with prefix {prefix:?}"));
            problems += 1;
        }
    }
    let kinds: Vec<String> = by_kind.iter().map(|(k, n)| format!("{k}={n}")).collect();
    println!(
        "obs_validate: {path}: {} metrics series ({}), {problems} problem(s)",
        series.len(),
        kinds.join(" "),
    );
    std::process::exit(if problems == 0 { 0 } else { 1 });
}

fn main() {
    let mut args = std::env::args().skip(1);
    let usage = || -> ! {
        eprintln!(
            "usage: obs_validate <trace.jsonl> [required-span-prefix ...]\n       \
             obs_validate --report <report.json> [required-series-prefix ...]"
        );
        std::process::exit(2);
    };
    let path = args.next().unwrap_or_else(|| usage());
    if path == "--report" {
        let report = args.next().unwrap_or_else(|| usage());
        let want: Vec<String> = args.collect();
        validate_report(&report, &want);
    }
    let want_prefixes: Vec<String> = args.collect();
    let body = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        eprintln!("obs_validate: cannot read {path}: {err}");
        std::process::exit(2);
    });

    let mut problems = 0usize;
    let mut lines = 0usize;
    let mut seen_spans: Vec<String> = Vec::new();
    let mut by_kind: std::collections::BTreeMap<String, usize> = Default::default();
    for (lineno, line) in body.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let mut complain = |msg: String| {
            eprintln!("obs_validate: {path}:{lineno}: {msg}");
            problems += 1;
        };
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(err) => {
                complain(format!("not valid JSON: {err}"));
                continue;
            }
        };
        let Some(kind) = v.get("type").and_then(|t| t.as_str()) else {
            complain("missing string key \"type\"".to_string());
            continue;
        };
        if v.get("thread").and_then(json::Json::as_f64).is_none() {
            complain("missing numeric key \"thread\"".to_string());
        }
        let Some(keys) = required_keys(kind) else {
            complain(format!("unknown event type {kind:?}"));
            continue;
        };
        for key in keys {
            if v.get(key).is_none() {
                complain(format!("event type {kind:?} missing key {key:?}"));
            }
        }
        *by_kind.entry(kind.to_string()).or_default() += 1;
        if kind == "span_start" {
            if let Some(name) = v.get("name").and_then(|n| n.as_str()) {
                seen_spans.push(name.to_string());
            }
        }
    }

    if lines == 0 {
        eprintln!("obs_validate: {path}: empty trace");
        problems += 1;
    }
    for prefix in &want_prefixes {
        if !seen_spans.iter().any(|s| s.starts_with(prefix.as_str())) {
            eprintln!("obs_validate: {path}: no span_start with prefix {prefix:?}");
            problems += 1;
        }
    }

    let kinds: Vec<String> = by_kind.iter().map(|(k, n)| format!("{k}={n}")).collect();
    println!(
        "obs_validate: {path}: {lines} events ({}), {} distinct spans, {problems} problem(s)",
        kinds.join(" "),
        seen_spans.len(),
    );
    std::process::exit(if problems == 0 { 0 } else { 1 });
}
