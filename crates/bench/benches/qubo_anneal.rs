//! Benchmarks backing Tables V-VII and Figures 9-10: QUBO construction,
//! energy evaluation, SA and SQA sweep throughput, MILP nodes, and the
//! hybrid portfolio round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmkp_annealer::{anneal_qubo, sqa_qubo, SaConfig, SqaConfig};
use qmkp_graph::gen::{paper_anneal_dataset, ANNEAL_DATASETS};
use qmkp_milp::{minimize_qubo, BnbConfig};
use qmkp_qubo::{MkpQubo, MkpQuboParams};
use std::time::Duration;

fn bench_qubo_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("qubo_build");
    for &(n, m) in &ANNEAL_DATASETS {
        let g = paper_anneal_dataset(n, m);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("D_{n}_{m}")),
            &g,
            |b, g| {
                b.iter(|| MkpQubo::new(g, MkpQuboParams { k: 3, r: 2.0 }));
            },
        );
    }
    group.finish();
}

fn bench_energy_eval(c: &mut Criterion) {
    let g = paper_anneal_dataset(20, 100);
    let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
    let x = vec![true; mq.num_vars()];
    c.bench_function("qubo_energy_D20_100", |b| b.iter(|| mq.model.energy(&x)));
}

fn bench_sa_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_shot");
    for &(n, m) in &ANNEAL_DATASETS {
        let g = paper_anneal_dataset(n, m);
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("D_{n}_{m}")),
            &mq,
            |b, mq| {
                b.iter(|| {
                    anneal_qubo(
                        &mq.model,
                        &SaConfig {
                            shots: 1,
                            sweeps: 2,
                            ..SaConfig::default()
                        },
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_sqa_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("sqa_shot");
    group.sample_size(20);
    for &(n, m) in &ANNEAL_DATASETS {
        let g = paper_anneal_dataset(n, m);
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("D_{n}_{m}")),
            &mq,
            |b, mq| {
                b.iter(|| {
                    sqa_qubo(
                        &mq.model,
                        &SqaConfig {
                            shots: 1,
                            ..SqaConfig::from_anneal_time(1.0, 1)
                        },
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_milp_budgeted(c: &mut Criterion) {
    let g = paper_anneal_dataset(15, 70);
    let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
    c.bench_function("milp_1ms_budget_D15_70", |b| {
        b.iter(|| {
            minimize_qubo(
                &mq.model,
                &BnbConfig {
                    time_limit: Duration::from_millis(1),
                    ..BnbConfig::default()
                },
            )
        })
    });
}

fn bench_penalty_r_ablation(c: &mut Criterion) {
    // Table VI ablation: construction and one SQA shot across R values.
    let g = paper_anneal_dataset(10, 40);
    let mut group = c.benchmark_group("sqa_vs_r");
    for r in [1.1f64, 2.0, 4.0, 8.0] {
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r });
        group.bench_with_input(BenchmarkId::from_parameter(r), &mq, |b, mq| {
            b.iter(|| {
                sqa_qubo(
                    &mq.model,
                    &SqaConfig {
                        shots: 2,
                        ..SqaConfig::from_anneal_time(1.0, 2)
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_qubo_build,
    bench_energy_eval,
    bench_sa_shot,
    bench_sqa_shot,
    bench_milp_budgeted,
    bench_penalty_r_ablation
);
criterion_main!(benches);
