//! Property tests for the analyzer: the invariants that make its
//! verdicts trustworthy.
//!
//! * any permutation circuit followed by its inverse is provably clean
//!   on *every* qubit — the identity leaves nothing dirty;
//! * the symbolic XOR-affine verdict agrees with exhaustive enumeration
//!   on arbitrary sectioned circuits (the differential test that keeps
//!   the abstract domain honest);
//! * the peephole estimate agrees gate-for-gate with what the real
//!   compiler reports, on arbitrary sectioned circuits;
//! * ASAP depth is sandwiched between the busiest-qubit count and the
//!   gate count;
//! * a resource audit built from a circuit's own section counts passes,
//!   and any tampering with the circuit afterwards is detected.

use proptest::collection::vec;
use proptest::prelude::*;
use qmkp_lint::{
    analyze, circuit_depth, cross_check_compile, peephole_estimate, verify_ancillas, AncillaReport,
    AncillaSpec, ProofMethod, ResourceModel, SectionBudget, Severity,
};
use qmkp_qsim::{Circuit, CompiledCircuit, Gate};

/// Deterministically decodes a seed word into one permutation gate over
/// `width` qubits (X, CNOT, or Toffoli with distinct qubits).
fn decode_gate(seed: u64, width: usize) -> Gate {
    let q = |shift: u64, exclude: &[usize]| -> usize {
        let mut v = ((seed >> shift) % width as u64) as usize;
        while exclude.contains(&v) {
            v = (v + 1) % width;
        }
        v
    };
    // Cap gate arity by width so distinct-qubit selection terminates.
    match (seed % 3).min(width as u64 - 1) {
        0 => Gate::X(q(8, &[])),
        1 => {
            let c = q(8, &[]);
            Gate::cnot(c, q(16, &[c]))
        }
        _ => {
            let c0 = q(8, &[]);
            let c1 = q(16, &[c0]);
            Gate::ccnot(c0, c1, q(24, &[c0, c1]))
        }
    }
}

/// Builds a sectioned permutation circuit from seed words: every 4th
/// gate opens a new section so section boundaries land mid-stream.
fn decode_circuit(width: usize, seeds: &[u64]) -> Circuit {
    let mut c = Circuit::new(width);
    for (i, &seed) in seeds.iter().enumerate() {
        if i % 4 == 0 {
            if i > 0 {
                c.end_section();
            }
            c.begin_section(&format!("s{}", i / 4));
        }
        c.push_unchecked(decode_gate(seed, width));
    }
    if !seeds.is_empty() {
        c.end_section();
    }
    c
}

proptest! {
    #[test]
    fn circuit_then_inverse_is_always_clean(
        width in 3usize..=8,
        seeds in vec(any::<u64>(), 0..40),
    ) {
        let c = decode_circuit(width, &seeds);
        let mut round_trip = c.clone();
        round_trip.extend(&c.inverse()).unwrap();
        // Every qubit is free input; the identity must restore all of
        // them, so cleanliness here means "no free-qubit-corrupted".
        let spec = AncillaSpec::new((0..width).collect(), vec![]);
        let report = verify_ancillas(&round_trip, &spec);
        prop_assert!(
            report.diagnostics.iter().all(|d| d.severity != Severity::Error),
            "identity circuit flagged dirty: {:?}",
            report.diagnostics
        );
        prop_assert!(report.exhaustive);
    }

    /// The differential test behind the symbolic pass: on any sectioned
    /// permutation circuit small enough to enumerate, the XOR-affine
    /// proof and brute-force evaluation must reach the same verdict.
    /// Every qubit the enumeration catches dirty, the symbolic pass must
    /// also catch (it may catch *more*: enumeration stops at the first
    /// violating input, the symbolic pass witnesses every dirty qubit).
    /// The CI scheduler matrix reruns this under both
    /// `QMKP_QSIM_SCHEDULER` modes.
    #[test]
    fn symbolic_verdict_matches_exhaustive_enumeration(
        width in 3usize..=10,
        seeds in vec(any::<u64>(), 0..40),
    ) {
        let c = decode_circuit(width, &seeds);
        let free: Vec<usize> = (0..width - 2).collect();
        let symbolic_spec = AncillaSpec::new(free.clone(), vec![]);
        let mut enumerated_spec = symbolic_spec.clone();
        enumerated_spec.symbolic = false;

        let sym = verify_ancillas(&c, &symbolic_spec);
        let enu = verify_ancillas(&c, &enumerated_spec);
        prop_assert_eq!(sym.proof, ProofMethod::Symbolic);
        prop_assert_eq!(enu.proof, ProofMethod::Enumerated);
        prop_assert!(sym.exhaustive && enu.exhaustive);
        prop_assert_eq!(
            sym.is_clean(),
            enu.is_clean(),
            "verdicts disagree: symbolic {:?} vs enumerated {:?}",
            sym.diagnostics,
            enu.diagnostics
        );

        let dirty_qubits = |r: &AncillaReport| {
            r.diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .filter_map(|d| d.span.qubit)
                .collect::<std::collections::BTreeSet<_>>()
        };
        prop_assert!(
            dirty_qubits(&enu).is_subset(&dirty_qubits(&sym)),
            "enumeration found dirt the symbolic pass missed: {:?} ⊄ {:?}",
            dirty_qubits(&enu),
            dirty_qubits(&sym)
        );
        if sym.is_clean() {
            // Both liveness analyses are exact here (full enumeration;
            // every symbolic cone fits the default budget), so they must
            // agree gate-for-gate.
            prop_assert_eq!(&sym.live_gates, &enu.live_gates);
        }
    }

    #[test]
    fn peephole_estimate_matches_real_compiler(
        width in 2usize..=6,
        seeds in vec(any::<u64>(), 0..60),
    ) {
        let c = decode_circuit(width, &seeds);
        let compiled = CompiledCircuit::compile(&c).unwrap();
        let drift = cross_check_compile(&c, &compiled.stats());
        prop_assert!(drift.is_empty(), "analyzer/compiler drift: {drift:?}");
    }

    #[test]
    fn depth_is_bounded_by_gates_and_busiest_qubit(
        width in 2usize..=6,
        seeds in vec(any::<u64>(), 0..40),
    ) {
        let c = decode_circuit(width, &seeds);
        let depth = circuit_depth(&c);
        prop_assert!(depth <= c.len());
        let mut per_qubit = vec![0usize; width];
        for g in c.gates() {
            for q in g.qubits() {
                per_qubit[q] += 1;
            }
        }
        let busiest = per_qubit.iter().copied().max().unwrap_or(0);
        prop_assert!(depth >= busiest, "depth {depth} < busiest qubit {busiest}");
    }

    #[test]
    fn audit_passes_on_truth_and_flags_tampering(
        width in 2usize..=6,
        seeds in vec(any::<u64>(), 4..40),
    ) {
        let c = decode_circuit(width, &seeds);
        // A model read off the circuit itself must audit clean...
        let model = ResourceModel {
            width: c.width(),
            sections: c
                .sections()
                .iter()
                .map(|s| SectionBudget { name: s.name.clone(), gates: s.range.len() })
                .collect(),
        };
        prop_assert!(qmkp_lint::audit(&c, &model).is_empty());

        // ...and tampering with the circuit (one extra gate in the
        // first section) must be flagged against the same model.
        let mut tampered = Circuit::new(c.width());
        for (i, section) in c.sections().iter().enumerate() {
            tampered.begin_section(&section.name);
            for g in &c.gates()[section.range.clone()] {
                tampered.push_unchecked(g.clone());
            }
            if i == 0 {
                tampered.push_unchecked(Gate::X(0));
            }
            tampered.end_section();
        }
        let diags = qmkp_lint::audit(&tampered, &model);
        prop_assert!(
            diags.iter().any(|d| d.code == "resource-gate-count"),
            "tampered circuit not flagged: {diags:?}"
        );
    }

    #[test]
    fn analysis_report_json_always_parses(
        width in 2usize..=5,
        seeds in vec(any::<u64>(), 0..25),
    ) {
        let c = decode_circuit(width, &seeds);
        let spec = AncillaSpec::new((0..width.min(2)).collect(), (width.min(2)..width).collect());
        let report = analyze("prop", &c, &spec, None);
        let parsed = qmkp_obs::json::parse(&report.to_json());
        prop_assert!(parsed.is_ok(), "unparseable report JSON: {:?}", parsed.err());
    }
}

#[test]
fn dropping_one_uncompute_gate_is_always_caught() {
    // Mutation scaffolding mirrored by the core-crate oracle tests: for a
    // compute/uncompute sandwich, deleting any single *live* gate of the
    // uncompute half must produce an ancilla error.
    let mut compute = Circuit::new(5);
    compute.begin_section("f");
    compute.push_unchecked(Gate::cnot(0, 2));
    compute.push_unchecked(Gate::ccnot(1, 2, 3));
    compute.end_section();
    let mut full = compute.clone();
    full.push_unchecked(Gate::cnot(3, 4)); // kickback into the out qubit
    let inverse_start = full.len();
    full.extend(&compute.inverse()).unwrap();

    let spec = AncillaSpec::new(vec![0, 1], vec![4]);
    assert!(qmkp_lint::is_clean(&full, &spec));
    for drop_idx in inverse_start..full.len() {
        let mut mutant = Circuit::new(full.width());
        for (i, g) in full.gates().iter().enumerate() {
            if i != drop_idx {
                mutant.push_unchecked(g.clone());
            }
        }
        let report = verify_ancillas(&mutant, &spec);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error),
            "dropping gate #{drop_idx} went undetected"
        );
    }
}

#[test]
fn peephole_estimate_counts_cancellation_in_sandwich() {
    // x · x† back-to-back: everything cancels; the estimate must see the
    // full cascade just like the compiler does.
    let mut c = Circuit::new(3);
    c.push_unchecked(Gate::cnot(0, 1));
    c.push_unchecked(Gate::ccnot(0, 1, 2));
    c.push_unchecked(Gate::ccnot(0, 1, 2));
    c.push_unchecked(Gate::cnot(0, 1));
    let mut diags = Vec::new();
    let est = peephole_estimate(&c, &mut diags);
    assert_eq!(est.cancelled_flips, 4);
    let compiled = CompiledCircuit::compile(&c).unwrap();
    assert_eq!(est.cancelled_flips, compiled.stats().cancelled_flips);
}
