//! Table II — qMKP vs the BS baseline on datasets of varying sizes
//! (G_{7,8}, G_{8,10}, G_{9,15}, G_{10,23}; k = 2).
//!
//! Reported: maximum k-plex size, BS wall time, qMKP (simulated) wall
//! time, the progressive first-result time/size, and the single-shot
//! error probability of the final qTKP probe.

use qmkp_bench::{error_prob, print_table, quick_mode, us, Provenance};
use qmkp_classical::max_kplex_bs;
use qmkp_core::{qmkp, QmkpConfig};
use qmkp_graph::gen::{paper_gate_dataset, GATE_DATASETS};
use std::time::Instant;

fn main() {
    let mut prov = Provenance::start("table2_qmkp_vs_bs");
    let datasets: &[(usize, usize)] = if quick_mode() {
        &GATE_DATASETS[..2]
    } else {
        &GATE_DATASETS
    };
    prov.config("k", 2);
    for &(n, m) in datasets {
        prov.config("dataset", format!("G_{{{n},{m}}}"));
    }
    let mut rows = Vec::new();
    for &(n, m) in datasets {
        let g = paper_gate_dataset(n, m);

        let t0 = Instant::now();
        let (bs_best, bs_stats) = max_kplex_bs(&g, 2);
        let bs_time = t0.elapsed();

        let out = qmkp(&g, 2, &QmkpConfig::default());
        assert_eq!(out.best.len(), bs_best.len(), "exact solvers must agree");
        let (first, first_time) = out.first_result.expect("always finds some plex");
        prov.outcome(format!("best_size[G_{{{n},{m}}}]"), out.best.len());

        rows.push(vec![
            format!("G_{{{n},{m}}}"),
            out.best.len().to_string(),
            us(bs_time),
            us(out.total_elapsed),
            us(first_time),
            first.len().to_string(),
            error_prob(out.error_probability),
            out.total_iterations.to_string(),
            format!("{} nodes", bs_stats.nodes),
            format!("{} qubits", out.qubits),
        ]);
    }
    print_table(
        "Table II — qMKP vs BS, k = 2 (times are this machine's simulation wall-clock)",
        &[
            "Dataset",
            "max 2-plex",
            "BS (µs)",
            "qMKP (µs)",
            "first-result (µs)",
            "first-result size",
            "error prob",
            "oracle calls",
            "BS search",
            "qMKP width",
        ],
        &rows,
    );
    prov.finish();
}
