//! The trivial `O*(2ⁿ)` enumerator — ground truth for everything else.

use qmkp_graph::{is_kplex, Graph, VertexSet};

/// Finds a maximum k-plex by checking every vertex subset.
///
/// Deterministic tie-break: the lexicographically smallest bitmask among
/// the largest k-plexes.
///
/// # Panics
/// Panics if `g.n() > 25` (2³³ subsets is past the point of ground truth).
pub fn max_kplex_naive(g: &Graph, k: usize) -> VertexSet {
    assert!(g.n() <= 25, "naive enumeration is limited to 25 vertices");
    let mut best = VertexSet::EMPTY;
    for bits in 0..(1u128 << g.n()) {
        let s = VertexSet::from_bits(bits);
        if s.len() > best.len() && is_kplex(g, s, k) {
            best = s;
        }
    }
    best
}

/// Counts the k-plexes of each size; index `i` holds the number of
/// k-plexes with exactly `i` vertices. Useful for the Grover `M` census
/// cross-checks and for instance characterization.
pub fn kplex_size_profile(g: &Graph, k: usize) -> Vec<u64> {
    assert!(g.n() <= 25, "naive enumeration is limited to 25 vertices");
    let mut profile = vec![0u64; g.n() + 1];
    for bits in 0..(1u128 << g.n()) {
        let s = VertexSet::from_bits(bits);
        if is_kplex(g, s, k) {
            profile[s.len()] += 1;
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_graph::gen::paper_fig1_graph;

    #[test]
    fn fig1_maximum_sizes() {
        let g = paper_fig1_graph();
        assert_eq!(max_kplex_naive(&g, 1).len(), 3, "max clique of Fig. 1");
        assert_eq!(max_kplex_naive(&g, 2).len(), 4);
        assert_eq!(max_kplex_naive(&g, 2), VertexSet::from_iter([0, 1, 3, 4]));
    }

    #[test]
    fn empty_and_complete_graphs() {
        let empty = Graph::new(4).unwrap();
        assert_eq!(max_kplex_naive(&empty, 1).len(), 1);
        assert_eq!(max_kplex_naive(&empty, 3).len(), 3, "k isolated vertices");
        let complete = Graph::complete(5).unwrap();
        assert_eq!(max_kplex_naive(&complete, 1).len(), 5);
    }

    #[test]
    fn size_profile_sums_to_kplex_count() {
        let g = paper_fig1_graph();
        let profile = kplex_size_profile(&g, 2);
        assert_eq!(profile[0], 1, "the empty set");
        assert_eq!(profile[1], 6, "all singletons");
        assert_eq!(profile[4], 1, "the unique maximum");
        assert_eq!(profile[5], 0);
        assert_eq!(profile[6], 0);
    }

    #[test]
    fn result_is_always_a_kplex() {
        for seed in 0..5 {
            let g = qmkp_graph::gen::gnm(8, 12, seed).unwrap();
            for k in 1..=3 {
                let p = max_kplex_naive(&g, k);
                assert!(is_kplex(&g, p, k));
            }
        }
    }
}
