//! The generators: SplitMix64 (seeding only) and xoshiro256++.

use crate::{RngCore, SeedableRng};

/// SplitMix64, used to expand small seeds into full generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A SplitMix64 stream starting from `state`.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — a fast, high-quality 256-bit-state generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of the xoshiro transition;
        // remap it to an arbitrary nonzero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256PlusPlus { s }
    }
}

/// The standard seedable generator (upstream: ChaCha12; here xoshiro256++,
/// see the crate docs for why the streams differ).
#[derive(Debug, Clone)]
pub struct StdRng(Xoshiro256PlusPlus);

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(Xoshiro256PlusPlus::from_seed(seed))
    }
}

/// The small/fast generator (same algorithm as [`StdRng`] here).
#[derive(Debug, Clone)]
pub struct SmallRng(Xoshiro256PlusPlus);

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        SmallRng(Xoshiro256PlusPlus::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for state seeded from SplitMix64(0), cross-checked
        // against the reference C implementation's seeding convention.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, second);
        // Determinism is the contract; pin the values so accidental
        // algorithm changes are caught.
        let mut again = Xoshiro256PlusPlus::seed_from_u64(0);
        assert_eq!(again.next_u64(), first);
        assert_eq!(again.next_u64(), second);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = Xoshiro256PlusPlus::from_seed([0; 32]);
        let outputs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0));
    }
}
