//! Circuit compilation: lowering a [`Circuit`] to fused kernel ops.
//!
//! Interpreting a circuit gate-by-gate makes one full pass over the state
//! per gate and re-examines each gate's control list (a heap-allocated
//! `Vec<Control>`) for every basis state. The qTKP oracle is dominated by
//! exactly the gates that make this expensive: long ladders of
//! multi-controlled X gates. Compilation removes both costs up front:
//!
//! 1. **Mask precompilation** — every control list is folded once into a
//!    `(care, want)` bit-mask pair, so the per-basis-state test collapses
//!    to one AND and one compare ([`MaskedFlip`], [`MaskedPhase`]).
//! 2. **Permutation-segment fusion** — maximal runs of classical-
//!    reversible gates (X / MCX) become a single [`CompiledOp::Permutation`]
//!    applied in one pass over the state; likewise runs of diagonal gates
//!    (Z / Phase / CPhase / MCZ) fuse into one [`CompiledOp::Diagonal`].
//!    Runs never cross section boundaries, so per-section timing (the
//!    paper's Table IV attribution) stays exact.
//! 3. The remaining gates (H / Ry) lower to a general real-free 2×2 kernel
//!    ([`SingleQubit`]) applied as a butterfly pass. Consecutive
//!    single-qubit kernels on the *same* qubit fuse into one matrix
//!    product, so e.g. an `Ry` sandwiched between Hadamards costs one
//!    state pass instead of three.
//!
//! Kernel steps are generic over the basis-key integer ([`BasisKey`]):
//! every instance in the paper fits in 64 bits, so circuits of width ≤ 64
//! are additionally lowered to u64-specialised steps
//! ([`MaskedFlip64`] / [`MaskedPhase64`], exposed via
//! [`CompiledCircuit::narrow_ops`]) that the backends prefer — half the
//! register pressure of the `u128` fallback kept for wider registers.
//!
//! Compilation is fallible ([`CompileError`]): a circuit wider than the
//! 128-bit basis encoding, or one whose gates reference out-of-range or
//! duplicated qubits, is reported as a structured error instead of
//! aborting the process — malformed inputs must never panic a long-lived
//! server embedding the simulator.
//!
//! Execution lives with the backends (`QuantumState::run_compiled`); this
//! module is purely the IR and the lowering.

use crate::circuit::{Circuit, Section};
use crate::complex::Complex;
use crate::gate::Gate;
use std::fmt;

/// Widest register the compiler (and the sparse backend) can encode: one
/// bit of a `u128` basis key per qubit.
pub const MAX_COMPILE_WIDTH: usize = 128;

/// Integer type carrying a basis state in the kernel hot loops.
///
/// Implemented for `u64` (the fast path: every paper instance fits) and
/// `u128` (the fallback for registers of 65-128 qubits). Backends and
/// kernel steps are generic over this trait so both widths share one
/// implementation.
pub trait BasisKey:
    Copy
    + Ord
    + Eq
    + fmt::Debug
    + Send
    + Sync
    + std::ops::BitAnd<Output = Self>
    + std::ops::BitOr<Output = Self>
    + std::ops::BitXor<Output = Self>
    + std::ops::Not<Output = Self>
{
    /// The all-zeros key.
    const ZERO: Self;
    /// Number of bits (the maximum register width this key supports).
    const BITS: usize;
    /// The key with only bit `q` set.
    fn bit(q: usize) -> Self;
    /// Truncating conversion from the canonical `u128` encoding.
    fn from_u128(basis: u128) -> Self;
    /// Widening conversion to the canonical `u128` encoding.
    fn to_u128(self) -> u128;
    /// All-ones when `hit`, all-zeros otherwise (branchless select mask).
    fn splat(hit: bool) -> Self;
    /// Splits into `(low 64 bits, remaining high bits)`. The sparse
    /// backend runs ladder steps whose masks live entirely in the low
    /// half on u64 arithmetic, even when the register is u128-keyed.
    fn split_lo_hi(self) -> (u64, u64);
    /// Inverse of [`BasisKey::split_lo_hi`].
    fn from_lo_hi(lo: u64, hi: u64) -> Self;
}

impl BasisKey for u64 {
    const ZERO: Self = 0;
    const BITS: usize = 64;
    #[inline]
    fn bit(q: usize) -> Self {
        1u64 << q
    }
    #[inline]
    fn from_u128(basis: u128) -> Self {
        basis as u64
    }
    #[inline]
    fn to_u128(self) -> u128 {
        self as u128
    }
    #[inline]
    fn splat(hit: bool) -> Self {
        (hit as u64).wrapping_neg()
    }
    #[inline]
    fn split_lo_hi(self) -> (u64, u64) {
        (self, 0)
    }
    #[inline]
    fn from_lo_hi(lo: u64, _hi: u64) -> Self {
        lo
    }
}

impl BasisKey for u128 {
    const ZERO: Self = 0;
    const BITS: usize = 128;
    #[inline]
    fn bit(q: usize) -> Self {
        1u128 << q
    }
    #[inline]
    fn from_u128(basis: u128) -> Self {
        basis
    }
    #[inline]
    fn to_u128(self) -> u128 {
        self
    }
    #[inline]
    fn splat(hit: bool) -> Self {
        (hit as u128).wrapping_neg()
    }
    #[inline]
    fn split_lo_hi(self) -> (u64, u64) {
        (self as u64, (self >> 64) as u64)
    }
    #[inline]
    fn from_lo_hi(lo: u64, hi: u64) -> Self {
        (lo as u128) | ((hi as u128) << 64)
    }
}

/// A conditional bit-flip: if `basis & care == want`, XOR `flip` into the
/// basis state.
///
/// Every X/MCX gate lowers to one step. Because a gate's qubits are
/// distinct by validation, `care ∩ flip = ∅`, which makes the step an
/// involution — the property the dense gather pass relies on to invert a
/// fused permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipStep<K> {
    /// Bits that participate in the control test.
    pub care: K,
    /// Required pattern on the `care` bits.
    pub want: K,
    /// Bits flipped when the test passes (the MCX targets).
    pub flip: K,
}

/// The `u128` flip step (any register width up to 128).
pub type MaskedFlip = FlipStep<u128>;
/// The u64-specialised flip step (registers of width ≤ 64).
pub type MaskedFlip64 = FlipStep<u64>;

impl<K: BasisKey> FlipStep<K> {
    /// Applies the step to a basis state. Branchless: the control test on
    /// a superposed register passes for an unpredictable subset of basis
    /// states, so a data-dependent branch here mispredicts constantly in
    /// the dense gather's hot loop.
    #[inline]
    pub fn apply(self, basis: K) -> K {
        let hit = K::splat(basis & self.care == self.want);
        basis ^ (self.flip & hit)
    }
}

impl FlipStep<u128> {
    /// Truncates the masks to the u64 fast path (valid when every touched
    /// qubit is below 64).
    #[inline]
    pub fn narrow(self) -> MaskedFlip64 {
        FlipStep {
            care: self.care as u64,
            want: self.want as u64,
            flip: self.flip as u64,
        }
    }
}

impl FlipStep<u64> {
    /// Widens the masks back to the canonical `u128` encoding.
    #[inline]
    pub fn widen(self) -> MaskedFlip {
        FlipStep {
            care: self.care as u128,
            want: self.want as u128,
            flip: self.flip as u128,
        }
    }
}

/// A conditional phase factor: if `basis & care == want`, multiply the
/// amplitude by `phase`. Z / Phase / CPhase / MCZ all lower to this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStep<K> {
    /// Bits that participate in the test.
    pub care: K,
    /// Required pattern on the `care` bits.
    pub want: K,
    /// The phase factor (`-1` for Z/MCZ, `e^{iθ}` for Phase/CPhase).
    pub phase: Complex,
}

/// The `u128` phase step (any register width up to 128).
pub type MaskedPhase = PhaseStep<u128>;
/// The u64-specialised phase step (registers of width ≤ 64).
pub type MaskedPhase64 = PhaseStep<u64>;

impl<K: BasisKey> PhaseStep<K> {
    /// Whether the phase applies to a basis state.
    #[inline]
    pub fn applies_to(self, basis: K) -> bool {
        basis & self.care == self.want
    }
}

impl PhaseStep<u128> {
    /// Truncates the masks to the u64 fast path.
    #[inline]
    pub fn narrow(self) -> MaskedPhase64 {
        PhaseStep {
            care: self.care as u64,
            want: self.want as u64,
            phase: self.phase,
        }
    }
}

impl PhaseStep<u64> {
    /// Widens the masks back to the canonical `u128` encoding.
    #[inline]
    pub fn widen(self) -> MaskedPhase {
        PhaseStep {
            care: self.care as u128,
            want: self.want as u128,
            phase: self.phase,
        }
    }
}

/// A dense 2×2 single-qubit kernel `[[m00, m01], [m10, m11]]` acting on
/// `qubit`: `a' = m00·a + m01·b`, `b' = m10·a + m11·b` for the amplitude
/// pair `(a, b)` with the qubit clear/set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleQubit {
    /// The acted-on qubit.
    pub qubit: usize,
    /// Matrix entry row 0, column 0.
    pub m00: Complex,
    /// Matrix entry row 0, column 1.
    pub m01: Complex,
    /// Matrix entry row 1, column 0.
    pub m10: Complex,
    /// Matrix entry row 1, column 1.
    pub m11: Complex,
}

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

impl SingleQubit {
    /// The Hadamard kernel on `qubit`.
    pub fn hadamard(qubit: usize) -> Self {
        let h = Complex::real(FRAC_1_SQRT_2);
        SingleQubit {
            qubit,
            m00: h,
            m01: h,
            m10: h,
            m11: -h,
        }
    }

    /// The `Ry(θ)` kernel on `qubit`.
    pub fn ry(qubit: usize, theta: f64) -> Self {
        let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        SingleQubit {
            qubit,
            m00: Complex::real(c),
            m01: Complex::real(-s),
            m10: Complex::real(s),
            m11: Complex::real(c),
        }
    }

    /// The kernel equal to applying `first` and then `self` — the matrix
    /// product `self · first`. Both kernels must act on the same qubit.
    pub fn after(self, first: &SingleQubit) -> SingleQubit {
        SingleQubit {
            qubit: self.qubit,
            m00: self.m00 * first.m00 + self.m01 * first.m10,
            m01: self.m00 * first.m01 + self.m01 * first.m11,
            m10: self.m10 * first.m00 + self.m11 * first.m10,
            m11: self.m10 * first.m01 + self.m11 * first.m11,
        }
    }
}

/// One fused kernel operation over basis keys of type `K`.
#[derive(Debug, Clone, PartialEq)]
pub enum Op<K> {
    /// A fused run of classical-reversible gates, applied as one pass.
    /// Steps are in gate order.
    Permutation(Vec<FlipStep<K>>),
    /// A fused run of diagonal gates, applied as one pass.
    Diagonal(Vec<PhaseStep<K>>),
    /// A single-qubit butterfly (H / Ry, possibly several fused into one
    /// 2×2 product).
    Single(SingleQubit),
}

/// The `u128` kernel op (any register width up to 128).
pub type CompiledOp = Op<u128>;
/// The u64-specialised kernel op (registers of width ≤ 64).
pub type CompiledOp64 = Op<u64>;

impl<K> Op<K> {
    /// Number of kernel steps in this op. At most the number of source
    /// gates folded into it — peephole cancellation (adjacent inverse
    /// flips, merged same-mask phases, fused 2×2 products) can shrink a
    /// run, possibly to zero steps, in which case the op is a no-op the
    /// backends skip.
    pub fn fused_gates(&self) -> usize {
        match self {
            Op::Permutation(steps) => steps.len(),
            Op::Diagonal(phases) => phases.len(),
            Op::Single(_) => 1,
        }
    }
}

impl Op<u128> {
    /// Truncates every step to the u64 fast path (valid when the circuit
    /// width is ≤ 64).
    pub fn narrow(&self) -> CompiledOp64 {
        match self {
            Op::Permutation(steps) => Op::Permutation(steps.iter().map(|s| s.narrow()).collect()),
            Op::Diagonal(phases) => Op::Diagonal(phases.iter().map(|p| p.narrow()).collect()),
            Op::Single(k) => Op::Single(*k),
        }
    }
}

impl Op<u64> {
    /// Widens every step back to the canonical `u128` encoding.
    pub fn widen(&self) -> CompiledOp {
        match self {
            Op::Permutation(steps) => Op::Permutation(steps.iter().map(|s| s.widen()).collect()),
            Op::Diagonal(phases) => Op::Diagonal(phases.iter().map(|p| p.widen()).collect()),
            Op::Single(k) => Op::Single(*k),
        }
    }
}

/// A structured compilation failure. Surfaced through
/// [`CompiledCircuit::compile`] so a malformed circuit is an error value,
/// never a process abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The circuit is wider than the 128-bit basis-key encoding.
    WidthTooLarge {
        /// The circuit width.
        width: usize,
        /// The widest supported register ([`MAX_COMPILE_WIDTH`]).
        max: usize,
    },
    /// A gate referenced a qubit at or above the circuit width.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit width.
        width: usize,
    },
    /// A gate used the same qubit more than once (e.g. as both a control
    /// and the target). Such a gate does not lower to an involution, so
    /// the permutation kernels would corrupt the state.
    DuplicateQubit(usize),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::WidthTooLarge { width, max } => {
                write!(
                    f,
                    "circuit width {width} exceeds the {max}-qubit basis encoding"
                )
            }
            CompileError::QubitOutOfRange { qubit, width } => {
                write!(
                    f,
                    "gate qubit {qubit} out of range for circuit of width {width}"
                )
            }
            CompileError::DuplicateQubit(q) => {
                write!(f, "gate uses qubit {q} more than once; not a valid kernel")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Lowers one gate to its kernel form.
pub(crate) fn lower_gate(gate: &Gate) -> CompiledOp {
    match gate {
        Gate::X(q) => Op::Permutation(vec![FlipStep {
            care: 0,
            want: 0,
            flip: 1u128 << q,
        }]),
        Gate::Mcx { controls, target } => {
            let mut care = 0u128;
            let mut want = 0u128;
            for c in controls {
                care |= 1u128 << c.qubit;
                if c.positive {
                    want |= 1u128 << c.qubit;
                }
            }
            Op::Permutation(vec![FlipStep {
                care,
                want,
                flip: 1u128 << target,
            }])
        }
        Gate::Z(q) => Op::Diagonal(vec![PhaseStep {
            care: 1u128 << q,
            want: 1u128 << q,
            phase: Complex::real(-1.0),
        }]),
        Gate::Phase(q, theta) => Op::Diagonal(vec![PhaseStep {
            care: 1u128 << q,
            want: 1u128 << q,
            phase: Complex::from_phase(*theta),
        }]),
        Gate::CPhase(p, q, theta) => {
            let m = (1u128 << p) | (1u128 << q);
            Op::Diagonal(vec![PhaseStep {
                care: m,
                want: m,
                phase: Complex::from_phase(*theta),
            }])
        }
        Gate::Mcz { controls, target } => {
            let mut care = 1u128 << target;
            let mut want = 1u128 << target;
            for c in controls {
                care |= 1u128 << c.qubit;
                if c.positive {
                    want |= 1u128 << c.qubit;
                }
            }
            Op::Diagonal(vec![PhaseStep {
                care,
                want,
                phase: Complex::real(-1.0),
            }])
        }
        Gate::H(q) => Op::Single(SingleQubit::hadamard(*q)),
        Gate::Ry(q, theta) => Op::Single(SingleQubit::ry(*q, *theta)),
    }
}

/// Kernel steps in the longest fused permutation ladder of an op stream.
fn longest_ladder(ops: &[CompiledOp]) -> usize {
    ops.iter()
        .map(|op| match op {
            Op::Permutation(steps) => steps.len(),
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// What the compile pass did to a circuit: how much it read, how much it
/// emitted, and how much the peepholes removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileStats {
    /// Gates in the source circuit.
    pub source_gates: usize,
    /// Fused ops emitted.
    pub ops: usize,
    /// Kernel steps across all emitted ops (each `Single` counts as one).
    pub kernel_steps: usize,
    /// Gates removed by inverse-flip cancellation (each cancellation
    /// removes two source gates). The linear pass only cancels adjacent
    /// pairs; the DAG scheduler also cancels across commuting
    /// intermediates.
    pub cancelled_flips: usize,
    /// Phase gates folded into an existing step of the same pattern.
    pub merged_phases: usize,
    /// Single-qubit gates folded into an existing 2×2 product.
    pub merged_singles: usize,
    /// Whether u64-specialised kernels were emitted (width ≤ 64).
    pub narrow: bool,
    /// Whether the DAG scheduler produced this compile (vs linear fusion).
    pub scheduled: bool,
    /// Diagonal steps conjugated past a later flip by the scheduler's
    /// commute rewrite (counted once per diagonal per sunk flip).
    pub commuted_diagonals: usize,
    /// Dispatch layers in the schedule (0 for linear compiles).
    pub layers: usize,
    /// Kernel steps in the longest fused permutation ladder.
    pub longest_ladder: usize,
}

/// Compilation mode knobs.
///
/// [`CompileOptions::default`] reads the `QMKP_QSIM_SCHEDULER`
/// environment variable: the DAG scheduler is ON unless the variable is
/// set to `0`, `false` or `off` (case-insensitive) — the toggle the CI
/// `scheduler` matrix leg flips to prove both compile paths agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Run the gate-DAG scheduling pass ([`crate::dag`]) instead of
    /// linear segment fusion.
    pub dag_scheduler: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            dag_scheduler: scheduler_enabled_by_env(),
        }
    }
}

/// The `QMKP_QSIM_SCHEDULER` default: on unless explicitly disabled.
pub fn scheduler_enabled_by_env() -> bool {
    match std::env::var("QMKP_QSIM_SCHEDULER") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "false" || v == "off")
        }
        Err(_) => true,
    }
}

/// A circuit lowered to fused kernel ops, with section tags carried over
/// as op-index ranges.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    width: usize,
    ops: Vec<CompiledOp>,
    /// The same ops with u64 masks, present when `width ≤ 64`. Backends
    /// prefer these: every paper instance fits in 64 bits.
    narrow_ops: Option<Vec<CompiledOp64>>,
    sections: Vec<Section>,
    source_gates: usize,
    stats: CompileStats,
    /// The layer structure and per-op section attribution, present when
    /// the DAG scheduler compiled this circuit.
    schedule: Option<crate::dag::Schedule>,
}

impl CompiledCircuit {
    /// Compiles a circuit with [`CompileOptions::default`] — the DAG
    /// scheduler unless `QMKP_QSIM_SCHEDULER` disables it.
    ///
    /// # Errors
    /// Fails with a [`CompileError`] if the circuit is wider than 128
    /// qubits or a gate references out-of-range or duplicated qubits; a
    /// malformed circuit is reported, never panicked on.
    pub fn compile(circuit: &Circuit) -> Result<Self, CompileError> {
        Self::compile_with(circuit, CompileOptions::default())
    }

    /// Compiles a circuit in an explicit mode.
    ///
    /// Linear mode lowers every gate and fuses maximal same-class runs of
    /// permutation and diagonal gates, closing runs at section boundaries
    /// so per-section attribution stays exact. Scheduler mode
    /// ([`crate::dag`]) reorders commuting gates instead: diagonals sink
    /// past permutations, ladders fuse and cancel across section
    /// boundaries, and the result carries a [`crate::dag::Schedule`] of
    /// support-disjoint dispatch layers with per-op section weights.
    ///
    /// # Errors
    /// Same contract as [`CompiledCircuit::compile`].
    pub fn compile_with(circuit: &Circuit, options: CompileOptions) -> Result<Self, CompileError> {
        crate::validate::validate_circuit(circuit)?;
        let span = qmkp_obs::span("qsim.compile");
        let compiled = if options.dag_scheduler {
            Self::compile_scheduled(circuit)
        } else {
            Self::compile_linear(circuit)
        };
        if qmkp_obs::enabled_for("qsim.compile") {
            let stats = compiled.stats;
            qmkp_obs::counter("qsim.compile.gates", stats.source_gates as u64);
            qmkp_obs::counter("qsim.compile.ops", stats.ops as u64);
            qmkp_obs::counter("qsim.compile.cancelled", stats.cancelled_flips as u64);
            qmkp_obs::counter("qsim.compile.merged", stats.merged_phases as u64);
            qmkp_obs::counter("qsim.compile.merged_singles", stats.merged_singles as u64);
            qmkp_obs::counter("qsim.compile.narrow", stats.narrow as u64);
            qmkp_obs::counter("qsim.compile.scheduled", stats.scheduled as u64);
            qmkp_obs::counter("qsim.compile.commuted", stats.commuted_diagonals as u64);
            qmkp_obs::counter("qsim.compile.layers", stats.layers as u64);
        }
        span.finish();
        Ok(compiled)
    }

    /// The DAG-scheduled compile path (validation already done).
    fn compile_scheduled(circuit: &Circuit) -> Self {
        let out = crate::dag::schedule_compile(circuit);
        let narrow_ops = (circuit.width() <= u64::BITS as usize)
            .then(|| out.ops.iter().map(Op::narrow).collect::<Vec<_>>());
        let stats = CompileStats {
            source_gates: circuit.len(),
            ops: out.ops.len(),
            kernel_steps: out.ops.iter().map(Op::fused_gates).sum(),
            cancelled_flips: out.cancelled_flips,
            merged_phases: out.merged_phases,
            merged_singles: out.merged_singles,
            narrow: narrow_ops.is_some(),
            scheduled: true,
            commuted_diagonals: out.commuted_diagonals,
            layers: out.schedule.layers.len(),
            longest_ladder: longest_ladder(&out.ops),
        };
        CompiledCircuit {
            width: circuit.width(),
            ops: out.ops,
            narrow_ops,
            sections: out.sections,
            source_gates: circuit.len(),
            stats,
            schedule: Some(out.schedule),
        }
    }

    /// The linear segment-fusion compile path (validation already done).
    fn compile_linear(circuit: &Circuit) -> Self {
        let mut cancelled_flips = 0usize;
        let mut merged_phases = 0usize;
        let mut merged_singles = 0usize;
        // Gate indices at which a fused run must end (exclusive starts
        // and ends of every section).
        let mut boundaries: Vec<usize> = circuit
            .sections()
            .iter()
            .flat_map(|s| [s.range.start, s.range.end])
            .collect();
        boundaries.sort_unstable();
        boundaries.dedup();

        let mut ops: Vec<CompiledOp> = Vec::new();
        // Open run, if any: accumulating flips or phases.
        let mut open: Option<CompiledOp> = None;
        // Index of the trailing `Single` op while it is still fusable —
        // cleared at section boundaries and whenever any other op lands
        // after it.
        let mut fusable_single: Option<usize> = None;
        // For each gate, the op index it was folded into.
        let mut gate_to_op: Vec<usize> = Vec::with_capacity(circuit.len());

        for (g, gate) in circuit.gates().iter().enumerate() {
            if boundaries.binary_search(&g).is_ok() {
                if let Some(run) = open.take() {
                    ops.push(run);
                }
                fusable_single = None;
            }
            match (lower_gate(gate), &mut open) {
                (Op::Permutation(step), Some(Op::Permutation(steps))) => {
                    // Peephole: each step is an involution, so a step equal
                    // to its predecessor composes to the identity. Oracle
                    // circuits are full of such pairs — every compute /
                    // uncompute mirror meets at one, and the cancellations
                    // cascade through the whole mirrored run.
                    let s = step[0];
                    if steps.last() == Some(&s) {
                        steps.pop();
                        cancelled_flips += 2;
                    } else {
                        steps.push(s);
                    }
                }
                (Op::Diagonal(phase), Some(Op::Diagonal(phases))) => {
                    // Peephole: consecutive phases conditioned on the same
                    // bit pattern multiply into one step.
                    let p = phase[0];
                    match phases.last_mut() {
                        Some(last) if last.care == p.care && last.want == p.want => {
                            last.phase *= p.phase;
                            merged_phases += 1;
                        }
                        _ => phases.push(p),
                    }
                }
                (Op::Single(k), _) => {
                    if let Some(run) = open.take() {
                        ops.push(run);
                        fusable_single = None;
                    }
                    // Peephole: consecutive single-qubit kernels on the
                    // same qubit collapse into one 2×2 matrix product.
                    if let Some(i) = fusable_single {
                        if let Op::Single(prev) = &mut ops[i] {
                            if prev.qubit == k.qubit {
                                *prev = k.after(prev);
                                merged_singles += 1;
                                gate_to_op.push(i);
                                continue;
                            }
                        }
                    }
                    fusable_single = Some(ops.len());
                    gate_to_op.push(ops.len());
                    ops.push(Op::Single(k));
                    continue;
                }
                (fresh, _) => {
                    if let Some(run) = open.take() {
                        ops.push(run);
                    }
                    fusable_single = None;
                    open = Some(fresh);
                }
            }
            // The open run will become the op at index `ops.len()`.
            gate_to_op.push(ops.len());
        }
        if let Some(run) = open.take() {
            ops.push(run);
        }

        let sections = circuit
            .sections()
            .iter()
            .map(|s| {
                let range = if s.range.is_empty() {
                    let at = gate_to_op.get(s.range.start).copied().unwrap_or(ops.len());
                    at..at
                } else {
                    gate_to_op[s.range.start]..gate_to_op[s.range.end - 1] + 1
                };
                Section {
                    name: s.name.clone(),
                    range,
                }
            })
            .collect();

        let narrow_ops = (circuit.width() <= u64::BITS as usize)
            .then(|| ops.iter().map(Op::narrow).collect::<Vec<_>>());

        let stats = CompileStats {
            source_gates: circuit.len(),
            ops: ops.len(),
            kernel_steps: ops.iter().map(Op::fused_gates).sum(),
            cancelled_flips,
            merged_phases,
            merged_singles,
            narrow: narrow_ops.is_some(),
            scheduled: false,
            commuted_diagonals: 0,
            layers: 0,
            longest_ladder: longest_ladder(&ops),
        };

        CompiledCircuit {
            width: circuit.width(),
            ops,
            narrow_ops,
            sections,
            source_gates: circuit.len(),
            stats,
            schedule: None,
        }
    }

    /// The dispatch schedule (layers + per-op section weights), present
    /// when the DAG scheduler compiled this circuit.
    #[inline]
    pub fn schedule(&self) -> Option<&crate::dag::Schedule> {
        self.schedule.as_ref()
    }

    /// Circuit width (number of qubits).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The fused ops in order (`u128` masks, valid at any width).
    #[inline]
    pub fn ops(&self) -> &[CompiledOp] {
        &self.ops
    }

    /// The u64-specialised ops, present when the circuit width is ≤ 64.
    /// Element `i` is [`CompiledCircuit::ops`]`[i]` with truncated masks.
    #[inline]
    pub fn narrow_ops(&self) -> Option<&[CompiledOp64]> {
        self.narrow_ops.as_deref()
    }

    /// Section tags translated to op-index ranges.
    #[inline]
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Number of gates in the source circuit.
    #[inline]
    pub fn source_gates(&self) -> usize {
        self.source_gates
    }

    /// What the compile pass did (fusion and peephole accounting).
    #[inline]
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// Approximate resident heap footprint of the compiled artifact:
    /// both kernel-op vectors (wide and, when present, u64-narrowed),
    /// section tags, and the dispatch schedule. This is the byte figure
    /// a compiled-circuit cache charges against its ceiling — the same
    /// `memory_bytes` accounting idiom the backends expose for states.
    pub fn memory_bytes(&self) -> usize {
        fn op_bytes<K>(op: &Op<K>) -> usize {
            std::mem::size_of::<Op<K>>()
                + match op {
                    Op::Permutation(steps) => steps.capacity() * std::mem::size_of::<FlipStep<K>>(),
                    Op::Diagonal(phases) => phases.capacity() * std::mem::size_of::<PhaseStep<K>>(),
                    Op::Single(_) => 0,
                }
        }
        let mut bytes = std::mem::size_of::<Self>();
        bytes += self.ops.iter().map(op_bytes).sum::<usize>();
        if let Some(narrow) = &self.narrow_ops {
            bytes += narrow.iter().map(op_bytes).sum::<usize>();
        }
        bytes += self
            .sections
            .iter()
            .map(|s| std::mem::size_of::<Section>() + s.name.capacity())
            .sum::<usize>();
        if let Some(schedule) = &self.schedule {
            bytes += schedule.layers.capacity() * std::mem::size_of::<std::ops::Range<usize>>();
            bytes += schedule
                .attributions
                .iter()
                .map(|a| {
                    std::mem::size_of::<Vec<(usize, usize)>>()
                        + a.capacity() * std::mem::size_of::<(usize, usize)>()
                })
                .sum::<usize>();
        }
        bytes
    }

    /// Number of fused ops.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the compiled circuit has no ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Control;
    use crate::validate::validate_gate;

    /// The tests below assert *linear-fusion* behavior (runs closing at
    /// section boundaries, last-step-only peepholes), so they compile in
    /// explicit linear mode regardless of the `QMKP_QSIM_SCHEDULER` env
    /// toggle. Scheduler-mode behavior is tested separately.
    fn compile(c: &Circuit) -> CompiledCircuit {
        CompiledCircuit::compile_with(
            c,
            CompileOptions {
                dag_scheduler: false,
            },
        )
        .expect("test circuits are well-formed")
    }

    fn compile_scheduled(c: &Circuit) -> CompiledCircuit {
        CompiledCircuit::compile_with(
            c,
            CompileOptions {
                dag_scheduler: true,
            },
        )
        .expect("test circuits are well-formed")
    }

    #[test]
    fn masked_flip_is_an_involution() {
        let f = MaskedFlip {
            care: 0b011,
            want: 0b001,
            flip: 0b100,
        };
        for b in 0..8u128 {
            assert_eq!(f.apply(f.apply(b)), b);
        }
        assert_eq!(f.apply(0b001), 0b101);
        assert_eq!(f.apply(0b011), 0b011);
        // The narrowed step agrees with the wide one.
        let f64 = f.narrow();
        for b in 0..8u64 {
            assert_eq!(f64.apply(b) as u128, f.apply(b as u128));
        }
        assert_eq!(f64.widen(), f);
    }

    #[test]
    fn mcx_lowering_folds_polarities() {
        let g = Gate::Mcx {
            controls: vec![Control::pos(0), Control::neg(2)],
            target: 3,
        };
        let CompiledOp::Permutation(steps) = lower_gate(&g) else {
            panic!("MCX lowers to a permutation");
        };
        assert_eq!(
            steps,
            vec![MaskedFlip {
                care: 0b101,
                want: 0b001,
                flip: 0b1000
            }]
        );
    }

    #[test]
    fn mcz_lowering_includes_target_in_mask() {
        let g = Gate::Mcz {
            controls: vec![Control::neg(0)],
            target: 1,
        };
        let CompiledOp::Diagonal(phases) = lower_gate(&g) else {
            panic!("MCZ lowers to a diagonal");
        };
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].care, 0b11);
        assert_eq!(phases[0].want, 0b10);
        assert_eq!(phases[0].phase, Complex::real(-1.0));
    }

    #[test]
    fn runs_fuse_and_classes_split() {
        let mut c = Circuit::new(3);
        c.push_unchecked(Gate::X(0));
        c.push_unchecked(Gate::cnot(0, 1));
        c.push_unchecked(Gate::ccnot(0, 1, 2)); // 3-gate permutation run
        c.push_unchecked(Gate::Z(0));
        c.push_unchecked(Gate::Phase(1, 0.3)); // 2-gate diagonal run
        c.push_unchecked(Gate::H(2)); // single
        c.push_unchecked(Gate::X(1)); // new permutation run
        let cc = compile(&c);
        assert_eq!(cc.len(), 4);
        assert!(matches!(&cc.ops()[0], CompiledOp::Permutation(s) if s.len() == 3));
        assert!(matches!(&cc.ops()[1], CompiledOp::Diagonal(p) if p.len() == 2));
        assert!(matches!(&cc.ops()[2], CompiledOp::Single(k) if k.qubit == 2));
        assert!(matches!(&cc.ops()[3], CompiledOp::Permutation(s) if s.len() == 1));
        assert_eq!(cc.source_gates(), 7);
    }

    #[test]
    fn memory_bytes_tracks_compiled_payload() {
        let empty = compile(&Circuit::new(2));
        assert!(empty.memory_bytes() >= std::mem::size_of::<CompiledCircuit>());

        let mut c = Circuit::new(3);
        c.begin_section("payload");
        for q in 0..3 {
            c.push_unchecked(Gate::X(q));
            c.push_unchecked(Gate::Phase(q, 0.1));
            c.push_unchecked(Gate::H(q));
        }
        c.end_section();
        let loaded = compile(&c);
        assert!(
            loaded.memory_bytes() > empty.memory_bytes(),
            "ops, sections, and steps must be charged"
        );
        // Schedule metadata is charged too: a scheduled artifact with the
        // same ops weighs more than its own payload alone would.
        let scheduled = compile_scheduled(&c);
        if let Some(schedule) = scheduled.schedule() {
            let layer_bytes =
                schedule.layers.capacity() * std::mem::size_of::<std::ops::Range<usize>>();
            assert!(scheduled.memory_bytes() > layer_bytes);
        }
    }

    #[test]
    fn section_boundaries_split_runs() {
        let mut c = Circuit::new(2);
        c.begin_section("a");
        c.push_unchecked(Gate::X(0));
        c.push_unchecked(Gate::X(1));
        c.begin_section("b");
        c.push_unchecked(Gate::cnot(0, 1));
        c.end_section();
        let cc = compile(&c);
        // Without the boundary all three would fuse into one permutation.
        assert_eq!(cc.len(), 2);
        assert_eq!(cc.sections().len(), 2);
        assert_eq!(cc.sections()[0].name, "a");
        assert_eq!(cc.sections()[0].range, 0..1);
        assert_eq!(cc.sections()[1].name, "b");
        assert_eq!(cc.sections()[1].range, 1..2);
    }

    #[test]
    fn gates_outside_sections_fuse_between_boundaries() {
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::X(0)); // before any section
        c.begin_section("s");
        c.push_unchecked(Gate::X(1));
        c.end_section();
        c.push_unchecked(Gate::X(0)); // after
        c.push_unchecked(Gate::X(1));
        let cc = compile(&c);
        assert_eq!(cc.len(), 3);
        assert_eq!(cc.sections()[0].range, 1..2);
        assert!(matches!(&cc.ops()[2], CompiledOp::Permutation(s) if s.len() == 2));
    }

    #[test]
    fn adjacent_inverse_flips_cancel() {
        // A compute/uncompute mirror: the cancellations cascade from the
        // turnaround until the whole run is gone.
        let mut c = Circuit::new(4);
        c.push_unchecked(Gate::cnot(0, 1));
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.push_unchecked(Gate::ccnot(1, 2, 3));
        c.push_unchecked(Gate::ccnot(1, 2, 3));
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.push_unchecked(Gate::cnot(0, 1));
        let cc = compile(&c);
        assert_eq!(cc.len(), 1);
        assert!(matches!(&cc.ops()[0], CompiledOp::Permutation(s) if s.is_empty()));
        assert_eq!(cc.source_gates(), 6);
    }

    #[test]
    fn section_boundaries_block_cancellation() {
        // The same mirror, but with a section boundary at the turnaround:
        // the runs close there and the pairs survive, keeping per-section
        // cost attribution faithful to what actually executes.
        let mut c = Circuit::new(3);
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.begin_section("s");
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.end_section();
        let cc = compile(&c);
        assert_eq!(cc.len(), 2);
        assert!(matches!(&cc.ops()[0], CompiledOp::Permutation(s) if s.len() == 1));
        assert!(matches!(&cc.ops()[1], CompiledOp::Permutation(s) if s.len() == 1));
    }

    #[test]
    fn same_mask_phases_merge() {
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::Phase(0, 0.4));
        c.push_unchecked(Gate::Phase(0, 0.5));
        c.push_unchecked(Gate::Z(1));
        let cc = compile(&c);
        assert_eq!(cc.len(), 1);
        let CompiledOp::Diagonal(phases) = &cc.ops()[0] else {
            panic!("phases lower to a diagonal");
        };
        assert_eq!(phases.len(), 2);
        assert!((phases[0].phase - Complex::from_phase(0.9)).norm() < 1e-12);
        assert_eq!(phases[1].phase, Complex::real(-1.0));
    }

    #[test]
    fn same_qubit_singles_fuse_into_one_product() {
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::H(0));
        c.push_unchecked(Gate::Ry(0, 0.7));
        c.push_unchecked(Gate::H(0));
        let cc = compile(&c);
        assert_eq!(cc.len(), 1, "three same-qubit singles fuse into one");
        let CompiledOp::Single(k) = &cc.ops()[0] else {
            panic!("singles stay single");
        };
        // H · Ry(θ) · H: compare against the product computed by hand.
        let expected = SingleQubit::hadamard(0)
            .after(&SingleQubit::ry(0, 0.7))
            .after(&SingleQubit::hadamard(0));
        for (a, b) in [
            (k.m00, expected.m00),
            (k.m01, expected.m01),
            (k.m10, expected.m10),
            (k.m11, expected.m11),
        ] {
            assert!((a - b).norm() < 1e-12);
        }
        assert_eq!(cc.stats().merged_singles, 2);
    }

    #[test]
    fn different_qubit_singles_do_not_fuse() {
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::H(0));
        c.push_unchecked(Gate::H(1));
        c.push_unchecked(Gate::H(0));
        let cc = compile(&c);
        assert_eq!(cc.len(), 3);
        assert_eq!(cc.stats().merged_singles, 0);
    }

    #[test]
    fn section_boundaries_block_single_fusion() {
        let mut c = Circuit::new(1);
        c.push_unchecked(Gate::H(0));
        c.begin_section("s");
        c.push_unchecked(Gate::H(0));
        c.end_section();
        let cc = compile(&c);
        assert_eq!(cc.len(), 2, "fusion never crosses a section boundary");
        assert_eq!(cc.stats().merged_singles, 0);
    }

    #[test]
    fn intervening_ops_block_single_fusion() {
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::H(0));
        c.push_unchecked(Gate::X(1));
        c.push_unchecked(Gate::H(0));
        let cc = compile(&c);
        assert_eq!(cc.len(), 3);
        assert_eq!(cc.stats().merged_singles, 0);
    }

    #[test]
    fn narrow_ops_emitted_for_small_widths_only() {
        let mut c = Circuit::new(64);
        c.push_unchecked(Gate::H(0));
        c.push_unchecked(Gate::ccnot(0, 1, 63));
        c.push_unchecked(Gate::Z(63));
        let cc = compile(&c);
        let narrow = cc.narrow_ops().expect("width 64 has a u64 fast path");
        assert_eq!(narrow.len(), cc.len());
        assert!(cc.stats().narrow);
        for (n, w) in narrow.iter().zip(cc.ops()) {
            assert_eq!(&n.widen(), w, "narrow ops are the wide ops truncated");
        }

        let mut wide = Circuit::new(65);
        wide.push_unchecked(Gate::H(64));
        let cc = compile(&wide);
        assert!(cc.narrow_ops().is_none());
        assert!(!cc.stats().narrow);
    }

    #[test]
    fn compile_stats_account_for_peepholes() {
        let mut c = Circuit::new(3);
        c.push_unchecked(Gate::cnot(0, 1));
        c.push_unchecked(Gate::cnot(0, 1)); // cancels with previous
        c.push_unchecked(Gate::Phase(0, 0.4));
        c.push_unchecked(Gate::Phase(0, 0.5)); // merges into previous
        c.push_unchecked(Gate::H(2));
        let cc = compile(&c);
        let s = cc.stats();
        assert_eq!(s.source_gates, 5);
        assert_eq!(s.ops, cc.len());
        assert_eq!(s.cancelled_flips, 2);
        assert_eq!(s.merged_phases, 1);
        assert_eq!(
            s.kernel_steps,
            cc.ops().iter().map(Op::fused_gates).sum::<usize>()
        );
    }

    #[test]
    fn empty_circuit_compiles_to_nothing() {
        let cc = compile(&Circuit::new(4));
        assert!(cc.is_empty());
        assert_eq!(cc.width(), 4);
    }

    #[test]
    fn overwide_circuit_is_a_structured_error() {
        let c = Circuit::new(129);
        match CompiledCircuit::compile(&c) {
            Err(CompileError::WidthTooLarge { width, max }) => {
                assert_eq!((width, max), (129, 128));
            }
            other => panic!("expected WidthTooLarge, got {:?}", other.map(|_| ())),
        }
        // Width 128 itself is fine.
        assert!(CompiledCircuit::compile(&Circuit::new(128)).is_ok());
    }

    #[test]
    fn malformed_gates_are_structured_errors() {
        // `Circuit::push` rejects these before they reach the compiler;
        // the compiler still guards on its own so a bypassed invariant is
        // an error, not a corrupted state or a panic.
        assert_eq!(
            validate_gate(&Gate::X(5), 4),
            Err(CompileError::QubitOutOfRange { qubit: 5, width: 4 })
        );
        assert_eq!(
            validate_gate(&Gate::cnot(2, 2), 4),
            Err(CompileError::DuplicateQubit(2))
        );
        assert_eq!(validate_gate(&Gate::cnot(0, 2), 4), Ok(()));
    }

    #[test]
    fn scheduler_commutes_diagonals_past_a_permutation_ladder() {
        // Hand-built ladder: X-walls around an MCZ — the diffusion shape.
        // Linear fusion keeps three ops (perm, diag, perm) and cannot
        // cancel the walls; the scheduler conjugates the MCZ through the
        // second wall, so the walls meet and annihilate, leaving just the
        // conjugated diagonal.
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push_unchecked(Gate::X(q));
        }
        c.push_unchecked(Gate::Mcz {
            controls: vec![Control::pos(0), Control::pos(1)],
            target: 2,
        });
        for q in 0..3 {
            c.push_unchecked(Gate::X(q));
        }

        let linear = compile(&c);
        assert_eq!(linear.len(), 3);
        assert_eq!(linear.stats().cancelled_flips, 0);

        let cc = compile_scheduled(&c);
        assert_eq!(cc.len(), 1, "walls cancel, diagonal survives");
        let CompiledOp::Diagonal(phases) = &cc.ops()[0] else {
            panic!("the surviving op is the conjugated diagonal");
        };
        // MCZ fires on |111⟩; conjugated through X⊗X⊗X it fires on |000⟩.
        assert_eq!(
            phases,
            &vec![MaskedPhase {
                care: 0b111,
                want: 0b000,
                phase: Complex::real(-1.0),
            }]
        );
        let s = cc.stats();
        assert!(s.scheduled);
        assert_eq!(s.cancelled_flips, 6, "three X pairs cancelled");
        assert_eq!(s.commuted_diagonals, 3, "one diagonal sunk past each X");
        assert_eq!(s.layers, 1);
    }

    #[test]
    fn scheduler_fuses_ladders_across_section_boundaries() {
        // Linear fusion must close the run at the boundary; the scheduler
        // fuses through it and attributes steps to both sections.
        let mut c = Circuit::new(3);
        c.begin_section("a");
        c.push_unchecked(Gate::cnot(0, 1));
        c.begin_section("b");
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.end_section();
        assert_eq!(compile(&c).len(), 2);

        let cc = compile_scheduled(&c);
        assert_eq!(cc.len(), 1);
        assert_eq!(cc.stats().longest_ladder, 2);
        let schedule = cc.schedule().expect("scheduled compiles carry layers");
        assert_eq!(schedule.layers, vec![0..1]);
        assert_eq!(schedule.attributions[0], vec![(0, 1), (1, 1)]);
        // Covering section ranges overlap on the fused op.
        assert_eq!(cc.sections()[0].range, 0..1);
        assert_eq!(cc.sections()[1].range, 0..1);
    }

    #[test]
    fn scheduler_refuses_unsound_commutes() {
        // Z on the target of a CNOT does not commute to a masked step:
        // the runs must flush in program order instead.
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::Z(1));
        c.push_unchecked(Gate::cnot(0, 1));
        let cc = compile_scheduled(&c);
        assert_eq!(cc.len(), 2);
        assert!(matches!(&cc.ops()[0], CompiledOp::Diagonal(_)));
        assert!(matches!(&cc.ops()[1], CompiledOp::Permutation(_)));
        assert_eq!(cc.stats().commuted_diagonals, 0);
    }

    #[test]
    fn scheduler_keeps_singles_ordered_against_overlapping_ops() {
        // H(0) then CNOT(0→1): the flip overlaps the pending single, so
        // the single must flush first and program order is preserved.
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::H(0));
        c.push_unchecked(Gate::cnot(0, 1));
        let cc = compile_scheduled(&c);
        assert_eq!(cc.len(), 2);
        assert!(matches!(&cc.ops()[0], CompiledOp::Single(k) if k.qubit == 0));
        assert!(matches!(&cc.ops()[1], CompiledOp::Permutation(_)));
    }

    #[test]
    fn scheduler_fuses_singles_across_disjoint_intermediates() {
        // H(0), X(1), H(0): the X is disjoint from qubit 0, so the two
        // Hadamards fuse (into the identity) even though linear fusion is
        // blocked by the intervening op.
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::H(0));
        c.push_unchecked(Gate::X(1));
        c.push_unchecked(Gate::H(0));
        assert_eq!(compile(&c).stats().merged_singles, 0);
        let cc = compile_scheduled(&c);
        assert_eq!(cc.stats().merged_singles, 1);
        assert_eq!(cc.len(), 2);
    }

    #[test]
    fn scheduled_layers_partition_the_ops_disjointly() {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.push_unchecked(Gate::H(q));
        }
        c.push_unchecked(Gate::ccnot(0, 1, 2));
        c.push_unchecked(Gate::ccnot(3, 4, 5));
        c.push_unchecked(Gate::Z(0));
        let cc = compile_scheduled(&c);
        let schedule = cc.schedule().unwrap();
        // Layers tile 0..ops.len() in order.
        let mut next = 0;
        for l in &schedule.layers {
            assert_eq!(l.start, next);
            assert!(l.end > l.start);
            next = l.end;
        }
        assert_eq!(next, cc.len());
        assert_eq!(cc.stats().layers, schedule.layers.len());
        // Attribution weights total the surviving kernel steps.
        let attributed: usize = schedule
            .attributions
            .iter()
            .flatten()
            .map(|&(_, w)| w)
            .sum();
        assert_eq!(attributed, cc.stats().kernel_steps);
    }

    #[test]
    fn scheduler_env_toggle_parses_disable_values() {
        // Can't mutate the process env safely in a threaded test binary;
        // exercise the parse contract through explicit options instead.
        let mut c = Circuit::new(2);
        c.push_unchecked(Gate::cnot(0, 1));
        let on = compile_scheduled(&c);
        assert!(on.stats().scheduled);
        assert!(on.schedule().is_some());
        let off = compile(&c);
        assert!(!off.stats().scheduled);
        assert!(off.schedule().is_none());
        assert_eq!(off.stats().layers, 0);
    }

    #[test]
    fn compile_error_display_is_informative() {
        assert!(CompileError::WidthTooLarge {
            width: 200,
            max: 128
        }
        .to_string()
        .contains("200"));
        assert!(CompileError::QubitOutOfRange { qubit: 9, width: 4 }
            .to_string()
            .contains("qubit 9"));
        assert!(CompileError::DuplicateQubit(3)
            .to_string()
            .contains("qubit 3"));
    }
}
