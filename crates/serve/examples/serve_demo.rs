//! Serves the paper's fig-1 instance to a handful of simulated tenants
//! and prints each response plus the cache's hit/miss ledger.
//!
//! ```text
//! cargo run -p qmkp-serve --example serve_demo
//! ```
//!
//! Set `QMKP_OBS=1` (or `QMKP_OBS_REPORT=serve_demo.json`,
//! `QMKP_OBS_METRICS=serve_demo.prom`) to capture the run's telemetry.

use qmkp::graph::gen::paper_fig1_graph;
use qmkp_obs::Session;
use qmkp_serve::{ServiceConfig, SolveRequest, SolveService};

fn main() {
    let session = Session::from_env("serve_demo");
    let service = SolveService::new(ServiceConfig::default());

    // Three tenants per k: the first compiles the oracles, the repeats
    // ride the cache.
    let mut tickets = Vec::new();
    for round in 0..3 {
        for k in 1..=3 {
            let ticket = service
                .submit(SolveRequest::new(paper_fig1_graph(), k))
                .expect("default queues are deep enough for 9 requests");
            tickets.push((round, k, ticket));
        }
    }

    for (round, k, ticket) in tickets {
        let lane = ticket.lane();
        let response = ticket.wait();
        match response.outcome {
            Ok(out) => println!(
                "round {round} k={k} [{} lane] -> |best| = {} via {}{}",
                lane.name(),
                out.best.len(),
                out.backend.name(),
                if out.degraded { " (degraded)" } else { "" },
            ),
            Err(e) => println!("round {round} k={k} [{} lane] -> error: {e}", lane.name()),
        }
    }

    let stats = service.cache().stats();
    println!(
        "cache: {} hits, {} misses, {} compiles, {} evictions, {} bytes resident",
        stats.hits, stats.misses, stats.compiles, stats.evictions, stats.bytes
    );
    session.finish_with(service.report("serve_demo"));
}
