//! End-to-end acceptance test for the observability layer: a traced
//! in-process qMKP run must emit a valid JSONL trace containing spans for
//! circuit compilation, every binary-search probe, and every Grover
//! iteration with per-section children, plus gauges for state memory and
//! support size — and the two accounting paths (spans vs `SectionTimes`)
//! must agree.

use qmkp::core::{qmkp as run_qmkp, QmkpConfig};
use qmkp::obs::{json, Collector, Event, JsonlSink, Sink, Summary};
use std::collections::HashMap;
use std::sync::Arc;

#[test]
fn traced_qmkp_run_emits_valid_jsonl_with_expected_structure() {
    let path = std::env::temp_dir().join(format!("qmkp_obs_trace_{}.jsonl", std::process::id()));
    let collector = Arc::new(Collector::for_current_thread());
    let jsonl = Arc::new(JsonlSink::create(&path).expect("create trace file"));
    let g1 = qmkp::obs::attach(collector.clone());
    let g2 = qmkp::obs::attach(jsonl.clone() as Arc<dyn Sink>);

    let g = qmkp::graph::gen::paper_fig1_graph();
    let out = run_qmkp(&g, 2, &QmkpConfig::default());
    assert_eq!(out.best.len(), 4, "Fig. 1 maximum 2-plex has size 4");

    jsonl.flush();
    drop(g2);
    drop(g1);

    // 1. Every JSONL line parses and carries `type` + `thread`.
    let body = std::fs::read_to_string(&path).expect("read trace");
    assert!(!body.is_empty(), "trace must not be empty");
    for (i, line) in body.lines().enumerate() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}: {line}", i + 1));
        assert!(v.get("type").is_some(), "line {} missing type", i + 1);
        assert!(v.get("thread").is_some(), "line {} missing thread", i + 1);
    }
    let _ = std::fs::remove_file(&path);

    // 2. The expected span families are present.
    let events = collector.events();
    let mut starts: HashMap<u64, String> = HashMap::new();
    let mut parents: HashMap<u64, u64> = HashMap::new();
    for ev in &events {
        if let Event::SpanStart {
            id, parent, name, ..
        } = ev
        {
            starts.insert(*id, name.clone());
            parents.insert(*id, *parent);
        }
    }
    let has_span = |prefix: &str| starts.values().any(|n| n.starts_with(prefix));
    assert!(has_span("qsim.compile"), "compile spans");
    assert!(has_span("core.qmkp.run"), "top-level qMKP span");
    assert!(has_span("core.qmkp.probe[t="), "binary-search probe spans");
    assert!(has_span("core.qtkp.run"), "qTKP spans");
    assert!(has_span("core.grover.iteration"), "Grover iteration spans");
    assert!(has_span("core.grover.section."), "per-section child spans");

    // 3. Sections are children of a Grover iteration; probes are children
    //    of the qMKP run.
    let child_of = |child_prefix: &str, parent_name: &str| {
        starts.iter().any(|(id, name)| {
            name.starts_with(child_prefix)
                && parents
                    .get(id)
                    .and_then(|p| starts.get(p))
                    .is_some_and(|pn| pn == parent_name)
        })
    };
    assert!(
        child_of("core.grover.section.", "core.grover.iteration"),
        "sections must nest under an iteration span"
    );
    assert!(
        child_of("core.qmkp.probe[t=", "core.qmkp.run"),
        "probes must nest under the qMKP run span"
    );

    // 4. Gauges for state memory and support size were recorded.
    assert!(collector.last_gauge("core.grover.support").is_some());
    assert!(
        collector
            .last_gauge("core.grover.mem_bytes")
            .is_some_and(|b| b > 0.0),
        "memory gauge must be positive"
    );

    // 5. The summary renders the hierarchy without panicking and shows
    //    the qMKP root.
    let rendered = Summary::from_events(&events).render();
    assert!(rendered.contains("core.qmkp.run"), "{rendered}");

    // 6. Counter totals line up with the outcome.
    assert!(collector.counter_total("core.qmkp.probes") > 0);
    assert!(collector.counter_total("core.qtkp.attempts") > 0);
}
