//! GRASP — greedy randomized adaptive search for MKP.
//!
//! The approximation family of the paper's related work (Gujjula &
//! Balasundaram; Miao et al.): repeat {randomized greedy construction →
//! local search} and keep the best. Used in this workspace as a fast
//! incumbent provider for the exact solvers and as an extra baseline.

use qmkp_graph::plex::{greedy_extend, is_kplex};
use qmkp_graph::{Graph, VertexSet};
use qmkp_rt::{RtContext, RtError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Runs GRASP for `iterations` rounds with restricted-candidate-list
/// parameter `alpha ∈ [0, 1]` (0 = pure greedy, 1 = pure random) and a
/// seed. Returns the best k-plex found.
///
/// # Panics
/// Panics if `k == 0` or `alpha` is outside `[0, 1]`.
pub fn grasp_kplex(g: &Graph, k: usize, iterations: usize, alpha: f64, seed: u64) -> VertexSet {
    assert!(k >= 1, "k must be ≥ 1");
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let span = qmkp_obs::span("classical.grasp.run");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = VertexSet::EMPTY;
    for _ in 0..iterations.max(1) {
        qmkp_obs::counter("classical.grasp.restarts", 1);
        let p = construct(g, k, alpha, &mut rng);
        let p = local_search(g, k, p);
        if p.len() > best.len() {
            best = p;
        }
    }
    qmkp_obs::gauge("classical.grasp.best_size", best.len() as f64);
    span.finish();
    debug_assert!(is_kplex(g, best, k));
    best
}

/// Budgeted/cancellable GRASP with an incumbent-export hook.
///
/// Identical search to [`grasp_kplex`] given the same parameters, plus:
/// the context (and, under the `failpoints` feature, the
/// `classical.grasp.iter` site) is polled once per restart, and every
/// strict improvement of the running best is published through
/// `on_best` — the portfolio uses this to seed SQA's initial state with
/// GRASP's best solution while both are still running.
///
/// Invalid parameters return [`RtError::InvalidConfig`] instead of
/// panicking.
pub fn grasp_kplex_ctx(
    g: &Graph,
    k: usize,
    iterations: usize,
    alpha: f64,
    seed: u64,
    ctx: &RtContext,
    mut on_best: Option<&mut dyn FnMut(VertexSet)>,
) -> Result<VertexSet, RtError> {
    if k == 0 {
        return Err(RtError::InvalidConfig("grasp: k must be ≥ 1".into()));
    }
    if !(0.0..=1.0).contains(&alpha) {
        return Err(RtError::InvalidConfig(format!(
            "grasp: alpha must be in [0, 1], got {alpha}"
        )));
    }
    let span = qmkp_obs::span("classical.grasp.run");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = VertexSet::EMPTY;
    for _ in 0..iterations.max(1) {
        if let Err(e) = qmkp_rt::failpoint::check("classical.grasp.iter").and_then(|()| ctx.check())
        {
            span.finish();
            return Err(e);
        }
        qmkp_obs::counter("classical.grasp.restarts", 1);
        let p = construct(g, k, alpha, &mut rng);
        let p = local_search(g, k, p);
        if p.len() > best.len() {
            best = p;
            if let Some(publish) = on_best.as_deref_mut() {
                publish(best);
            }
        }
    }
    qmkp_obs::gauge("classical.grasp.best_size", best.len() as f64);
    span.finish();
    debug_assert!(is_kplex(g, best, k));
    Ok(best)
}

/// Randomized greedy construction: repeatedly add a random vertex from the
/// restricted candidate list (the top `⌈alpha·|cands|⌉` extendable
/// vertices by degree, at least 1).
fn construct<R: Rng>(g: &Graph, k: usize, alpha: f64, rng: &mut R) -> VertexSet {
    let mut p = VertexSet::EMPTY;
    loop {
        let mut cands: Vec<usize> = (0..g.n())
            .filter(|&v| !p.contains(v) && is_kplex(g, p.with(v), k))
            .collect();
        if cands.is_empty() {
            return p;
        }
        cands.sort_by_key(|&v| std::cmp::Reverse(g.degree_in(v, p) * 100 + g.degree(v)));
        let rcl = ((alpha * cands.len() as f64).ceil() as usize).clamp(1, cands.len());
        let v = *cands[..rcl].choose(rng).expect("rcl non-empty");
        p.insert(v);
    }
}

/// (1,1)-swap local search: try to remove one vertex and add two.
fn local_search(g: &Graph, k: usize, mut p: VertexSet) -> VertexSet {
    let mut improved = true;
    while improved {
        improved = false;
        // First: plain extension (may be possible after swaps).
        let extended = greedy_extend(g, p, k);
        if extended.len() > p.len() {
            p = extended;
            improved = true;
            continue;
        }
        'outer: for out in p.iter() {
            let without = p.without(out);
            let additions: Vec<usize> = (0..g.n())
                .filter(|&v| !p.contains(v) && is_kplex(g, without.with(v), k))
                .collect();
            for (i, &a) in additions.iter().enumerate() {
                for &b in &additions[i + 1..] {
                    let candidate = without.with(a).with(b);
                    if is_kplex(g, candidate, k) {
                        p = candidate;
                        improved = true;
                        break 'outer;
                    }
                }
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::max_kplex_naive;
    use qmkp_graph::gen::{gnm, paper_fig1_graph, planted_kplex};

    #[test]
    fn result_is_always_a_kplex() {
        for seed in 0..4 {
            let g = gnm(12, 30, seed).unwrap();
            for k in 1..=3 {
                let p = grasp_kplex(&g, k, 10, 0.3, seed);
                assert!(is_kplex(&g, p, k));
                assert!(!p.is_empty());
            }
        }
    }

    #[test]
    fn finds_the_optimum_on_small_graphs() {
        let g = paper_fig1_graph();
        let p = grasp_kplex(&g, 2, 30, 0.3, 7);
        assert_eq!(p.len(), max_kplex_naive(&g, 2).len());
    }

    #[test]
    fn recovers_planted_solutions() {
        let (g, plant) = planted_kplex(20, 9, 2, 0.2, 3).unwrap();
        let p = grasp_kplex(&g, 2, 40, 0.3, 11);
        assert!(p.len() >= plant.len(), "{} < {}", p.len(), plant.len());
    }

    #[test]
    fn pure_greedy_is_deterministic() {
        let g = gnm(10, 20, 1).unwrap();
        let a = grasp_kplex(&g, 2, 5, 0.0, 1);
        let b = grasp_kplex(&g, 2, 5, 0.0, 2);
        assert_eq!(a, b, "alpha = 0 ignores randomness");
    }

    #[test]
    fn ctx_variant_matches_legacy_and_publishes_incumbents() {
        let g = gnm(12, 30, 2).unwrap();
        let ctx = qmkp_rt::RtContext::unlimited();
        let mut published: Vec<VertexSet> = Vec::new();
        let mut publish = |p: VertexSet| published.push(p);
        let got = grasp_kplex_ctx(&g, 2, 10, 0.3, 5, &ctx, Some(&mut publish)).unwrap();
        assert_eq!(got, grasp_kplex(&g, 2, 10, 0.3, 5));
        assert!(!published.is_empty(), "improvements must be published");
        assert_eq!(*published.last().unwrap(), got);
        for p in &published {
            assert!(is_kplex(&g, *p, 2));
        }
    }

    #[test]
    fn ctx_variant_rejects_bad_parameters_structurally() {
        let g = paper_fig1_graph();
        let ctx = qmkp_rt::RtContext::unlimited();
        assert!(matches!(
            grasp_kplex_ctx(&g, 0, 1, 0.3, 0, &ctx, None),
            Err(qmkp_rt::RtError::InvalidConfig(_))
        ));
        assert!(matches!(
            grasp_kplex_ctx(&g, 2, 1, 1.5, 0, &ctx, None),
            Err(qmkp_rt::RtError::InvalidConfig(_))
        ));
    }

    #[test]
    fn ctx_variant_surfaces_cancellation() {
        let g = paper_fig1_graph();
        let token = qmkp_rt::CancelToken::new();
        token.cancel();
        let ctx = qmkp_rt::RtContext::new(qmkp_rt::Budget::unlimited(), token);
        assert_eq!(
            grasp_kplex_ctx(&g, 2, 10, 0.3, 0, &ctx, None),
            Err(qmkp_rt::RtError::Cancelled)
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let g = paper_fig1_graph();
        let _ = grasp_kplex(&g, 2, 1, 1.5, 0);
    }
}
