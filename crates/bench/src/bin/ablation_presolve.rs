//! Ablation: persistency presolve in the MILP branch & bound across the
//! annealing datasets — fixed variables and node-count reduction.

use qmkp_bench::{print_table, Provenance};
use qmkp_graph::gen::{paper_anneal_dataset, ANNEAL_DATASETS};
use qmkp_milp::{minimize_qubo, BnbConfig};
use qmkp_qubo::{presolve, MkpQubo, MkpQuboParams};
use std::time::Duration;

fn main() {
    let mut prov = Provenance::start("ablation_presolve");
    prov.config("k", 3);
    prov.config("r", 2.0);
    prov.config("time_limit_ms", 500);
    for &(n, m) in &ANNEAL_DATASETS[..3] {
        prov.config("dataset", format!("D_{{{n},{m}}}"));
    }
    let mut rows = Vec::new();
    for &(n, m) in &ANNEAL_DATASETS[..3] {
        let g = paper_anneal_dataset(n, m);
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
        let pre = presolve(&mq.model);
        let budget = Duration::from_millis(500);
        let plain = minimize_qubo(
            &mq.model,
            &BnbConfig {
                presolve: false,
                time_limit: budget,
                ..BnbConfig::default()
            },
        );
        let with = minimize_qubo(
            &mq.model,
            &BnbConfig {
                time_limit: budget,
                ..BnbConfig::default()
            },
        );
        prov.outcome(
            format!("presolve[D_{{{n},{m}}}]"),
            format!(
                "fixed={} nodes={}→{}",
                pre.num_fixed(),
                plain.nodes,
                with.nodes
            ),
        );
        rows.push(vec![
            format!("D_{{{n},{m}}}"),
            mq.num_vars().to_string(),
            pre.num_fixed().to_string(),
            plain.nodes.to_string(),
            with.nodes.to_string(),
            format!("{:.0}", plain.best_energy),
            format!("{:.0}", with.best_energy),
        ]);
    }
    print_table(
        "Ablation — MILP presolve (500 ms budget, k = 3, R = 2)",
        &[
            "dataset",
            "vars",
            "fixed",
            "nodes (plain)",
            "nodes (presolve)",
            "best (plain)",
            "best (presolve)",
        ],
        &rows,
    );
    prov.finish();
}
