//! Qubit layout of the qTKP oracle.
//!
//! One allocation covers everything the paper's Figures 6, 9 and 11 wire
//! up. With `n` vertices, `m̄` complement edges, counter width
//! `w_c = ⌈log₂(max(Δ̄, k-1) + 1)⌉` and size width
//! `w_s = ⌈log₂(max(n, T) + 1)⌉`:
//!
//! | register      | width    | paper notation       |
//! |---------------|----------|----------------------|
//! | `vertices`    | n        | `|v_1⟩ … |v_n⟩`      |
//! | `edges`       | m̄        | `|e_1⟩ … |e_m̄⟩`     |
//! | `counters[i]` | w_c each | `|c_i⟩`              |
//! | `k_minus_1`   | w_c      | `|k-1⟩`              |
//! | `d_flags`     | n        | `|d_1⟩ … |d_n⟩`      |
//! | `cplex`       | 1        | `|cplex⟩`            |
//! | `size`        | w_s      | `|size⟩`             |
//! | `t_reg`       | w_s      | `|T⟩`                |
//! | `size_ge_t`   | 1        | `|size ≥ T⟩`         |
//! | `oracle`      | 1        | `|O⟩`                |
//! | `cmp_*`       | 3·w_c + 3·w_s | comparator scratch (shared, self-cleaning) |
//!
//! Total width is `O(n log n)` *beyond* the `O(n²)` edge qubits, matching
//! the paper's `O(n² log n)` space bound (the paper counts per-vertex
//! dedicated adder scratch; we reuse one shared comparator scratch via
//! compute-copy-uncompute, which only shrinks the constant).

use qmkp_arith::{counter_width, ComparatorScratch};
use qmkp_graph::Graph;
use qmkp_qsim::{QubitAllocator, Register};

/// The complete qubit layout for one oracle instance.
#[derive(Debug, Clone)]
pub struct OracleLayout {
    /// Number of graph vertices.
    pub n: usize,
    /// The k of k-plex.
    pub k: usize,
    /// The size threshold T.
    pub t: usize,
    /// Vertex qubits (`|v_i⟩`), one per vertex; qubit `i` ⇔ vertex `i`.
    pub vertices: Register,
    /// Complement-edge ancillas (`|e_j⟩`), aligned with [`OracleLayout::edge_pairs`].
    pub edges: Register,
    /// The complement edges `(u, v)` with `u < v`, in register order.
    pub edge_pairs: Vec<(usize, usize)>,
    /// Per-vertex degree counters (`|c_i⟩`), each `counter_bits` wide.
    pub counters: Vec<Register>,
    /// The `|k-1⟩` constant register.
    pub k_minus_1: Register,
    /// Per-vertex comparison flags (`|d_i⟩`).
    pub d_flags: Register,
    /// The `|cplex⟩` qubit.
    pub cplex: usize,
    /// The subgraph size counter (`|size⟩`).
    pub size: Register,
    /// The `|T⟩` constant register.
    pub t_reg: Register,
    /// The `|size ≥ T⟩` flag qubit.
    pub size_ge_t: usize,
    /// The oracle qubit `|O⟩`.
    pub oracle: usize,
    /// Shared comparator scratch for degree comparisons (width `counter_bits`).
    pub cmp_degree: ComparatorScratch,
    /// Shared comparator scratch for the size comparison (width `size_bits`).
    pub cmp_size: ComparatorScratch,
    /// Width of each degree counter in qubits.
    pub counter_bits: usize,
    /// Width of the size register in qubits.
    pub size_bits: usize,
    /// Total circuit width.
    pub width: usize,
}

impl OracleLayout {
    /// Lays out the oracle for finding k-plexes of size ≥ `t` in `g`.
    ///
    /// `g` is the *original* graph; the layout internally works on its
    /// complement (the k-cplex reformulation of Section III-A).
    ///
    /// # Panics
    /// Panics if `k == 0` or `t == 0` or `t > n` or the graph is empty.
    pub fn new(g: &Graph, k: usize, t: usize) -> Self {
        let layout = Self::build(g, k, t);
        assert!(
            layout.width <= 128,
            "oracle needs {} qubits; the sparse backend supports 128 \
             (reduce the graph first — see qmkp_graph::reduce)",
            layout.width
        );
        layout
    }

    /// Like [`OracleLayout::new`], but returns `None` instead of
    /// panicking when the oracle would exceed the 128-qubit backend
    /// limit — the preflight probe of the degradation ladder.
    ///
    /// # Panics
    /// Panics on the same argument violations as [`OracleLayout::new`]
    /// (`k == 0`, `t` outside `[1, n]`, empty graph).
    pub fn try_new(g: &Graph, k: usize, t: usize) -> Option<Self> {
        let layout = Self::build(g, k, t);
        (layout.width <= 128).then_some(layout)
    }

    fn build(g: &Graph, k: usize, t: usize) -> Self {
        let n = g.n();
        assert!(n > 0, "graph must be non-empty");
        assert!(k >= 1, "k must be ≥ 1");
        assert!((1..=n).contains(&t), "threshold T must be in [1, n]");

        let gc = g.complement();
        let edge_pairs: Vec<(usize, usize)> = gc.edges().collect();
        let max_cdeg = (0..n).map(|v| gc.degree(v)).max().unwrap_or(0);
        let counter_bits = counter_width(max_cdeg.max(k - 1));
        let size_bits = counter_width(n.max(t));

        let mut alloc = QubitAllocator::new();
        let vertices = alloc.alloc("v", n);
        let edges = alloc.alloc("e", edge_pairs.len());
        let counters: Vec<Register> = (0..n)
            .map(|i| alloc.alloc(&format!("c{i}"), counter_bits))
            .collect();
        let k_minus_1 = alloc.alloc("k-1", counter_bits);
        let d_flags = alloc.alloc("d", n);
        let cplex = alloc.alloc_one("cplex");
        let size = alloc.alloc("size", size_bits);
        let t_reg = alloc.alloc("T", size_bits);
        let size_ge_t = alloc.alloc_one("size>=T");
        let oracle = alloc.alloc_one("O");
        let cmp_degree = ComparatorScratch::alloc(&mut alloc, counter_bits);
        let cmp_size = ComparatorScratch::alloc(&mut alloc, size_bits);
        let width = alloc.width();

        OracleLayout {
            n,
            k,
            t,
            vertices,
            edges,
            edge_pairs,
            counters,
            k_minus_1,
            d_flags,
            cplex,
            size,
            t_reg,
            size_ge_t,
            oracle,
            cmp_degree,
            cmp_size,
            counter_bits,
            size_bits,
            width,
        }
    }

    /// The complement edges incident to vertex `v`, as edge-register qubit
    /// indices.
    pub fn incident_edge_qubits(&self, v: usize) -> Vec<usize> {
        self.edge_pairs
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == v || b == v)
            .map(|(j, _)| self.edges.qubit(j))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_graph::gen::paper_fig1_graph;

    #[test]
    fn fig1_layout_shape() {
        let g = paper_fig1_graph();
        let l = OracleLayout::new(&g, 2, 4);
        assert_eq!(l.n, 6);
        assert_eq!(l.edge_pairs.len(), 8, "complement of Fig.1 has 8 edges");
        // Complement max degree is 4 (vertex v3); counters count to 4 → 3 bits.
        assert_eq!(l.counter_bits, 3);
        assert_eq!(l.size_bits, 3);
        assert_eq!(l.counters.len(), 6);
        // Registers are disjoint and contiguous.
        assert_eq!(l.vertices.start, 0);
        assert_eq!(l.edges.start, 6);
        assert!(l.width <= 128);
    }

    #[test]
    fn incident_edges_match_complement() {
        let g = paper_fig1_graph();
        let gc = g.complement();
        let l = OracleLayout::new(&g, 2, 4);
        for v in 0..6 {
            assert_eq!(l.incident_edge_qubits(v).len(), gc.degree(v));
        }
    }

    #[test]
    fn counter_width_accommodates_k() {
        // k-1 may exceed the max complement degree.
        let g = qmkp_graph::Graph::complete(5).unwrap(); // complement edgeless
        let l = OracleLayout::new(&g, 5, 3);
        assert!(l.counter_bits >= counter_width(4));
    }

    #[test]
    #[should_panic(expected = "threshold T")]
    fn t_zero_rejected() {
        let g = paper_fig1_graph();
        let _ = OracleLayout::new(&g, 2, 0);
    }

    #[test]
    #[should_panic(expected = "threshold T")]
    fn t_above_n_rejected() {
        let g = paper_fig1_graph();
        let _ = OracleLayout::new(&g, 2, 7);
    }

    #[test]
    fn width_matches_paper_accounting() {
        // n + m̄ + n·w_c + w_c + n + 1 + w_s + w_s + 1 + 1 + 3w_c + 3w_s
        let g = paper_fig1_graph();
        let l = OracleLayout::new(&g, 2, 4);
        let expected = 6 + 8 + 6 * 3 + 3 + 6 + 1 + 3 + 3 + 1 + 1 + 3 * 3 + 3 * 3;
        assert_eq!(l.width, expected);
    }
}
