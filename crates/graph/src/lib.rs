//! # qmkp-graph — graphs, generators and k-plex machinery
//!
//! Foundational substrate for the qmkp workspace: a compact undirected,
//! unweighted graph representation tailored to the small-to-medium instances
//! that quantum (simulated) hardware can address (n ≤ 128), together with
//!
//! * seeded random generators reproducing the paper's synthetic datasets
//!   (`G_{n,m}` for the gate-based experiments, `D_{n,m}` for annealing),
//! * the k-plex / k-cplex predicates of Definition 1 and Definition 5,
//! * complement-graph construction (Definition 4),
//! * classical graph reductions (core decomposition and the core-truss
//!   co-pruning the paper borrows from Chang et al. for its "orthogonality"
//!   discussion),
//! * simple text I/O (edge lists and DIMACS).
//!
//! Everything in the workspace — circuit construction, QUBO building,
//! classical baselines — consumes the [`Graph`] type defined here.

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
pub mod error;
pub mod gen;
pub mod graph;
pub mod io;
pub mod plex;
pub mod reduce;
pub mod stats;
pub mod vertex_set;

pub use error::GraphError;
pub use graph::Graph;
pub use plex::{is_kcplex, is_kplex, plex_deficiency};
pub use vertex_set::VertexSet;
