//! Projective measurement with state collapse.
//!
//! The sampling in [`crate::state::QuantumState::sample`] draws outcomes
//! without disturbing the state (fine for end-of-circuit statistics, the
//! common case in this workspace). This module provides genuine
//! *mid-circuit measurement*: measure one qubit, collapse the state to
//! the observed branch, renormalize — needed e.g. for repeat-until-success
//! protocols and useful for testing simulator semantics.
//!
//! All entry points are fallible: measuring a state whose norm has
//! collapsed to zero, or post-selecting an impossible branch, is reported
//! as a [`SimError`] instead of aborting the process — a malformed state
//! must never panic a long-lived server embedding the simulator.

use crate::complex::Complex;
use crate::error::SimError;
use crate::state::{DenseState, QuantumState, SparseState, PRUNE_EPS};
use rand::Rng;

/// A state whose squared norm is below this is treated as un-normalized:
/// its outcome probabilities are dominated by rounding noise.
const MIN_NORM_SQR: f64 = 1e-12;

/// Measures qubit `q`, collapses the state, and returns the outcome bit.
///
/// # Errors
/// Fails with [`SimError::NotNormalized`] if the state has (numerically)
/// zero norm on both branches — i.e. it was not normalized to begin with.
pub fn measure_and_collapse<R: Rng>(
    state: &mut SparseState,
    q: usize,
    rng: &mut R,
) -> Result<bool, SimError> {
    let mask = 1u128 << q;
    let p1: f64 = state
        .nonzero()
        .iter()
        .filter(|(b, _)| b & mask != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum();
    let total: f64 = state.norm_sqr();
    if total <= MIN_NORM_SQR {
        return Err(SimError::NotNormalized { norm_sqr: total });
    }
    let outcome = rng.gen::<f64>() * total < p1;
    collapse(state, q, outcome)?;
    Ok(outcome)
}

/// Forces qubit `q` into the given classical value and renormalizes
/// (post-selection).
///
/// # Errors
/// Fails with [`SimError::ZeroProbabilityBranch`] if the selected branch
/// has zero probability: the conditioned state does not exist, and the
/// state is left unchanged.
pub fn collapse(state: &mut SparseState, q: usize, value: bool) -> Result<(), SimError> {
    let mask = 1u128 << q;
    let keep: Vec<(u128, Complex)> = state
        .nonzero()
        .into_iter()
        .filter(|(b, _)| (b & mask != 0) == value)
        .collect();
    let norm: f64 = keep.iter().map(|(_, a)| a.norm_sqr()).sum();
    if norm <= MIN_NORM_SQR {
        return Err(SimError::ZeroProbabilityBranch { qubit: q, value });
    }
    let scale = 1.0 / norm.sqrt();
    state.set_amplitudes(keep.into_iter().map(|(b, a)| (b, a.scale(scale))));
    Ok(())
}

/// Dense-backend variant of [`measure_and_collapse`].
///
/// # Errors
/// Fails with [`SimError::NotNormalized`] on a zero-norm state, or
/// [`SimError::ZeroProbabilityBranch`] if rounding noise picked a branch
/// with negligible mass (the state is left unchanged in both cases).
pub fn measure_and_collapse_dense<R: Rng>(
    state: &mut DenseState,
    q: usize,
    rng: &mut R,
) -> Result<bool, SimError> {
    let mask = 1u128 << q;
    let p1: f64 = state
        .nonzero()
        .iter()
        .filter(|(b, _)| b & mask != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum();
    let total = state.norm_sqr();
    if total <= MIN_NORM_SQR {
        return Err(SimError::NotNormalized { norm_sqr: total });
    }
    let outcome = rng.gen::<f64>() * total < p1;
    let norm = if outcome { p1 } else { total - p1 };
    if norm <= PRUNE_EPS {
        return Err(SimError::ZeroProbabilityBranch {
            qubit: q,
            value: outcome,
        });
    }
    let scale = 1.0 / norm.sqrt();
    state.project(|b| (b & mask != 0) == outcome, scale);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measuring_a_basis_state_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = SparseState::from_basis(3, 0b101);
        assert!(measure_and_collapse(&mut s, 0, &mut rng).unwrap());
        assert!(!measure_and_collapse(&mut s, 1, &mut rng).unwrap());
        assert!(measure_and_collapse(&mut s, 2, &mut rng).unwrap());
        assert!((s.probability(0b101) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measuring_bell_pair_collapses_both_qubits() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ones = 0;
        for _ in 0..200 {
            let mut s = SparseState::zero(2);
            s.apply(&Gate::H(0));
            s.apply(&Gate::cnot(0, 1));
            let m0 = measure_and_collapse(&mut s, 0, &mut rng).unwrap();
            // The partner qubit is now perfectly correlated.
            let m1 = measure_and_collapse(&mut s, 1, &mut rng).unwrap();
            assert_eq!(m0, m1, "Bell pair must correlate");
            ones += usize::from(m0);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
        }
        assert!((50..150).contains(&ones), "roughly fair coin: {ones}");
    }

    #[test]
    fn post_selection_renormalizes() {
        let mut s = SparseState::zero(1);
        s.apply(&Gate::Ry(0, 1.0)); // uneven superposition
        collapse(&mut s, 0, true).unwrap();
        assert!((s.probability(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn impossible_post_selection_is_an_error() {
        let mut s = SparseState::from_basis(1, 0);
        assert_eq!(
            collapse(&mut s, 0, true),
            Err(SimError::ZeroProbabilityBranch {
                qubit: 0,
                value: true
            })
        );
        // The state is untouched by the failed post-selection.
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measuring_an_unnormalized_state_is_an_error() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = SparseState::zero(2);
        s.set_amplitudes([(0b01, Complex::real(1e-8))]);
        match measure_and_collapse(&mut s, 0, &mut rng) {
            Err(SimError::NotNormalized { norm_sqr }) => {
                assert!(norm_sqr < 1e-12, "reported norm² {norm_sqr}");
            }
            other => panic!("expected NotNormalized, got {other:?}"),
        }

        let mut d = DenseState::zero(2).unwrap();
        d.project(|_| false, 1.0); // zero the whole statevector
        assert!(matches!(
            measure_and_collapse_dense(&mut d, 0, &mut rng),
            Err(SimError::NotNormalized { .. })
        ));
    }

    #[test]
    fn repeated_collapses_do_not_drift_the_norm() {
        // Regression: renormalization after each collapse must hold the
        // norm at 1 across many rounds, and the measurement APIs must keep
        // accepting the state (no spurious NotNormalized from drift).
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = SparseState::zero(8);
        for round in 0..50 {
            for q in 0..8 {
                s.apply(&Gate::Ry(q, 0.3 + 0.1 * q as f64));
            }
            let q = round % 8;
            measure_and_collapse(&mut s, q, &mut rng)
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            let norm = s.norm_sqr();
            assert!(
                (norm - 1.0).abs() < 1e-9,
                "round {round}: norm² drifted to {norm}"
            );
        }
    }

    #[test]
    fn dense_collapse_matches_sparse() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let mut d = DenseState::zero(2).unwrap();
        let mut s = SparseState::zero(2);
        for st in [&mut d as &mut dyn ApplyHelper, &mut s] {
            st.apply_h(0);
            st.apply_cnot(0, 1);
        }
        let md = measure_and_collapse_dense(&mut d, 0, &mut rng1).unwrap();
        let ms = measure_and_collapse(&mut s, 0, &mut rng2).unwrap();
        assert_eq!(md, ms, "same seed, same outcome");
        for b in 0..4u128 {
            assert!((d.probability(b) - s.probability(b)).abs() < 1e-9);
        }
    }

    /// Minimal helper so the test can drive both backends uniformly.
    trait ApplyHelper {
        fn apply_h(&mut self, q: usize);
        fn apply_cnot(&mut self, c: usize, t: usize);
    }
    impl<T: QuantumState> ApplyHelper for T {
        fn apply_h(&mut self, q: usize) {
            self.apply(&Gate::H(q));
        }
        fn apply_cnot(&mut self, c: usize, t: usize) {
            self.apply(&Gate::cnot(c, t));
        }
    }
}
