//! Table IV — proportional runtime share of the three oracle components
//! (degree counting / degree comparison / size determination) across the
//! gate-based datasets, measured from actual simulation wall time and
//! cross-checked against static elementary gate costs.

use qmkp_bench::{print_table, quick_mode, Provenance};
use qmkp_core::{qmkp, QmkpConfig};
use qmkp_graph::gen::{paper_gate_dataset, GATE_DATASETS};

fn main() {
    let mut prov = Provenance::start("table4_oracle_share");
    let datasets: &[(usize, usize)] = if quick_mode() {
        &GATE_DATASETS[..2]
    } else {
        &GATE_DATASETS
    };
    prov.config("k", 2);
    for &(n, m) in datasets {
        prov.config("dataset", format!("G_{{{n},{m}}}"));
    }
    let mut rows = Vec::new();
    let mut cost_rows = Vec::new();
    for &(n, m) in datasets {
        let g = paper_gate_dataset(n, m);
        let out = qmkp(&g, 2, &QmkpConfig::default());
        let (count, cmp, size) = out.times.oracle_shares();
        prov.outcome(
            format!("shares[G_{{{n},{m}}}]"),
            format!(
                "{:.1}/{:.1}/{:.1}",
                count * 100.0,
                cmp * 100.0,
                size * 100.0
            ),
        );
        rows.push(vec![
            format!("G_{{{n},{m}}}"),
            format!("{:.1}", count * 100.0),
            format!("{:.1}", cmp * 100.0),
            format!("{:.1}", size * 100.0),
        ]);
        // Static gate-cost shares from one representative oracle.
        let oracle = qmkp_core::Oracle::new(&g, 2, out.best.len().max(1));
        let c = oracle.section_cost();
        let total = (c.graph_encoding + c.degree_count + c.degree_compare + c.size_check) as f64;
        cost_rows.push(vec![
            format!("G_{{{n},{m}}}"),
            format!(
                "{:.1}",
                (c.graph_encoding + c.degree_count) as f64 / total * 100.0
            ),
            format!("{:.1}", c.degree_compare as f64 / total * 100.0),
            format!("{:.1}", c.size_check as f64 / total * 100.0),
        ]);
    }
    print_table(
        "Table IV — oracle component share of qMKP simulation time (%)",
        &[
            "Dataset",
            "Degree count",
            "Degree comparison",
            "Size determination",
        ],
        &rows,
    );
    print_table(
        "Table IV (cross-check) — static elementary-gate-cost shares (%)",
        &[
            "Dataset",
            "Degree count",
            "Degree comparison",
            "Size determination",
        ],
        &cost_rows,
    );

    // The paper's own cost model (its complexity analysis): degree count
    // O(n²·log n) with the 5-gate adder cell, comparison and size each
    // O(n·log n). Our implementation counts with ancilla-free ripple
    // increments — asymptotically cheaper — which is why the measured
    // shares above put comparison ahead; under the paper's gate model the
    // count dominates exactly as its Table IV reports.
    let mut paper_rows = Vec::new();
    for &(n, m) in datasets {
        let nf = n as f64;
        let logn = (nf - 1.0).log2().ceil().max(1.0);
        let count = nf * (nf - 1.0) * 5.0 * logn;
        let cmp = nf * 5.0 * logn;
        let size = nf * 5.0 * logn + 5.0 * logn;
        let total = count + cmp + size;
        paper_rows.push(vec![
            format!("G_{{{n},{m}}}"),
            format!("{:.1}", count / total * 100.0),
            format!("{:.1}", cmp / total * 100.0),
            format!("{:.1}", size / total * 100.0),
        ]);
    }
    print_table(
        "Table IV (paper cost model) — shares under the paper's O(n²logn)/O(nlogn) accounting (%)",
        &[
            "Dataset",
            "Degree count",
            "Degree comparison",
            "Size determination",
        ],
        &paper_rows,
    );
    prov.finish();
}
