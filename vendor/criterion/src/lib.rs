//! Offline vendored stand-in for the [`criterion`](https://docs.rs/criterion)
//! crate.
//!
//! The build environment has no network access, so the real crate cannot
//! be downloaded. This harness implements the API subset the workspace's
//! benches use — `Criterion::benchmark_group` / `bench_function`,
//! `BenchmarkGroup::bench_with_input` / `sample_size`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros — measuring wall-clock medians with a small
//! warm-up instead of criterion's full statistical machinery.
//!
//! Results are printed as `name  time: [median ns/iter]  (samples)` lines
//! so they can be scraped by scripts. Benchmark name substrings passed on
//! the command line (as with real criterion) filter which benches run.
//! Set `CRITERION_SAMPLE_MS` to change the per-sample time budget
//! (default 60 ms).

#![deny(unsafe_code)]
#![warn(clippy::dbg_macro, clippy::todo)]
pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How a batched iteration's inputs are sized (accepted for API
/// compatibility; this harness always re-runs setup per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup dominates; batches stay small).
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name supplies the function part).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The per-benchmark measurement driver passed to bench closures.
pub struct Bencher {
    sample_budget: Duration,
    samples: usize,
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    result_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iteration across samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-iteration estimate.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (self.sample_budget.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as usize;
        let mut sample_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        self.result_ns = median(&mut sample_ns);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut sample_ns = Vec::with_capacity(self.samples);
        // One timed call per sample: setup cost stays outside the clock.
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            sample_ns.push(start.elapsed().as_nanos() as f64);
        }
        self.result_ns = median(&mut sample_ns);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    samples[samples.len() / 2]
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The top-level benchmark registry/driver.
pub struct Criterion {
    filters: Vec<String>,
    sample_budget: Duration,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-') && a != "bench")
            .collect();
        let budget_ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(60);
        Criterion {
            filters,
            sample_budget: Duration::from_millis(budget_ms),
            default_samples: 11,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            samples: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.default_samples;
        self.run_one(id.to_string(), samples, f);
        self
    }

    fn matches_filter(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, samples: usize, mut f: F) {
        if !self.matches_filter(&id) {
            return;
        }
        let mut bencher = Bencher {
            sample_budget: self.sample_budget,
            samples,
            result_ns: f64::NAN,
        };
        f(&mut bencher);
        println!(
            "{id:<50} time: [{}/iter]  ({samples} samples)",
            format_ns(bencher.result_ns)
        );
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(3));
        self
    }

    /// Benches `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let samples = self.samples.unwrap_or(self.parent.default_samples);
        self.parent.run_one(full, samples, |b| f(b, input));
        self
    }

    /// Benches a closure with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let samples = self.samples.unwrap_or(self.parent.default_samples);
        self.parent.run_one(full, samples, f);
        self
    }

    /// Ends the group (markers only; measurements print as they run).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            filters: vec![],
            sample_budget: Duration::from_millis(1),
            default_samples: 3,
        }
    }

    #[test]
    fn iter_measures_something() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
            });
        group.finish();
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = quick();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        });
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 20).id, "f/20");
        assert_eq!(BenchmarkId::from_parameter("G_10_37").id, "G_10_37");
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 3.0);
    }
}
