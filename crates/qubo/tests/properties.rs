//! Property-based tests of the QUBO/Ising models and the Equation-12
//! MKP formulation.

use proptest::prelude::*;
use qmkp_graph::gen::gnm;
use qmkp_graph::{is_kplex, VertexSet};
use qmkp_qubo::{IsingModel, MkpQubo, MkpQuboParams, QuboModel};

/// Strategy: a random QUBO over 2..=8 variables.
fn arb_qubo() -> impl Strategy<Value = QuboModel> {
    (2usize..=8).prop_flat_map(|n| {
        let linear = proptest::collection::vec(-5.0f64..5.0, n);
        let quads = proptest::collection::vec((0..n, 0..n, -5.0f64..5.0), 0..12);
        (Just(n), linear, -3.0f64..3.0, quads).prop_map(|(n, linear, offset, quads)| {
            let mut q = QuboModel::new(n);
            q.add_offset(offset);
            for (i, c) in linear.into_iter().enumerate() {
                q.add_linear(i, c);
            }
            for (i, j, c) in quads {
                if i != j {
                    q.add_quadratic(i, j, c);
                }
            }
            q
        })
    })
}

proptest! {
    #[test]
    fn qubo_ising_equivalence(q in arb_qubo()) {
        let ising = IsingModel::from_qubo(&q);
        for bits in 0..(1u128 << q.num_vars()) {
            prop_assert!((q.energy_bits(bits) - ising.energy_bits(bits)).abs() < 1e-9);
        }
    }

    #[test]
    fn energy_bits_and_slice_agree(q in arb_qubo(), bits in any::<u128>()) {
        let n = q.num_vars();
        let bits = bits % (1u128 << n);
        let x: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
        prop_assert!((q.energy(&x) - q.energy_bits(bits)).abs() < 1e-12);
    }

    #[test]
    fn flip_delta_is_exact(q in arb_qubo(), bits in any::<u128>(), i in 0usize..8) {
        let n = q.num_vars();
        let i = i % n;
        let bits = bits % (1u128 << n);
        let x: Vec<bool> = (0..n).map(|b| (bits >> b) & 1 == 1).collect();
        let mut y = x.clone();
        y[i] = !y[i];
        prop_assert!((q.flip_delta(&x, i) - (q.energy(&y) - q.energy(&x))).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mkp_qubo_minimum_is_the_maximum_kplex(
        (n, m, seed) in (3usize..=5).prop_flat_map(|n| {
            (Just(n), 0..=(n * (n - 1) / 2), any::<u64>())
        }),
        k in 1usize..=2,
    ) {
        let g = gnm(n, m, seed).unwrap();
        let mq = MkpQubo::new(&g, MkpQuboParams { k, r: 2.0 });
        prop_assume!(mq.num_vars() <= 20);
        let (bits, e) = mq.model.brute_force_min();
        let p = mq.decode(bits);
        prop_assert!(is_kplex(&g, p, k), "argmin decodes to a k-plex");
        let opt = (0..(1u128 << n))
            .map(VertexSet::from_bits)
            .filter(|&s| is_kplex(&g, s, k))
            .map(|s| s.len())
            .max()
            .unwrap();
        prop_assert_eq!(p.len(), opt);
        prop_assert!((e + opt as f64).abs() < 1e-9);
    }

    #[test]
    fn feasible_encodings_have_zero_penalty(
        (n, m, seed) in (3usize..=7).prop_flat_map(|n| {
            (Just(n), 0..=(n * (n - 1) / 2), any::<u64>())
        }),
        k in 1usize..=3,
        bits in any::<u128>(),
    ) {
        let g = gnm(n, m, seed).unwrap();
        let mq = MkpQubo::new(&g, MkpQuboParams { k, r: 2.0 });
        let candidate = VertexSet::from_bits(bits % (1u128 << n));
        prop_assume!(is_kplex(&g, candidate, k));
        let enc = mq.encode_feasible(candidate);
        prop_assert!(mq.penalty(enc).abs() < 1e-9);
        prop_assert!((mq.model.energy_bits(enc) + candidate.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn decode_polished_is_feasible_and_no_smaller(
        (n, m, seed) in (3usize..=8).prop_flat_map(|n| {
            (Just(n), 0..=(n * (n - 1) / 2), any::<u64>())
        }),
        k in 1usize..=3,
        bits in any::<u128>(),
    ) {
        let g = gnm(n, m, seed).unwrap();
        let mq = MkpQubo::new(&g, MkpQuboParams { k, r: 2.0 });
        let raw = bits % (1u128 << mq.num_vars().min(127));
        let repaired = mq.decode_repaired(raw);
        let polished = mq.decode_polished(raw);
        prop_assert!(is_kplex(&g, repaired, k));
        prop_assert!(is_kplex(&g, polished, k));
        prop_assert!(polished.len() >= repaired.len());
    }
}
