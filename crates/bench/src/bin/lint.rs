//! Workspace lint harness: `lint source` scans hot-path crates for
//! forbidden panic-family calls; `lint oracles` statically verifies the
//! experiment oracle configurations with `qmkp-lint` and can archive the
//! machine-readable reports as JSON.
//!
//! Both subcommands exit non-zero on any finding, so CI runs them as
//! gates:
//!
//! ```text
//! cargo run -p qmkp-bench --bin lint -- source
//! cargo run -p qmkp-bench --bin lint -- oracles --json analysis.json
//! ```

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use qmkp_core::Oracle;
use qmkp_graph::gen::{gnm, paper_fig1_graph};
use qmkp_graph::Graph;

/// Panic-family constructs that must not appear in hot-path library code
/// (tests excepted): library callers get `Result`s, not aborts.
const NEEDLES: &[&str] = &[
    ".unwrap(",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "dbg!(",
];

/// Known occurrences: `(path suffix, needle, exact count, justification)`.
/// The scan fails on *any* deviation — a new occurrence is a violation, a
/// removed one makes the entry stale and must be deleted here.
const ALLOWLIST: &[(&str, &str, usize, &str)] = &[
    (
        "qsim/src/circuit.rs",
        ".expect(",
        1,
        "push_unchecked's documented panic contract",
    ),
    (
        "core/src/counting.rs",
        ".expect(",
        2,
        "unlimited-context wrapper; QFT and inverse share one width",
    ),
    (
        "core/src/grover.rs",
        ".expect(",
        2,
        "compile cannot fail for validated oracles; a scheduled run \
         without a context cannot be interrupted",
    ),
    (
        "core/src/oracle.rs",
        ".expect(",
        1,
        "U_check and U_check† share one layout width by construction",
    ),
    (
        "core/src/oracle.rs",
        "unreachable!(",
        1,
        "section names are fixed by the builder four lines above",
    ),
    (
        "core/src/qmkp.rs",
        ".expect(",
        1,
        "unlimited-context wrapper: only invalid configuration can fail",
    ),
    (
        "core/src/qtkp.rs",
        ".expect(",
        1,
        "unlimited-context wrapper: only invalid configuration can fail",
    ),
    (
        "lint/src/structural.rs",
        ".expect(",
        1,
        "pop() follows a successful last() on the same stack",
    ),
    (
        "serve/src/cache.rs",
        ".expect(",
        6,
        "mutex/condvar poisoning: a panicked worker already aborted the \
         process-level invariant; propagating is the only sound option",
    ),
    (
        "serve/src/service.rs",
        ".expect(",
        3,
        "thread spawn at startup and lane-queue lock poisoning; both are \
         unrecoverable service-construction failures",
    ),
];

/// Directories (or single `.rs` files) scanned by `lint source`, relative
/// to the workspace root. The runtime, annealer, and facade crates carry
/// *zero* allowlist entries: their fallible paths all return
/// [`qmkp_rt::RtError`]; the analyzer crate carries one provably-benign
/// entry and the serving crate's are confined to lock handling. The
/// metrics module is listed as a file because it is the obs crate's hot
/// path — poisoned-lock recovery there uses
/// `unwrap_or_else(|e| e.into_inner())`, never a panic.
const SCAN_DIRS: &[&str] = &[
    "crates/qsim/src",
    "crates/core/src",
    "crates/rt/src",
    "crates/annealer/src",
    "crates/lint/src",
    "crates/serve/src",
    "crates/obs/src/metrics.rs",
    "src",
];

fn workspace_root() -> &'static Path {
    // bench crate lives at <root>/crates/bench.
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Blanks everything that is not code — line and (nested) block comments,
/// string / raw-string / byte-string contents, and char literals — with
/// spaces, preserving byte offsets and line structure, so that needle and
/// attribute matching never trips over prose.
fn mask_non_code(text: &str) -> String {
    let b = text.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    let mut prev_ident = false;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                out[i] = b'\n';
                prev_ident = false;
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            out[i] = b'\n';
                        }
                        i += 1;
                    }
                }
                prev_ident = false;
            }
            b'"' => {
                i = skip_plain_string(b, &mut out, i);
                prev_ident = false;
            }
            b'r' | b'b' if !prev_ident => {
                if let Some(next) = skip_prefixed_literal(b, &mut out, i) {
                    i = next;
                    prev_ident = false;
                } else {
                    out[i] = b[i];
                    prev_ident = true;
                    i += 1;
                }
            }
            b'\'' => {
                if let Some(next) = skip_char_literal(b, i) {
                    i = next; // contents blanked by not copying
                } else {
                    out[i] = b'\''; // a lifetime: keep the tick, scan on
                    i += 1;
                }
                prev_ident = false;
            }
            c => {
                out[i] = c;
                prev_ident = c.is_ascii_alphanumeric() || c == b'_' || !c.is_ascii();
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("masking only writes ASCII or copied input bytes")
}

/// Skips a `"…"` literal starting at `i` (which must be the opening
/// quote), preserving newlines in `out`. Returns the index after the
/// closing quote.
fn skip_plain_string(b: &[u8], out: &mut [u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            b'\n' => {
                out[j] = b'\n';
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Skips an `r"…"` / `r#"…"#` / `b"…"` / `br#"…"#` / `b'…'` literal
/// starting at the prefix byte, or returns `None` when `i` is just an
/// identifier character.
fn skip_prefixed_literal(b: &[u8], out: &mut [u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if b[i] == b'b' {
        match b.get(j) {
            Some(b'"') => return Some(skip_plain_string(b, out, j)),
            Some(b'\'') => return skip_char_literal(b, j),
            Some(b'r') => j += 1,
            _ => return None,
        }
    }
    // Raw string: `r` then zero or more `#`, then `"`.
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return Some(j + 1 + hashes);
        }
        if b[j] == b'\n' {
            out[j] = b'\n';
        }
        j += 1;
    }
    Some(j)
}

/// Distinguishes a char literal (`'x'`, `'\n'`, `'\u{1F600}'`) from a
/// lifetime (`'a`, `'static`). Returns the index after the closing quote
/// for a literal, `None` for a lifetime.
fn skip_char_literal(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    match b.get(j)? {
        b'\\' => {
            j += 1;
            if b.get(j) == Some(&b'u') && b.get(j + 1) == Some(&b'{') {
                j += 2;
                while b.get(j).is_some_and(|&c| c != b'}') {
                    j += 1;
                }
            }
            j += 1;
        }
        _ => {
            // One (possibly multi-byte) char; a lifetime has an
            // identifier run here with no closing quote.
            j += 1;
            while j < b.len() && (b[j] & 0xC0) == 0x80 {
                j += 1; // UTF-8 continuation bytes
            }
        }
    }
    (b.get(j) == Some(&b'\'')).then_some(j + 1)
}

/// Marks every line belonging to a `#[cfg(test)]`-gated item — the
/// attribute itself, any stacked attributes after it, and the item body
/// through its brace-matched `}` (or terminating `;`). Operates on masked
/// code, so braces in strings and comments cannot desynchronise it.
fn cfg_test_lines(masked: &str) -> Vec<bool> {
    let line_count = masked.lines().count();
    let mut skip = vec![false; line_count];
    // Byte offset → line index, built once.
    let line_of = |pos: usize| masked[..pos].bytes().filter(|&c| c == b'\n').count();
    let b = masked.as_bytes();
    let mut from = 0;
    while let Some(rel) = masked[from..].find("#[cfg(test)]") {
        let start = from + rel;
        let mut j = start + "#[cfg(test)]".len();
        // Stacked attributes after the gate.
        loop {
            while b.get(j).is_some_and(|c| c.is_ascii_whitespace()) {
                j += 1;
            }
            if b.get(j) == Some(&b'#') && b.get(j + 1) == Some(&b'[') {
                let mut depth = 0usize;
                while j < b.len() {
                    match b[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        // The item: brace-matched block, or `;` for brace-less items.
        let mut depth = 0usize;
        let mut seen_brace = false;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    depth += 1;
                    seen_brace = true;
                }
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b';' if !seen_brace => break,
                _ => {}
            }
            j += 1;
        }
        let end = j.min(b.len().saturating_sub(1));
        for line in skip.iter_mut().take(line_of(end) + 1).skip(line_of(start)) {
            *line = true;
        }
        from = j.min(b.len());
    }
    skip
}

/// Counts forbidden-needle occurrences in one file. Comments, string
/// contents, and `#[cfg(test)]`-gated items (wherever they sit in the
/// file — test modules need not be last) are excluded; everything else,
/// including code *between* test modules, is scanned.
fn scan_file(text: &str) -> Vec<(usize, &'static str, String)> {
    let masked = mask_non_code(text);
    let skip = cfg_test_lines(&masked);
    let mut hits = Vec::new();
    for (lineno, (code, raw)) in masked.lines().zip(text.lines()).enumerate() {
        if skip.get(lineno).copied().unwrap_or(false) {
            continue;
        }
        for &needle in NEEDLES {
            if code.contains(needle) {
                hits.push((lineno + 1, needle, raw.trim().to_string()));
            }
        }
    }
    hits
}

fn run_source_lint() -> ExitCode {
    let root = workspace_root();
    let mut counts: Vec<(String, &'static str, usize)> = Vec::new();
    let mut violations = Vec::new();

    for dir in SCAN_DIRS {
        let entry = root.join(dir);
        let mut paths: Vec<_> = if entry.is_file() {
            vec![entry]
        } else {
            fs::read_dir(&entry)
                .unwrap_or_else(|e| panic!("cannot read {dir}: {e}"))
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "rs"))
                .collect()
        };
        paths.sort();
        for path in paths {
            let text = fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string();
            for (lineno, needle, line) in scan_file(&text) {
                counts
                    .iter_mut()
                    .find(|(f, n, _)| *f == rel && *n == needle)
                    .map(|(_, _, c)| *c += 1)
                    .unwrap_or_else(|| counts.push((rel.clone(), needle, 1)));
                let allowed = ALLOWLIST
                    .iter()
                    .any(|&(suffix, n, _, _)| rel.ends_with(suffix) && n == needle);
                if !allowed {
                    violations.push(format!("{rel}:{lineno}: forbidden `{needle}` — {line}"));
                }
            }
        }
    }

    // Exact-count enforcement: each allowlist entry must match reality.
    let mut stale = Vec::new();
    for &(suffix, needle, expected, reason) in ALLOWLIST {
        let found = counts
            .iter()
            .find(|(f, n, _)| f.ends_with(suffix) && *n == needle)
            .map_or(0, |(_, _, c)| *c);
        if found != expected {
            stale.push(format!(
                "allowlist entry ({suffix}, {needle}) expects {expected} occurrence(s), \
                 found {found} — update the entry ({reason})"
            ));
        }
    }

    for v in &violations {
        println!("error[source-lint]: {v}");
    }
    for s in &stale {
        println!("error[stale-allowlist]: {s}");
    }
    if violations.is_empty() && stale.is_empty() {
        println!(
            "source lint clean: {} file group(s) audited, allowlist exact",
            SCAN_DIRS.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The six oracle configurations the experiment drivers use. The two
/// n=18 probes have 2^18 vertex assignments — far past the enumeration
/// limit; their proofs are exact *because* of the symbolic pass, which
/// `run_oracle_lint` enforces by failing on any sampled verdict.
fn oracle_instances() -> Vec<(String, Graph, usize, usize)> {
    let mut out = Vec::new();
    for (k, t) in [(2, 4), (3, 4)] {
        out.push((format!("fig1-k{k}-t{t}"), paper_fig1_graph(), k, t));
    }
    out.push((
        "gnm-7-9-k2-t3".into(),
        gnm(7, 9, 0).expect("valid g(n,m)"),
        2,
        3,
    ));
    out.push((
        "gnm-9-15-k3-t5".into(),
        gnm(9, 15, 1).expect("valid g(n,m)"),
        3,
        5,
    ));
    // Complement of a Hamiltonian cycle on 18 vertices (m̄ = 18).
    let mut cycle = Graph::complete(18).expect("valid order");
    for i in 0..18 {
        cycle.remove_edge(i, (i + 1) % 18);
    }
    out.push(("qtkp18-cycle-k2-t9".into(), cycle, 2, 9));
    // Complement of a perfect matching on 18 vertices (m̄ = 9).
    let mut matching = Graph::complete(18).expect("valid order");
    for i in 0..9 {
        matching.remove_edge(2 * i, 2 * i + 1);
    }
    out.push(("qtkp18-matching-k3-t12".into(), matching, 3, 12));
    out
}

fn run_oracle_lint(json_path: Option<&str>) -> ExitCode {
    let mut failed = false;
    let mut json_items = Vec::new();
    for (name, g, k, t) in oracle_instances() {
        let report = Oracle::new(&g, k, t).lint_report();
        let (errors, warnings, notes) = report.counts();
        println!(
            "{name}: {} qubits, {} gates, depth {} — {errors} error(s), \
             {warnings} warning(s), {notes} note(s) [{} proof, {} inputs]",
            report.width,
            report.gates,
            report.depth,
            report.proof.label(),
            report.inputs_checked,
        );
        if report.has_errors() {
            print!("{}", report.render());
            failed = true;
        }
        // Every shipped config must get an *exact* verdict: a sampled
        // fallback means the symbolic pass regressed on a real oracle.
        if report
            .diagnostics
            .iter()
            .any(|d| d.code == "sampled-proof-only")
        {
            println!("error[sampled-verdict]: {name} was only sampled, not proven");
            failed = true;
        }
        json_items.push(report.to_json());
    }
    if let Some(path) = json_path {
        let body = format!("[{}]\n", json_items.join(","));
        fs::write(path, &body).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {} report(s) to {path}", json_items.len());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("source") => run_source_lint(),
        Some("oracles") => {
            let json_path = match args.get(1).map(String::as_str) {
                Some("--json") => match args.get(2) {
                    Some(p) => Some(p.as_str()),
                    None => {
                        println!("usage: lint oracles [--json <path>]");
                        return ExitCode::FAILURE;
                    }
                },
                Some(other) => {
                    println!("unknown flag `{other}`; usage: lint oracles [--json <path>]");
                    return ExitCode::FAILURE;
                }
                None => None,
            };
            run_oracle_lint(json_path)
        }
        _ => {
            println!("usage: lint <source | oracles [--json <path>]>");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let src = r#"
// a comment mentioning .unwrap( stays out
/* block with .expect( inside */
let msg = "call .unwrap( later"; // and .expect( here
let c = '"'; let s = r"raw .unwrap(";
value.unwrap();
"#;
        let hits = scan_file(src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, ".unwrap(");
        assert_eq!(hits[0].2, "value.unwrap();");
    }

    #[test]
    fn code_after_a_test_module_is_still_scanned() {
        let src = "
fn ok() {}
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
}
fn offender() { y.expect(\"boom\"); }
#[cfg(test)]
mod more_tests {
    fn helper() { z.unwrap(); }
}
fn second_offender() { w.unwrap(); }
";
        let hits = scan_file(src);
        let needles: Vec<_> = hits.iter().map(|h| h.1).collect();
        assert_eq!(needles, vec![".expect(", ".unwrap("]);
    }

    #[test]
    fn braces_in_test_strings_do_not_desync_the_skipper() {
        let src = "
#[cfg(test)]
mod tests {
    const WEIRD: &str = \"}}}{{{\"; // unbalanced on purpose
    fn helper() { x.unwrap(); }
}
fn live() { y.unwrap(); }
";
        let hits = scan_file(src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].2, "fn live() { y.unwrap(); }");
    }

    #[test]
    fn braceless_gated_items_end_at_the_semicolon() {
        let src = "
#[cfg(test)]
use some::test_only::thing;
fn live() { y.unwrap(); }
";
        let hits = scan_file(src);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn stacked_attributes_stay_inside_the_gate() {
        let src = "
#[cfg(test)]
#[allow(dead_code)]
fn gated() { x.unwrap(); }
fn live() {}
";
        assert!(scan_file(src).is_empty());
    }

    #[test]
    fn lifetimes_and_char_literals_are_handled() {
        let src = "
fn f<'a>(x: &'a str) -> char { '\\'' }
fn g() -> char { 'x' }
fn live() { y.unwrap(); }
";
        let hits = scan_file(src);
        assert_eq!(hits.len(), 1);
    }
}
