//! Classical simulated annealing over a QUBO — the paper's "SA" baseline.
//!
//! The paper controls SA runtime exactly like the quantum annealer: a
//! number of *sweeps* per shot (its analogue of the annealing time; the
//! paper fixes 2) and a shot count `s`. Each shot restarts from a random
//! assignment and Metropolis-anneals along a geometric inverse-temperature
//! schedule.

use crate::result::AnnealOutcome;
use qmkp_qubo::QuboModel;
use qmkp_rt::checkpoint::{
    bools_to_json, f64_to_json, f64s_to_json, parse_object, require_bools, require_f64_bits,
    require_f64s, require_u64,
};
use qmkp_rt::{derive_seed, Checkpoint, Interrupted, RtContext, RtError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Configuration for [`anneal_qubo`].
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// Independent restarts.
    pub shots: usize,
    /// Metropolis sweeps per shot (each sweep proposes every variable once).
    pub sweeps: usize,
    /// Initial inverse temperature.
    pub beta_hot: f64,
    /// Final inverse temperature.
    pub beta_cold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            shots: 100,
            sweeps: 2,
            beta_hot: 0.1,
            beta_cold: 10.0,
            seed: 0,
        }
    }
}

/// Geometric β schedule shared across shots.
fn geometric_betas(config: &SaConfig) -> Vec<f64> {
    (0..config.sweeps)
        .map(|s| {
            if config.sweeps == 1 {
                config.beta_cold
            } else {
                let f = s as f64 / (config.sweeps - 1) as f64;
                config.beta_hot * (config.beta_cold / config.beta_hot).powf(f)
            }
        })
        .collect()
}

/// Local fields for O(deg) flip deltas: field[i] = c_i + Σ q_ij x_j.
pub(crate) fn init_fields(q: &QuboModel, adj: &[Vec<(usize, f64)>], x: &[bool]) -> Vec<f64> {
    (0..x.len())
        .map(|i| {
            q.linear(i)
                + adj[i]
                    .iter()
                    .filter(|&&(j, _)| x[j])
                    .map(|&(_, c)| c)
                    .sum::<f64>()
        })
        .collect()
}

/// One Metropolis sweep: proposes every variable once at inverse
/// temperature `beta`, maintaining the local fields and energy. Shared
/// with the tempering sampler, whose per-rung dynamics are identical.
pub(crate) fn metropolis_sweep(
    adj: &[Vec<(usize, f64)>],
    beta: f64,
    x: &mut [bool],
    field: &mut [f64],
    energy: &mut f64,
    rng: &mut StdRng,
) {
    for i in 0..x.len() {
        let delta = if x[i] { -field[i] } else { field[i] };
        if delta <= 0.0 || rng.gen::<f64>() < (-beta * delta).exp() {
            x[i] = !x[i];
            *energy += delta;
            let sign = if x[i] { 1.0 } else { -1.0 };
            for &(j, c) in &adj[i] {
                field[j] += sign * c;
            }
        }
    }
}

/// Labeled-metrics recorder for annealing sweeps, shared by the SA, SQA,
/// and tempering samplers: each sweep contributes its wall time to the
/// `anneal.sweep` histogram and its absolute energy change (in
/// milli-units, saturating) to `anneal.energy_delta_milli`, labeled by
/// algorithm. Resolved once per run; disabled cost is one relaxed load.
pub(crate) struct SweepMeter {
    algo: &'static str,
    on: bool,
}

impl SweepMeter {
    pub(crate) fn new(algo: &'static str) -> SweepMeter {
        SweepMeter {
            algo,
            on: qmkp_obs::metrics::enabled(),
        }
    }

    /// Whether sweeps need wall-clock timing this run.
    pub(crate) fn on(&self) -> bool {
        self.on
    }

    pub(crate) fn record(&self, elapsed: std::time::Duration, before: f64, after: f64) {
        self.time(elapsed);
        self.delta(before, after);
    }

    pub(crate) fn time(&self, elapsed: std::time::Duration) {
        if !self.on {
            return;
        }
        qmkp_obs::metrics::observe_duration("anneal.sweep", &[("algo", self.algo)], elapsed);
    }

    /// Records `|after − before|` in milli-units (saturating); skipped
    /// when either side is non-finite (e.g. the initial `+∞` best).
    pub(crate) fn delta(&self, before: f64, after: f64) {
        if !self.on || !before.is_finite() || !after.is_finite() {
            return;
        }
        let milli = ((after - before).abs() * 1000.0).round();
        qmkp_obs::metrics::observe(
            "anneal.energy_delta_milli",
            &[("algo", self.algo)],
            milli as u64,
        );
    }
}

/// Runs simulated annealing on a QUBO.
///
/// # Panics
/// Panics if `shots == 0` or `sweeps == 0` or the schedule is not
/// increasing in β.
pub fn anneal_qubo(q: &QuboModel, config: &SaConfig) -> AnnealOutcome {
    assert!(config.shots > 0, "need at least one shot");
    assert!(config.sweeps > 0, "need at least one sweep");
    assert!(
        config.beta_cold >= config.beta_hot && config.beta_hot > 0.0,
        "schedule must heat up in β"
    );
    let span = qmkp_obs::span("anneal.sa.run");
    let traced = qmkp_obs::enabled_for("anneal.sa");
    let meter = SweepMeter::new("sa");
    let n = q.num_vars();
    let adj = q.neighbor_lists();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start = Instant::now();

    let mut best: Vec<bool> = vec![false; n];
    let mut best_energy = f64::INFINITY;
    let mut shot_energies = Vec::with_capacity(config.shots);
    let mut trace = Vec::new();

    let betas = geometric_betas(config);

    for _ in 0..config.shots {
        let mut x: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let mut field = init_fields(q, &adj, &x);
        let mut energy = q.energy(&x);

        for &beta in &betas {
            let before = energy;
            let sweep_start = meter.on().then(Instant::now);
            metropolis_sweep(&adj, beta, &mut x, &mut field, &mut energy, &mut rng);
            if let Some(t0) = sweep_start {
                meter.record(t0.elapsed(), before, energy);
            }
            if traced {
                qmkp_obs::gauge("anneal.sa.beta", beta);
                qmkp_obs::gauge("anneal.sa.energy", energy);
            }
        }
        debug_assert!((q.energy(&x) - energy).abs() < 1e-6);
        qmkp_obs::counter("anneal.sa.shots", 1);
        shot_energies.push(energy);
        if energy < best_energy {
            best_energy = energy;
            best = x;
            trace.push((start.elapsed(), energy));
        }
    }

    qmkp_obs::gauge("anneal.sa.best_energy", best_energy);
    span.finish();
    AnnealOutcome {
        best,
        best_energy,
        shot_energies,
        trace,
        elapsed: start.elapsed(),
    }
}

/// A resumable position inside a budgeted SA run, taken at sweep
/// boundaries. The per-sweep RNG streams of [`anneal_qubo_ctx`] are
/// derived from `(seed, shot, sweep)`, so no generator state needs
/// saving and the resumed run replays the remaining sweeps exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SaCheckpoint {
    /// Shot being annealed when the run was interrupted.
    pub shot: usize,
    /// Next sweep to run within that shot.
    pub sweep: usize,
    /// Current assignment of the interrupted shot.
    pub x: Vec<bool>,
    /// Delta-maintained energy of `x` (bit-exact, not recomputed).
    pub energy: f64,
    /// Delta-maintained local fields of `x` (bit-exact).
    pub field: Vec<f64>,
    /// Best assignment over completed shots.
    pub best: Vec<bool>,
    /// Energy of `best` (`f64::INFINITY` before the first completed shot).
    pub best_energy: f64,
    /// Final energies of completed shots.
    pub shot_energies: Vec<f64>,
}

impl Checkpoint for SaCheckpoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"shot\": {}, \"sweep\": {}, \"x\": {}, \"energy\": {}, \"field\": {}, \
             \"best\": {}, \"best_energy\": {}, \"shot_energies\": {}}}",
            self.shot,
            self.sweep,
            bools_to_json(&self.x),
            f64_to_json(self.energy),
            f64s_to_json(&self.field),
            bools_to_json(&self.best),
            f64_to_json(self.best_energy),
            f64s_to_json(&self.shot_energies),
        )
    }

    fn from_json(s: &str) -> Result<Self, RtError> {
        let obj = parse_object(s)?;
        Ok(SaCheckpoint {
            shot: require_u64(&obj, "shot")? as usize,
            sweep: require_u64(&obj, "sweep")? as usize,
            x: require_bools(&obj, "x")?,
            energy: require_f64_bits(&obj, "energy")?,
            field: require_f64s(&obj, "field")?,
            best: require_bools(&obj, "best")?,
            best_energy: require_f64_bits(&obj, "best_energy")?,
            shot_energies: require_f64s(&obj, "shot_energies")?,
        })
    }
}

fn validate_sa(config: &SaConfig) -> Result<(), RtError> {
    if config.shots == 0 {
        return Err(RtError::InvalidConfig("sa: need at least one shot".into()));
    }
    if config.sweeps == 0 {
        return Err(RtError::InvalidConfig("sa: need at least one sweep".into()));
    }
    if !(config.beta_cold >= config.beta_hot && config.beta_hot > 0.0) {
        return Err(RtError::InvalidConfig(
            "sa: schedule must heat up in β".into(),
        ));
    }
    Ok(())
}

/// Runs simulated annealing under an execution-runtime context.
///
/// Cancellation and the budget are polled at sweep granularity (plus the
/// `annealer.sa.sweep` failpoint). Unlike [`anneal_qubo`] the RNG stream
/// is not one sequential generator: shot `s` draws its starting
/// assignment from `derive_seed(seed, s, u64::MAX)` and sweep `w` of shot
/// `s` from `derive_seed(seed, s, w)`, so an interrupted run resumes from
/// its [`SaCheckpoint`] bit-identically (trace timestamps aside).
///
/// When the budget carries a wall-clock deadline and the run is a fresh
/// start, the sweep schedule is *paced*: a throwaway probe sweep on the
/// shot-0 starting assignment measures the per-sweep cost and
/// [`crate::pacing::paced_sweeps`] shrinks `sweeps` to what fits the
/// remaining time, reported via the `anneal.sa.paced_sweeps` gauge.
///
/// # Errors
/// [`Interrupted`] pairing the [`RtError`] with the sweep-boundary
/// checkpoint; for a rejected configuration the checkpoint is empty.
pub fn anneal_qubo_ctx(
    q: &QuboModel,
    config: &SaConfig,
    ctx: &RtContext,
    resume: Option<&SaCheckpoint>,
) -> Result<AnnealOutcome, Interrupted<SaCheckpoint>> {
    let empty = || SaCheckpoint {
        shot: 0,
        sweep: 0,
        x: Vec::new(),
        energy: f64::INFINITY,
        field: Vec::new(),
        best: Vec::new(),
        best_energy: f64::INFINITY,
        shot_energies: Vec::new(),
    };
    if let Err(e) = validate_sa(config) {
        return Err(Interrupted::new(e, empty()));
    }
    let span = qmkp_obs::span("anneal.sa.run");
    let traced = qmkp_obs::enabled_for("anneal.sa");
    let meter = SweepMeter::new("sa");
    let n = q.num_vars();
    let adj = q.neighbor_lists();
    let start = Instant::now();

    let mut paced = config.clone();
    if resume.is_none() {
        if let Some(remaining) = crate::pacing::remaining_deadline(ctx) {
            // Probe on a clone of the shot-0 starting state; the real
            // shot 0 re-derives the same init, so results only depend on
            // the effective sweep count, not on the probe having run.
            let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, 0, u64::MAX));
            let mut x: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let mut field = init_fields(q, &adj, &x);
            let mut energy = q.energy(&x);
            let probe = Instant::now();
            metropolis_sweep(
                &adj,
                config.beta_hot,
                &mut x,
                &mut field,
                &mut energy,
                &mut rng,
            );
            let per_sweep = probe.elapsed();
            paced.sweeps = crate::pacing::paced_sweeps(
                remaining.saturating_sub(per_sweep),
                per_sweep,
                config.shots,
                config.sweeps,
            );
            qmkp_obs::gauge("anneal.sa.paced_sweeps", paced.sweeps as f64);
        }
    }
    let config = &paced;

    let mut best: Vec<bool> = vec![false; n];
    let mut best_energy = f64::INFINITY;
    let mut shot_energies = Vec::with_capacity(config.shots);
    let mut trace = Vec::new();
    let mut start_shot = 0;
    let mut start_sweep = 0;
    let mut resumed_state: Option<(Vec<bool>, Vec<f64>, f64)> = None;

    if let Some(cp) = resume {
        if cp.shot >= config.shots || cp.sweep >= config.sweeps || cp.x.len() != n {
            span.finish();
            return Err(Interrupted::new(
                RtError::InvalidConfig(
                    "sa: checkpoint does not match the model or schedule".into(),
                ),
                cp.clone(),
            ));
        }
        start_shot = cp.shot;
        start_sweep = cp.sweep;
        resumed_state = Some((cp.x.clone(), cp.field.clone(), cp.energy));
        best = cp.best.clone();
        best_energy = cp.best_energy;
        shot_energies = cp.shot_energies.clone();
    }

    let betas = geometric_betas(config);

    for shot in start_shot..config.shots {
        let (mut x, mut field, mut energy) = match resumed_state.take() {
            Some(state) => state,
            None => {
                let mut init =
                    StdRng::seed_from_u64(derive_seed(config.seed, shot as u64, u64::MAX));
                let x: Vec<bool> = (0..n).map(|_| init.gen()).collect();
                let field = init_fields(q, &adj, &x);
                let energy = q.energy(&x);
                (x, field, energy)
            }
        };

        let first_sweep = if shot == start_shot { start_sweep } else { 0 };
        for (sweep, &beta) in betas.iter().enumerate().skip(first_sweep) {
            let interrupted = qmkp_rt::failpoint::check("annealer.sa.sweep")
                .and_then(|()| ctx.check())
                .err();
            if let Some(e) = interrupted {
                span.finish();
                return Err(Interrupted::new(
                    e,
                    SaCheckpoint {
                        shot,
                        sweep,
                        x,
                        energy,
                        field,
                        best,
                        best_energy,
                        shot_energies,
                    },
                ));
            }
            let mut rng =
                StdRng::seed_from_u64(derive_seed(config.seed, shot as u64, sweep as u64));
            let before = energy;
            let sweep_start = meter.on().then(Instant::now);
            metropolis_sweep(&adj, beta, &mut x, &mut field, &mut energy, &mut rng);
            if let Some(t0) = sweep_start {
                meter.record(t0.elapsed(), before, energy);
            }
            if traced {
                qmkp_obs::gauge("anneal.sa.beta", beta);
                qmkp_obs::gauge("anneal.sa.energy", energy);
            }
        }
        debug_assert!((q.energy(&x) - energy).abs() < 1e-6);
        qmkp_obs::counter("anneal.sa.shots", 1);
        shot_energies.push(energy);
        if energy < best_energy {
            best_energy = energy;
            best = x;
            trace.push((start.elapsed(), energy));
        }
    }

    qmkp_obs::gauge("anneal.sa.best_energy", best_energy);
    span.finish();
    Ok(AnnealOutcome {
        best,
        best_energy,
        shot_energies,
        trace,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmkp_qubo::{MkpQubo, MkpQuboParams};

    fn frustrated_model() -> QuboModel {
        // Minimum at x = (1,1,0): F = -2 -2 +1 = ... enumerate in test.
        let mut q = QuboModel::new(3);
        q.add_linear(0, -2.0);
        q.add_linear(1, -2.0);
        q.add_linear(2, -1.0);
        q.add_quadratic(0, 1, 1.0);
        q.add_quadratic(1, 2, 3.0);
        q
    }

    #[test]
    fn finds_global_minimum_of_small_models() {
        let q = frustrated_model();
        let (_, brute) = q.brute_force_min();
        let out = anneal_qubo(
            &q,
            &SaConfig {
                shots: 50,
                sweeps: 20,
                ..SaConfig::default()
            },
        );
        assert!((out.best_energy - brute).abs() < 1e-9);
        assert!((q.energy(&out.best) - out.best_energy).abs() < 1e-9);
    }

    #[test]
    fn solves_the_fig1_mkp_qubo() {
        let g = qmkp_graph::gen::paper_fig1_graph();
        let mq = MkpQubo::new(&g, MkpQuboParams { k: 2, r: 2.0 });
        let out = anneal_qubo(
            &mq.model,
            &SaConfig {
                shots: 200,
                sweeps: 30,
                ..SaConfig::default()
            },
        );
        assert!(
            (out.best_energy + 4.0).abs() < 1e-9,
            "best {}",
            out.best_energy
        );
    }

    #[test]
    fn more_shots_never_hurt() {
        let q = frustrated_model();
        let few = anneal_qubo(
            &q,
            &SaConfig {
                shots: 2,
                sweeps: 2,
                seed: 9,
                ..SaConfig::default()
            },
        );
        let many = anneal_qubo(
            &q,
            &SaConfig {
                shots: 100,
                sweeps: 2,
                seed: 9,
                ..SaConfig::default()
            },
        );
        assert!(many.best_energy <= few.best_energy);
    }

    #[test]
    fn shot_energies_and_trace_are_consistent() {
        let q = frustrated_model();
        let out = anneal_qubo(
            &q,
            &SaConfig {
                shots: 30,
                sweeps: 5,
                ..SaConfig::default()
            },
        );
        assert_eq!(out.shot_energies.len(), 30);
        let min_shot = out
            .shot_energies
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min_shot, out.best_energy);
        for w in out.trace.windows(2) {
            assert!(w[1].1 < w[0].1, "trace strictly improves");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let q = frustrated_model();
        let a = anneal_qubo(
            &q,
            &SaConfig {
                seed: 42,
                ..SaConfig::default()
            },
        );
        let b = anneal_qubo(
            &q,
            &SaConfig {
                seed: 42,
                ..SaConfig::default()
            },
        );
        assert_eq!(a.best_energy, b.best_energy);
        assert_eq!(a.shot_energies, b.shot_energies);
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn zero_shots_rejected() {
        let q = frustrated_model();
        let _ = anneal_qubo(
            &q,
            &SaConfig {
                shots: 0,
                ..SaConfig::default()
            },
        );
    }

    #[test]
    fn ctx_variant_finds_the_same_optimum() {
        let q = frustrated_model();
        let (_, brute) = q.brute_force_min();
        let config = SaConfig {
            shots: 50,
            sweeps: 20,
            ..SaConfig::default()
        };
        let out = anneal_qubo_ctx(&q, &config, &RtContext::unlimited(), None).unwrap();
        assert!((out.best_energy - brute).abs() < 1e-9);
        assert!((q.energy(&out.best) - out.best_energy).abs() < 1e-9);
    }

    #[test]
    fn ctx_variant_rejects_invalid_configs_without_panicking() {
        let q = frustrated_model();
        let err = anneal_qubo_ctx(
            &q,
            &SaConfig {
                shots: 0,
                ..SaConfig::default()
            },
            &RtContext::unlimited(),
            None,
        )
        .expect_err("zero shots");
        assert!(matches!(err.error, RtError::InvalidConfig(_)));
    }

    #[test]
    fn cancelled_run_resumes_bit_identically() {
        use qmkp_rt::{Budget, CancelToken};
        let q = frustrated_model();
        let config = SaConfig {
            shots: 12,
            sweeps: 6,
            seed: 7,
            ..SaConfig::default()
        };
        let straight = anneal_qubo_ctx(&q, &config, &RtContext::unlimited(), None).unwrap();

        // One runtime poll per sweep: fuse f interrupts before sweep f.
        for fuse in [0u64, 1, 5, 17, 40, 71] {
            let ctx = RtContext::new(Budget::unlimited(), CancelToken::cancel_after_checks(fuse));
            let err = anneal_qubo_ctx(&q, &config, &ctx, None).expect_err("fuse inside schedule");
            assert_eq!(err.error, RtError::Cancelled, "fuse={fuse}");

            let cp = SaCheckpoint::from_json(&err.checkpoint.to_json()).unwrap();
            assert_eq!(cp, *err.checkpoint, "serialization must be lossless");
            let resumed = anneal_qubo_ctx(&q, &config, &RtContext::unlimited(), Some(&cp)).unwrap();
            assert_eq!(resumed.best, straight.best, "fuse={fuse}");
            assert_eq!(
                resumed.best_energy.to_bits(),
                straight.best_energy.to_bits()
            );
            let a: Vec<u64> = resumed.shot_energies.iter().map(|e| e.to_bits()).collect();
            let b: Vec<u64> = straight.shot_energies.iter().map(|e| e.to_bits()).collect();
            assert_eq!(a, b, "fuse={fuse}");
        }
    }

    #[test]
    fn generous_deadline_leaves_results_identical() {
        use qmkp_rt::Budget;
        use std::time::Duration;
        let q = frustrated_model();
        let config = SaConfig {
            shots: 10,
            sweeps: 8,
            seed: 11,
            ..SaConfig::default()
        };
        let plain = anneal_qubo_ctx(&q, &config, &RtContext::unlimited(), None).unwrap();
        let ctx =
            RtContext::with_budget(Budget::unlimited().with_deadline(Duration::from_secs(3600)));
        let paced = anneal_qubo_ctx(&q, &config, &ctx, None).unwrap();
        // An hour fits the whole schedule, so pacing must not change it —
        // the probe sweep leaves no trace in the RNG streams.
        assert_eq!(paced.best, plain.best);
        assert_eq!(paced.best_energy.to_bits(), plain.best_energy.to_bits());
        let a: Vec<u64> = paced.shot_energies.iter().map(|e| e.to_bits()).collect();
        let b: Vec<u64> = plain.shot_energies.iter().map(|e| e.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn tight_deadline_paces_the_schedule_and_completes() {
        use qmkp_rt::Budget;
        use std::sync::Arc;
        use std::time::Duration;
        // A model big enough that per-sweep cost is stable to measure.
        let mut q = QuboModel::new(200);
        for i in 0..200 {
            q.add_linear(i, -1.0);
            q.add_quadratic(i, (i + 1) % 200, 2.0);
        }
        let config = SaConfig {
            shots: 2,
            sweeps: 50_000_000, // hours at full length
            ..SaConfig::default()
        };
        let collector = Arc::new(qmkp_obs::Collector::for_current_thread());
        let guard = qmkp_obs::attach(collector.clone());
        let ctx = RtContext::with_budget(Budget::unlimited().with_deadline(Duration::from_secs(1)));
        let result = anneal_qubo_ctx(&q, &config, &ctx, None);
        drop(guard);
        let paced = collector
            .last_gauge("anneal.sa.paced_sweeps")
            .expect("pacing gauge must be emitted under a deadline");
        assert!(paced >= 1.0, "at least one sweep always runs");
        assert!(
            paced < config.sweeps as f64,
            "the schedule must have shrunk (got {paced})"
        );
        match result {
            Ok(out) => assert_eq!(out.shot_energies.len(), config.shots, "every shot ran"),
            // Parallel test execution can slow the real sweeps past the
            // probe's measurement; the per-sweep deadline poll then still
            // interrupts — but it must do so *inside the paced schedule*.
            Err(i) => {
                assert!(matches!(i.error, RtError::DeadlineExceeded { .. }), "{i}");
                assert!((i.checkpoint.sweep as f64) < paced);
            }
        }
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let q = frustrated_model();
        let cp = SaCheckpoint {
            shot: 999,
            sweep: 0,
            x: vec![false; 3],
            energy: 0.0,
            field: vec![0.0; 3],
            best: vec![false; 3],
            best_energy: f64::INFINITY,
            shot_energies: Vec::new(),
        };
        let err = anneal_qubo_ctx(&q, &SaConfig::default(), &RtContext::unlimited(), Some(&cp))
            .expect_err("shot index out of schedule");
        assert!(matches!(err.error, RtError::InvalidConfig(_)));
    }
}
