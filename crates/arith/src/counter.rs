//! Controlled increment and popcount circuits.
//!
//! The paper's degree counting (oracle part 1) sums, for each vertex, the
//! edge qubits incident to it; its size determination (oracle part 3) sums
//! the vertex qubits themselves. Both are popcounts into a small counter
//! register. We implement them with the ancilla-free *ripple increment*:
//! `counter += ctrl` flips counter bit `i` iff the control is set and all
//! lower counter bits are 1 — a chain of CᵏNOT gates, most-significant bit
//! first so the carries read pre-increment values.

use qmkp_qsim::{Circuit, Control, Gate, Register};

/// Counter width (bits) needed to count up to `max_count` inclusive:
/// `⌈log₂(max_count + 1)⌉`, and at least 1.
pub fn counter_width(max_count: usize) -> usize {
    usize::BITS as usize - max_count.leading_zeros() as usize + usize::from(max_count == 0)
}

/// Appends `counter += ctrl` (mod 2^len): a ripple increment of the counter
/// register controlled on one qubit.
///
/// Gate cost: `len` multi-controlled X gates with 1..=len controls.
///
/// # Panics
/// Panics if `ctrl` lies inside the counter register.
pub fn controlled_increment(circuit: &mut Circuit, ctrl: usize, counter: &Register) {
    assert!(
        !(counter.start..counter.start + counter.len).contains(&ctrl),
        "control {ctrl} overlaps counter register {}",
        counter.name
    );
    // Highest bit first: counter[i] flips iff ctrl ∧ counter[0..i] all ones.
    for i in (0..counter.len).rev() {
        let mut controls = vec![Control::pos(ctrl)];
        controls.extend((0..i).map(|j| Control::pos(counter.qubit(j))));
        circuit.push_unchecked(Gate::Mcx {
            controls,
            target: counter.qubit(i),
        });
    }
}

/// Appends a popcount: `counter += Σ sources` (mod 2^len), one controlled
/// increment per source qubit.
///
/// # Panics
/// Panics if any source qubit overlaps the counter register.
pub fn popcount_into(circuit: &mut Circuit, sources: &[usize], counter: &Register) {
    for &s in sources {
        controlled_increment(circuit, s, counter);
    }
}

/// Loads a classical constant into a zeroed register with X gates
/// (bit `i` of `value` → register qubit `i`).
///
/// # Panics
/// Panics if `value` does not fit in the register.
pub fn load_const(circuit: &mut Circuit, reg: &Register, value: u128) {
    assert!(
        reg.len >= 128 || value < (1u128 << reg.len),
        "constant {value} does not fit in register {} of width {}",
        reg.name,
        reg.len
    );
    for i in 0..reg.len {
        if (value >> i) & 1 == 1 {
            circuit.push_unchecked(Gate::X(reg.qubit(i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::classical_eval;
    use qmkp_qsim::QubitAllocator;

    #[test]
    fn counter_width_formula() {
        assert_eq!(counter_width(0), 1);
        assert_eq!(counter_width(1), 1);
        assert_eq!(counter_width(2), 2);
        assert_eq!(counter_width(3), 2);
        assert_eq!(counter_width(4), 3);
        assert_eq!(counter_width(7), 3);
        assert_eq!(counter_width(8), 4);
    }

    #[test]
    fn increment_all_start_values() {
        let mut alloc = QubitAllocator::new();
        let ctrl = alloc.alloc_one("ctrl");
        let counter = alloc.alloc("c", 3);
        let mut circ = Circuit::new(alloc.width());
        controlled_increment(&mut circ, ctrl, &counter);
        for start in 0..8u128 {
            // Control off: no change.
            let input = start << counter.start;
            assert_eq!(counter.extract(classical_eval(&circ, input)), start);
            // Control on: +1 mod 8.
            let input = input | 1;
            assert_eq!(
                counter.extract(classical_eval(&circ, input)),
                (start + 1) % 8
            );
        }
    }

    #[test]
    #[should_panic(expected = "overlaps counter")]
    fn increment_rejects_overlapping_control() {
        let mut alloc = QubitAllocator::new();
        let counter = alloc.alloc("c", 3);
        let mut circ = Circuit::new(alloc.width());
        controlled_increment(&mut circ, counter.qubit(1), &counter);
    }

    #[test]
    fn popcount_counts_ones_exhaustively() {
        // 5 source qubits, 3-bit counter.
        let mut alloc = QubitAllocator::new();
        let src = alloc.alloc("src", 5);
        let counter = alloc.alloc("c", 3);
        let mut circ = Circuit::new(alloc.width());
        popcount_into(&mut circ, &src.qubits(), &counter);
        for pattern in 0..32u128 {
            let out = classical_eval(&circ, pattern);
            assert_eq!(
                counter.extract(out),
                pattern.count_ones() as u128,
                "pattern {pattern:05b}"
            );
            // Sources untouched.
            assert_eq!(src.extract(out), pattern);
        }
    }

    #[test]
    fn popcount_is_uncomputed_by_inverse() {
        let mut alloc = QubitAllocator::new();
        let src = alloc.alloc("src", 4);
        let counter = alloc.alloc("c", 3);
        let mut circ = Circuit::new(alloc.width());
        popcount_into(&mut circ, &src.qubits(), &counter);
        let inv = circ.inverse();
        for pattern in 0..16u128 {
            let mid = classical_eval(&circ, pattern);
            assert_eq!(classical_eval(&inv, mid), pattern);
        }
    }

    #[test]
    fn load_const_sets_bits() {
        let mut alloc = QubitAllocator::new();
        let reg = alloc.alloc("k", 4);
        let mut circ = Circuit::new(alloc.width());
        load_const(&mut circ, &reg, 0b1010);
        assert_eq!(reg.extract(classical_eval(&circ, 0)), 0b1010);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn load_const_checks_width() {
        let mut alloc = QubitAllocator::new();
        let reg = alloc.alloc("k", 2);
        let mut circ = Circuit::new(alloc.width());
        load_const(&mut circ, &reg, 4);
    }

    #[test]
    fn increment_gate_cost_is_linear() {
        let mut alloc = QubitAllocator::new();
        let ctrl = alloc.alloc_one("ctrl");
        let counter = alloc.alloc("c", 6);
        let mut circ = Circuit::new(alloc.width());
        controlled_increment(&mut circ, ctrl, &counter);
        assert_eq!(circ.len(), 6);
    }
}
