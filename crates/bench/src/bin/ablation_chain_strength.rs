//! Ablation: chain strength vs chain breaks and solution quality on the
//! embedded D_{10,40} problem (the mechanism behind the paper's Fig. 11
//! discussion of chains limiting cost reduction).

use qmkp_annealer::{anneal_qubo, embed_ising, find_embedding, unembed, Chimera, SaConfig};
use qmkp_bench::{print_table, Provenance};
use qmkp_graph::gen::paper_anneal_dataset;
use qmkp_qubo::{IsingModel, MkpQubo, MkpQuboParams, QuboModel};

fn ising_to_qubo(ising: &IsingModel) -> QuboModel {
    let mut q = QuboModel::new(ising.num_spins());
    q.add_offset(ising.offset);
    for (i, &h) in ising.h.iter().enumerate() {
        q.add_linear(i, 2.0 * h);
        q.add_offset(-h);
    }
    for (&(i, j), &jij) in &ising.j {
        q.add_quadratic(i, j, 4.0 * jij);
        q.add_linear(i, -2.0 * jij);
        q.add_linear(j, -2.0 * jij);
        q.add_offset(jij);
    }
    q
}

fn main() {
    let mut prov = Provenance::start("ablation_chain_strength");
    prov.config("dataset", "D_{10,40}");
    prov.config("k", 3);
    prov.config("r", 2.0);
    prov.config("hardware", "chimera 12x12x4");
    prov.config("rel_strengths", "0.05,0.2,0.5,1.0,1.5,3.0,10.0");
    prov.config("sa", "shots=60 sweeps=30 seed=3");
    let g = paper_anneal_dataset(10, 40);
    let mq = MkpQubo::new(&g, MkpQuboParams { k: 3, r: 2.0 });
    let edges: Vec<(usize, usize)> = mq.model.interactions().map(|(p, _)| p).collect();
    let hw = Chimera::new(12, 12, 4);
    let emb = find_embedding(&edges, mq.num_vars(), &hw, 2, 8).expect("embeds");
    let stats = emb.stats();
    println!(
        "embedding: {} vars → {} qubits (avg chain {:.2})",
        stats.num_logical, stats.num_physical, stats.avg_chain_len
    );
    let logical = IsingModel::from_qubo(&mq.model);
    let max_j = logical
        .j
        .values()
        .fold(0.0f64, |a, &j| a.max(j.abs()))
        .max(logical.h.iter().fold(0.0f64, |a, &h| a.max(h.abs())));
    println!("max |J| = {max_j:.1}");

    let mut rows = Vec::new();
    for rel in [0.05f64, 0.2, 0.5, 1.0, 1.5, 3.0, 10.0] {
        let strength = rel * max_j;
        let phys = embed_ising(&logical, &emb, &hw, strength);
        let phys_qubo = ising_to_qubo(&phys);
        let out = anneal_qubo(
            &phys_qubo,
            &SaConfig {
                shots: 60,
                sweeps: 30,
                seed: 3,
                ..SaConfig::default()
            },
        );
        let spins: Vec<i8> = out.best.iter().map(|&b| if b { 1 } else { -1 }).collect();
        let (logical_x, broken) = unembed(&spins, &emb);
        prov.outcome(format!("broken[{rel:.2}]"), broken);
        let bits = logical_x
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .fold(0u128, |acc, (i, _)| acc | (1 << i));
        let plex = mq.decode_polished(bits);
        rows.push(vec![
            format!("{rel:.2}·max|J|"),
            format!("{broken}/{}", stats.num_logical),
            format!("{:.1}", mq.model.energy_bits(bits)),
            plex.len().to_string(),
        ]);
    }
    print_table(
        "Ablation — chain strength on embedded D_{10,40} (k = 3; optimum size 9)",
        &[
            "chain strength",
            "broken chains",
            "logical energy",
            "decoded plex size",
        ],
        &rows,
    );
    prov.finish();
}
